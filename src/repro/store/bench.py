"""Write-path benchmark: delta-log snapshots vs the deep-copy baseline.

Shared by the ``banks bench-mutate`` CLI command and
``benchmarks/bench_mutate.py``.  Both sides drive the *same*
deterministic mutation workload through a
:class:`~repro.serve.snapshot.SnapshotStore` over the same starting
facade — one store under ``copy_mode="delta"`` (copy-on-write fork +
delta log), one under ``copy_mode="deep"`` (the original
``copy.deepcopy`` path) — and the report compares:

* **write throughput** (mutation batches per second) at a given batch
  size; the acceptance bar is >= 5x for the delta path at batch size 1
  on ``demo:bibliography``;
* **epoch publish latency** (median seconds per publish, which for
  the delta path includes fork + capture + normaliser seal);
* **equivalence** — the two final facades must match each other
  *and* a from-scratch rebuild of the mutated database: node set,
  edge set, weights, prestige, scoring normalisers, and top-k answers
  on probe queries.  A speedup achieved by skipping work would fail
  here, not ship.

The workload mixes inserts (new papers, new authorship links that
re-weigh sibling back edges), text updates (re-indexing) and deletes
of previously inserted rows — every delta kind the write path knows.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass
from typing import Any, Callable, List, Sequence, Tuple

from repro.core.incremental import IncrementalBANKS
from repro.core.model import build_data_graph
from repro.errors import ReproError
from repro.serve.snapshot import SnapshotStore
from repro.shard.stitch import graphs_equal

#: Queries used to compare end-state answers (hit both seeded data and
#: the rows the workload plants).
PROBE_QUERIES = (
    "soumen sunita",
    "transaction",
    "benchmark workload",
    "snapshot epoch",
)


def mutation_workload(database, mutations: int) -> List[Tuple[str, Tuple[Any, ...]]]:
    """A deterministic mutation script for a bibliography-schema
    database: ``(op, args)`` pairs ready for :func:`run_operation`.

    Cycle of four: insert a paper, link it to an existing author
    (re-weighs sibling back edges + prestige), rename an earlier
    planted paper (re-index), delete an earlier planted link (delete
    with re-weigh).  Needs a bibliography-style schema with ``author``,
    ``paper`` and ``writes`` tables (``demo:bibliography``, or any
    database following the Fig. 1 layout).
    """
    for required in ("author", "paper", "writes"):
        if required not in database.table_names:
            raise ReproError(
                "the mutation workload needs a bibliography-style schema "
                f"(author/paper/writes); {database.name!r} has no "
                f"{required!r} table — use demo:bibliography"
            )
    author_rows = list(database.table("author").scan())
    if not author_rows:
        raise ReproError("mutation workload needs at least one author")
    script: List[Tuple[str, Tuple[Any, ...]]] = []
    planted_papers: List[str] = []
    planted_links: List[Tuple[str, str]] = []
    for step in range(mutations):
        phase = step % 4
        if phase == 0:
            pid = f"bench-p{step}"
            planted_papers.append(pid)
            script.append(
                (
                    "insert",
                    ("paper", [pid, f"benchmark workload paper {step}"]),
                )
            )
        elif phase == 1:
            author = author_rows[step % len(author_rows)]
            pid = planted_papers[-1]
            planted_links.append((author["author_id"], pid))
            script.append(("insert", ("writes", [author["author_id"], pid])))
        elif phase == 2:
            pid = planted_papers[(step // 4) % len(planted_papers)]
            script.append(
                (
                    "update_pid",
                    (pid, {"title": f"snapshot epoch study {step}"}),
                )
            )
        else:
            script.append(("delete_link", (planted_links.pop(0),)))
    return script


def run_operation(facade: IncrementalBANKS, op: str, args: Tuple) -> Any:
    """Apply one workload step to a facade (inside a store mutation)."""
    if op == "insert":
        table, values = args
        return facade.insert(table, values)
    if op == "update_pid":
        pid, changes = args
        row = facade.database.table("paper").lookup_pk((pid,))
        return facade.update(("paper", row.rid), changes)
    if op == "delete_link":
        (author_id, pid) = args[0]
        row = facade.database.table("writes").lookup_pk((author_id, pid))
        return facade.delete(("writes", row.rid))
    raise ReproError(f"unknown workload op {op!r}")  # pragma: no cover


@dataclass
class MutateBenchReport:
    """Outcome of one delta-vs-deep write-path comparison."""

    dataset: str
    mutations: int
    batch_size: int
    delta_seconds: float
    deep_seconds: float
    delta_publish_ms_p50: float
    deep_publish_ms_p50: float
    epochs: int
    deltas_logged: int
    equivalence_ok: bool

    @property
    def delta_writes_per_second(self) -> float:
        return self.mutations / self.delta_seconds if self.delta_seconds else 0.0

    @property
    def deep_writes_per_second(self) -> float:
        return self.mutations / self.deep_seconds if self.deep_seconds else 0.0

    @property
    def speedup(self) -> float:
        if self.delta_seconds <= 0:
            return float("inf")
        return self.deep_seconds / self.delta_seconds

    def render(self) -> str:
        verdict = "delta == deep == rebuild" if self.equivalence_ok else "MISMATCH"
        lines = [
            f"dataset             : {self.dataset}",
            f"mutations           : {self.mutations} "
            f"(batch size {self.batch_size})",
            f"deep-copy write path: {self.deep_seconds:.3f} s "
            f"({self.deep_writes_per_second:.1f} writes/s, publish p50 "
            f"{self.deep_publish_ms_p50:.2f} ms)",
            f"delta-log write path: {self.delta_seconds:.3f} s "
            f"({self.delta_writes_per_second:.1f} writes/s, publish p50 "
            f"{self.delta_publish_ms_p50:.2f} ms)",
            f"write speedup       : {self.speedup:.2f}x",
            f"epochs published    : {self.epochs} "
            f"({self.deltas_logged} delta(s) logged)",
            f"equivalence         : {verdict}",
        ]
        return "\n".join(lines)


def _drive(
    store: SnapshotStore,
    script: Sequence[Tuple[str, Tuple[Any, ...]]],
    batch_size: int,
) -> Tuple[float, float]:
    """Run the script through a store; ``(seconds, publish p50 ms)``."""
    publish_times: List[float] = []
    elapsed = 0.0
    for start in range(0, len(script), batch_size):
        batch = script[start : start + batch_size]
        operations: List[Callable[[Any], Any]] = [
            lambda facade, op=op, args=args: run_operation(facade, op, args)
            for op, args in batch
        ]
        began = time.perf_counter()
        store.mutate_batch(operations)
        took = time.perf_counter() - began
        elapsed += took
        publish_times.append(took)
    p50 = statistics.median(publish_times) if publish_times else 0.0
    return elapsed, 1000.0 * p50


def _answer_signature(facade, query: str) -> List[Tuple]:
    return [
        (answer.tree.root, round(answer.relevance, 9))
        for answer in facade.search(query, max_results=10)
    ]


def _states_equivalent(delta_facade, deep_facade) -> bool:
    """Final-state equivalence: delta == deep == full rebuild."""
    if not graphs_equal(delta_facade.graph, deep_facade.graph):
        return False
    rebuilt_graph, rebuilt_stats = build_data_graph(
        delta_facade.database, delta_facade.weight_policy
    )
    if not graphs_equal(delta_facade.graph, rebuilt_graph):
        return False
    delta_facade._refresh_stats()
    deep_facade._refresh_stats()
    if delta_facade.stats != deep_facade.stats:
        return False
    if delta_facade.stats != rebuilt_stats:
        return False
    if set(delta_facade.index.vocabulary()) != set(deep_facade.index.vocabulary()):
        return False
    for query in PROBE_QUERIES:
        if _answer_signature(delta_facade, query) != _answer_signature(
            deep_facade, query
        ):
            return False
    return True


def run_mutation_benchmark(
    database,
    dataset: str = "",
    mutations: int = 32,
    batch_size: int = 1,
) -> MutateBenchReport:
    """Measure the delta-log write path against the deep-copy baseline.

    Both stores start from identical facades over *forks* of
    ``database`` (the caller's database is left untouched) and apply
    the same deterministic workload; the report carries throughput,
    publish latency and the equivalence verdict.
    """
    script = mutation_workload(database, mutations)

    deep_store = SnapshotStore(IncrementalBANKS(database.fork()), copy_mode="deep")
    deep_seconds, deep_p50 = _drive(deep_store, script, batch_size)

    delta_store = SnapshotStore(IncrementalBANKS(database.fork()), copy_mode="delta")
    delta_seconds, delta_p50 = _drive(delta_store, script, batch_size)

    equivalence_ok = _states_equivalent(
        delta_store.current().facade, deep_store.current().facade
    )

    return MutateBenchReport(
        dataset=dataset or database.name,
        mutations=len(script),
        batch_size=batch_size,
        delta_seconds=delta_seconds,
        deep_seconds=deep_seconds,
        delta_publish_ms_p50=delta_p50,
        deep_publish_ms_p50=deep_p50,
        epochs=delta_store.epoch,
        deltas_logged=delta_store.deltas_published,
        equivalence_ok=equivalence_ok,
    )
