"""Write-path benchmarks: snapshot modes and the durable epoch log.

Two measurements live here, sharing one deterministic mutation
workload (:func:`mutation_workload` — inserts that re-weigh sibling
back edges, text updates that re-index, deletes of planted links:
every delta kind the write path knows):

* :func:`run_mutation_benchmark` (``banks bench-mutate`` /
  ``benchmarks/bench_mutate.py``) — the delta-log write path vs the
  deep-copy baseline.  Both sides drive the same workload through a
  :class:`~repro.serve.snapshot.SnapshotStore` over identical starting
  facades — ``copy_mode="delta"`` (copy-on-write fork + delta log) vs
  ``copy_mode="deep"`` (the original ``copy.deepcopy`` path) — and the
  report compares write throughput at a given batch size (acceptance:
  >= 5x at batch size 1 on ``demo:bibliography``), epoch publish
  latency, and **equivalence**: both final facades must match each
  other *and* a from-scratch rebuild (node set, edge set, weights,
  prestige, normalisers, top-k probe answers).  A speedup achieved by
  skipping work fails here, not ships.
* :func:`run_wal_benchmark` (``banks bench-wal`` /
  ``benchmarks/bench_wal.py``) — the durable write path (delta
  snapshots + :class:`~repro.store.wal.WalWriter` append + fsync) vs
  the in-memory delta path on the same workload (acceptance: <= 3x
  overhead at batch size 1), plus the proof that the log reads back:
  :meth:`~repro.core.incremental.IncrementalBANKS.recover` from the
  base snapshot must reproduce the live facade's top-5 answers
  exactly, and a :class:`~repro.store.wal.ReplicaFollower` tailing the
  WAL from a second (forked) process must reach zero lag with
  identical answers.
"""

from __future__ import annotations

import multiprocessing
import shutil
import statistics
import tempfile
import time
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.core.incremental import IncrementalBANKS
from repro.core.model import build_data_graph
from repro.errors import ReproError
from repro.serve.snapshot import SnapshotStore
from repro.shard.process import fork_available
from repro.shard.stitch import graphs_equal
from repro.store.wal import ReplicaFollower, WalWriter

#: Queries used to compare end-state answers (hit both seeded data and
#: the rows the workload plants).
PROBE_QUERIES = (
    "soumen sunita",
    "transaction",
    "benchmark workload",
    "snapshot epoch",
)


def mutation_workload(database, mutations: int) -> List[Tuple[str, Tuple[Any, ...]]]:
    """A deterministic mutation script for a bibliography-schema
    database: ``(op, args)`` pairs ready for :func:`run_operation`.

    Cycle of four: insert a paper, link it to an existing author
    (re-weighs sibling back edges + prestige), rename an earlier
    planted paper (re-index), delete an earlier planted link (delete
    with re-weigh).  Needs a bibliography-style schema with ``author``,
    ``paper`` and ``writes`` tables (``demo:bibliography``, or any
    database following the Fig. 1 layout).
    """
    for required in ("author", "paper", "writes"):
        if required not in database.table_names:
            raise ReproError(
                "the mutation workload needs a bibliography-style schema "
                f"(author/paper/writes); {database.name!r} has no "
                f"{required!r} table — use demo:bibliography"
            )
    author_rows = list(database.table("author").scan())
    if not author_rows:
        raise ReproError("mutation workload needs at least one author")
    script: List[Tuple[str, Tuple[Any, ...]]] = []
    planted_papers: List[str] = []
    planted_links: List[Tuple[str, str]] = []
    for step in range(mutations):
        phase = step % 4
        if phase == 0:
            pid = f"bench-p{step}"
            planted_papers.append(pid)
            script.append(
                (
                    "insert",
                    ("paper", [pid, f"benchmark workload paper {step}"]),
                )
            )
        elif phase == 1:
            author = author_rows[step % len(author_rows)]
            pid = planted_papers[-1]
            planted_links.append((author["author_id"], pid))
            script.append(("insert", ("writes", [author["author_id"], pid])))
        elif phase == 2:
            pid = planted_papers[(step // 4) % len(planted_papers)]
            script.append(
                (
                    "update_pid",
                    (pid, {"title": f"snapshot epoch study {step}"}),
                )
            )
        else:
            script.append(("delete_link", (planted_links.pop(0),)))
    return script


def run_operation(facade: IncrementalBANKS, op: str, args: Tuple) -> Any:
    """Apply one workload step to a facade (inside a store mutation)."""
    if op == "insert":
        table, values = args
        return facade.insert(table, values)
    if op == "update_pid":
        pid, changes = args
        row = facade.database.table("paper").lookup_pk((pid,))
        return facade.update(("paper", row.rid), changes)
    if op == "delete_link":
        (author_id, pid) = args[0]
        row = facade.database.table("writes").lookup_pk((author_id, pid))
        return facade.delete(("writes", row.rid))
    raise ReproError(f"unknown workload op {op!r}")  # pragma: no cover


@dataclass
class MutateBenchReport:
    """Outcome of one delta-vs-deep write-path comparison."""

    dataset: str
    mutations: int
    batch_size: int
    delta_seconds: float
    deep_seconds: float
    delta_publish_ms_p50: float
    deep_publish_ms_p50: float
    epochs: int
    deltas_logged: int
    equivalence_ok: bool

    @property
    def delta_writes_per_second(self) -> float:
        return self.mutations / self.delta_seconds if self.delta_seconds else 0.0

    @property
    def deep_writes_per_second(self) -> float:
        return self.mutations / self.deep_seconds if self.deep_seconds else 0.0

    @property
    def speedup(self) -> float:
        if self.delta_seconds <= 0:
            return float("inf")
        return self.deep_seconds / self.delta_seconds

    def render(self) -> str:
        verdict = "delta == deep == rebuild" if self.equivalence_ok else "MISMATCH"
        lines = [
            f"dataset             : {self.dataset}",
            f"mutations           : {self.mutations} "
            f"(batch size {self.batch_size})",
            f"deep-copy write path: {self.deep_seconds:.3f} s "
            f"({self.deep_writes_per_second:.1f} writes/s, publish p50 "
            f"{self.deep_publish_ms_p50:.2f} ms)",
            f"delta-log write path: {self.delta_seconds:.3f} s "
            f"({self.delta_writes_per_second:.1f} writes/s, publish p50 "
            f"{self.delta_publish_ms_p50:.2f} ms)",
            f"write speedup       : {self.speedup:.2f}x",
            f"epochs published    : {self.epochs} "
            f"({self.deltas_logged} delta(s) logged)",
            f"equivalence         : {verdict}",
        ]
        return "\n".join(lines)


def _drive(
    store: SnapshotStore,
    script: Sequence[Tuple[str, Tuple[Any, ...]]],
    batch_size: int,
) -> Tuple[float, float]:
    """Run the script through a store; ``(seconds, publish p50 ms)``."""
    publish_times: List[float] = []
    elapsed = 0.0
    for start in range(0, len(script), batch_size):
        batch = script[start : start + batch_size]
        operations: List[Callable[[Any], Any]] = [
            lambda facade, op=op, args=args: run_operation(facade, op, args)
            for op, args in batch
        ]
        began = time.perf_counter()
        store.mutate_batch(operations)
        took = time.perf_counter() - began
        elapsed += took
        publish_times.append(took)
    p50 = statistics.median(publish_times) if publish_times else 0.0
    return elapsed, 1000.0 * p50


def _answer_signature(facade, query: str) -> List[Tuple]:
    return [
        (answer.tree.root, round(answer.relevance, 9))
        for answer in facade.search(query, max_results=10)
    ]


def _states_equivalent(delta_facade, deep_facade) -> bool:
    """Final-state equivalence: delta == deep == full rebuild."""
    if not graphs_equal(delta_facade.graph, deep_facade.graph):
        return False
    rebuilt_graph, rebuilt_stats = build_data_graph(
        delta_facade.database, delta_facade.weight_policy
    )
    if not graphs_equal(delta_facade.graph, rebuilt_graph):
        return False
    delta_facade._refresh_stats()
    deep_facade._refresh_stats()
    if delta_facade.stats != deep_facade.stats:
        return False
    if delta_facade.stats != rebuilt_stats:
        return False
    if set(delta_facade.index.vocabulary()) != set(deep_facade.index.vocabulary()):
        return False
    for query in PROBE_QUERIES:
        if _answer_signature(delta_facade, query) != _answer_signature(
            deep_facade, query
        ):
            return False
    return True


def run_mutation_benchmark(
    database,
    dataset: str = "",
    mutations: int = 32,
    batch_size: int = 1,
) -> MutateBenchReport:
    """Measure the delta-log write path against the deep-copy baseline.

    Both stores start from identical facades over *forks* of
    ``database`` (the caller's database is left untouched) and apply
    the same deterministic workload; the report carries throughput,
    publish latency and the equivalence verdict.
    """
    script = mutation_workload(database, mutations)

    deep_store = SnapshotStore(IncrementalBANKS(database.fork()), copy_mode="deep")
    deep_seconds, deep_p50 = _drive(deep_store, script, batch_size)

    delta_store = SnapshotStore(IncrementalBANKS(database.fork()), copy_mode="delta")
    delta_seconds, delta_p50 = _drive(delta_store, script, batch_size)

    equivalence_ok = _states_equivalent(
        delta_store.current().facade, deep_store.current().facade
    )

    return MutateBenchReport(
        dataset=dataset or database.name,
        mutations=len(script),
        batch_size=batch_size,
        delta_seconds=delta_seconds,
        deep_seconds=deep_seconds,
        delta_publish_ms_p50=delta_p50,
        deep_publish_ms_p50=deep_p50,
        epochs=delta_store.epoch,
        deltas_logged=delta_store.deltas_published,
        equivalence_ok=equivalence_ok,
    )


# -- the durable log (banks bench-wal) ----------------------------------------


def _top5_signatures(facade, queries: Sequence[str]) -> List[List[Tuple]]:
    """Per-query ``(root, relevance)`` top-5 signatures — the parity
    currency of the WAL benchmark (roots and scores, strictly)."""
    return [
        [
            (answer.tree.root, round(answer.relevance, 9))
            for answer in facade.search(query, max_results=5)
        ]
        for query in queries
    ]


def _replica_probe(database, wal_dir, queries, target_epoch, connection):
    """Child-process body: build a replica from the inherited base
    snapshot, tail the WAL to ``target_epoch``, report lag + answers."""
    try:
        replica = IncrementalBANKS(database.fork())
        follower = ReplicaFollower(wal_dir, replica)
        follower.catch_up(target_epoch, timeout=60.0)
        connection.send((follower.lag_epochs(), _top5_signatures(replica, queries)))
    except BaseException as error:  # pragma: no cover - child diagnostics
        connection.send((f"{type(error).__name__}: {error}", None))
    finally:
        connection.close()


@dataclass
class WalBenchReport:
    """Outcome of one durable-vs-in-memory write-path comparison."""

    dataset: str
    mutations: int
    batch_size: int
    fsync: str
    delta_seconds: float
    wal_seconds: float
    wal_bytes: int
    segments: int
    epochs: int
    recover_seconds: float
    recovered_epoch: int
    recovery_ok: bool
    replica_ok: bool
    replica_lag: int
    replica_cross_process: bool

    @property
    def overhead(self) -> float:
        """Durable write time as a multiple of the in-memory path."""
        if self.delta_seconds <= 0:
            return float("inf")
        return self.wal_seconds / self.delta_seconds

    @property
    def ok(self) -> bool:
        """Correctness only (overhead is hardware-dependent and gated
        by ``benchmarks/bench_wal.py``, not here)."""
        return self.recovery_ok and self.replica_ok and self.replica_lag == 0

    def render(self) -> str:
        if self.recovery_ok:
            recovery = "exact (top-5 roots and scores)"
        else:
            recovery = "MISMATCH"
        answers = "identical" if self.replica_ok else "MISMATCH"
        where = "second process" if self.replica_cross_process else "in-process"
        delta_wps = self.mutations / max(self.delta_seconds, 1e-9)
        wal_wps = self.mutations / max(self.wal_seconds, 1e-9)
        lines = [
            f"dataset             : {self.dataset}",
            f"mutations           : {self.mutations} "
            f"(batch size {self.batch_size}, fsync={self.fsync})",
            f"in-memory delta path: {self.delta_seconds:.3f} s "
            f"({delta_wps:.1f} writes/s)",
            f"durable WAL path    : {self.wal_seconds:.3f} s "
            f"({wal_wps:.1f} writes/s)",
            f"durability overhead : {self.overhead:.2f}x",
            f"log on disk         : {self.epochs} epoch(s), "
            f"{self.segments} segment(s), {self.wal_bytes} bytes",
            f"recovery            : epoch {self.recovered_epoch} in "
            f"{self.recover_seconds:.3f} s, {recovery}",
            f"replica             : lag {self.replica_lag}, "
            f"answers {answers} ({where})",
        ]
        return "\n".join(lines)


def run_wal_benchmark(
    database,
    dataset: str = "",
    mutations: int = 52,
    batch_size: int = 1,
    fsync: str = "always",
    segment_bytes: int = 256 * 1024,
    queries: Sequence[str] = PROBE_QUERIES,
    wal_dir: Optional[str] = None,
) -> WalBenchReport:
    """Measure the durable write path and prove the log reads back.

    Drives the shared mutation workload twice from identical forks of
    ``database`` — once through an in-memory delta store, once through
    a WAL-attached one — then (1) recovers a facade from the base
    snapshot plus the WAL and (2) tails the WAL with a
    :class:`~repro.store.wal.ReplicaFollower` in a forked process
    (in-process where fork is unavailable); both must reproduce the
    live facade's top-5 answers for every query, and the replica must
    report zero lag.
    """
    script = mutation_workload(database, mutations)
    owns_dir = wal_dir is None
    if owns_dir:
        wal_dir = tempfile.mkdtemp(prefix="banks-wal-bench-")
    try:
        delta_store = SnapshotStore(
            IncrementalBANKS(database.fork()), copy_mode="delta"
        )
        delta_seconds, _p50 = _drive(delta_store, script, batch_size)

        writer = WalWriter(wal_dir, segment_bytes=segment_bytes, fsync=fsync)
        wal_store = SnapshotStore(
            IncrementalBANKS(database.fork()), copy_mode="delta", wal=writer
        )
        wal_seconds, _p50 = _drive(wal_store, script, batch_size)
        live = wal_store.current().facade
        live_signatures = _top5_signatures(live, queries)

        began = time.perf_counter()
        recovered = IncrementalBANKS.recover(database.fork, wal_dir)
        recover_seconds = time.perf_counter() - began
        recovery_ok = _top5_signatures(recovered, queries) == live_signatures

        target_epoch = wal_store.epoch
        cross_process = fork_available()
        if cross_process:
            context = multiprocessing.get_context("fork")
            parent_end, child_end = context.Pipe()
            probe = context.Process(
                target=_replica_probe,
                args=(database, wal_dir, queries, target_epoch, child_end),
                daemon=True,
            )
            probe.start()
            child_end.close()
            lag, replica_signatures = parent_end.recv()
            probe.join(timeout=30.0)
            if replica_signatures is None:
                raise ReproError(f"replica probe failed: {lag}")
        else:  # pragma: no cover - fork exists on every CI platform
            replica = IncrementalBANKS(database.fork())
            follower = ReplicaFollower(wal_dir, replica)
            follower.catch_up(target_epoch)
            lag = follower.lag_epochs()
            replica_signatures = _top5_signatures(replica, queries)

        return WalBenchReport(
            dataset=dataset or database.name,
            mutations=len(script),
            batch_size=batch_size,
            fsync=fsync,
            delta_seconds=delta_seconds,
            wal_seconds=wal_seconds,
            wal_bytes=writer.bytes_written,
            segments=writer.rotations + 1,
            epochs=wal_store.epoch,
            recover_seconds=recover_seconds,
            recovered_epoch=recovered.applied_epoch,
            recovery_ok=recovery_ok,
            replica_ok=replica_signatures == live_signatures,
            replica_lag=int(lag),
            replica_cross_process=cross_process,
        )
    finally:
        if owns_dir:
            shutil.rmtree(wal_dir, ignore_errors=True)
