"""The durable epoch log: write-ahead segments, recovery, replicas.

:class:`~repro.store.log.DeltaLog` records every published snapshot as
an epoch, but only in memory — a crash loses the history and a second
process can never see it.  This module serialises epochs to disk (the
:class:`~repro.store.delta.Delta` records are plain picklable data)
and gives the two consumers the ROADMAP promised "for free":

* **replay-from-disk recovery** —
  :meth:`~repro.core.incremental.IncrementalBANKS.recover` rebuilds
  the exact pre-crash facade from a base snapshot plus the WAL;
* **cross-process replicas** — a :class:`ReplicaFollower` in another
  process tails the WAL and keeps a read-only facade (or a whole
  :class:`~repro.shard.router.ShardRouter`, via its ``apply_epochs``)
  caught up by epoch.

On-disk format
--------------

A WAL is a directory of **segment** files named ``<first_epoch>.wal``
(zero-padded, so lexical order is epoch order).  A segment is a
sequence of records; each record is::

    <payload length: uint32 LE> <crc32(payload): uint32 LE> <payload>

where the payload is one pickled :class:`~repro.store.log.Epoch`.
Epoch numbers are strictly sequential across the whole log; the writer
enforces it on append and the reader verifies it on replay, so a hole
in history can never replay silently.

Durability and failure model
----------------------------

* ``fsync="always"`` (the default) flushes and fsyncs after every
  append — an acknowledged epoch survives power loss.
* ``fsync="rotate"`` fsyncs only when a segment closes — cheap, and
  bounded loss (at most the open segment's tail).
* ``fsync="never"`` leaves flushing to the OS — benchmarks only.

A crash mid-append leaves a **torn record** at the tail: a truncated
length prefix, a short payload, or a checksum mismatch.  The reader
treats any malformed record in the *final* segment as the torn tail
and stops at the last complete epoch — recovery never replays a
partial epoch.  A malformed record in a non-final segment means real
history is missing (not a torn tail), and raises
:class:`~repro.errors.WalError` instead of replaying past a hole.  The
writer repairs a torn tail on open (truncates to the last complete
record) so appends continue cleanly after a crash.

Retention mirrors :class:`~repro.store.log.DeltaLog`'s reclamation
window: with ``retain=N`` the writer deletes whole segments whose
newest epoch is older than ``last_epoch - N`` after each append
(segment-granular, so the window is a lower bound).  A pruned WAL can
still feed a replica that is inside the window; a consumer reaching
behind it gets :class:`~repro.errors.StoreError` from
:meth:`WalReader.entries_since`, and recovery-from-base refuses it
outright — both loud, mirroring the in-memory contract.  The default
``retain=None`` keeps everything, which is what recovery from a base
snapshot needs.

With a ``checkpoint_path`` the writer additionally clamps the
retention horizon to the **checkpoint floor**: the newest epoch the
checkpoint directory's manifest records
(:func:`checkpoint_floor`; written by
:class:`~repro.ops.checkpoint.CheckpointManager`).  Epochs at or below
a durable checkpoint are re-based and safe to drop; epochs above it
are the replay tail recovery needs, and pruning them would make the
log unrecoverable — the old behaviour with ``retain`` alone, which is
why ``retain`` without checkpoints stays an explicit opt-in to bounded
recoverability.  When the floor holds the horizon back the writer
warns once (and again only after the floor advances), so a stalled
checkpointer shows up in logs instead of as silent disk growth.
"""

from __future__ import annotations

import json
import os
import pickle
import struct
import threading
import time
import warnings
import zlib
from typing import Any, List, Optional, Tuple

from repro.errors import StoreError, WalError
from repro.store.log import Epoch

#: ``<payload length> <crc32(payload)>``, little-endian.
_RECORD_HEADER = struct.Struct("<II")

_SEGMENT_SUFFIX = ".wal"

#: Accepted fsync policies (see module docstring).
FSYNC_POLICIES = ("always", "rotate", "never")

#: The checkpoint directory's manifest file (written atomically by
#: :class:`~repro.ops.checkpoint.CheckpointManager`; read here so the
#: store layer never imports the ops layer).
CHECKPOINT_MANIFEST = "MANIFEST.json"


def checkpoint_floor(checkpoint_path: Optional[str]) -> int:
    """The newest *manifested* checkpoint epoch under
    ``checkpoint_path`` — the retention prune floor.

    Conservative by construction: a missing directory, a missing
    manifest or an unreadable one all return 0 (nothing may be pruned),
    because the cost of a wrong floor is an unrecoverable log.  The
    manifest only ever names a checkpoint that was already durably
    renamed into place, so pruning up to its epoch is always safe.
    """
    if not checkpoint_path:
        return 0
    manifest = os.path.join(str(checkpoint_path), CHECKPOINT_MANIFEST)
    try:
        with open(manifest, "r", encoding="utf-8") as handle:
            record = json.load(handle)
        epoch = record["checkpoint_epoch"]
    except (OSError, ValueError, KeyError, TypeError):
        return 0
    return int(epoch) if isinstance(epoch, int) and epoch > 0 else 0


def _segment_filename(first_epoch: int) -> str:
    return f"{first_epoch:012d}{_SEGMENT_SUFFIX}"


def _list_segments(path: str) -> List[Tuple[int, str]]:
    """``(first_epoch, absolute path)`` for every segment, in epoch
    order."""
    segments: List[Tuple[int, str]] = []
    for name in os.listdir(path):
        if not name.endswith(_SEGMENT_SUFFIX):
            continue
        stem = name[: -len(_SEGMENT_SUFFIX)]
        if not stem.isdigit():
            continue
        segments.append((int(stem), os.path.join(path, name)))
    segments.sort()
    return segments


def _encode_record(epoch: Epoch) -> bytes:
    payload = pickle.dumps(epoch, protocol=pickle.HIGHEST_PROTOCOL)
    return _RECORD_HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def _scan_segment(
    filepath: str, skip_records: int = 0
) -> Tuple[List[Epoch], int, Optional[str], int]:
    """Parse one segment; ``(epochs, valid_prefix_bytes, tear, skipped)``.

    ``tear`` describes the first malformed record (``None`` when the
    whole file parses); ``valid_prefix_bytes`` is where it starts — the
    truncation point that repairs the segment.

    The first ``skip_records`` records are frame-validated (length
    prefix and payload bounds) but neither checksummed nor unpickled —
    the epoch-number invariant (strictly sequential, first record named
    by the segment file) lets :meth:`WalReader.entries_since` skip the
    re-based prefix below a checkpoint without paying a decode per
    discarded record.  ``skipped`` is how many were actually present.
    """
    epochs: List[Epoch] = []
    with open(filepath, "rb") as handle:
        data = handle.read()
    offset = 0
    skipped = 0
    while offset < len(data):
        header_end = offset + _RECORD_HEADER.size
        if header_end > len(data):
            return epochs, offset, "truncated record header", skipped
        length, checksum = _RECORD_HEADER.unpack(data[offset:header_end])
        payload_end = header_end + length
        if payload_end > len(data):
            return epochs, offset, "truncated record payload", skipped
        if skipped < skip_records:
            skipped += 1
            offset = payload_end
            continue
        payload = data[header_end:payload_end]
        if zlib.crc32(payload) != checksum:
            return epochs, offset, "record checksum mismatch", skipped
        try:
            epoch = pickle.loads(payload)
        except Exception:
            return epochs, offset, "undecodable record payload", skipped
        if not isinstance(epoch, Epoch):
            return epochs, offset, "record is not an Epoch", skipped
        epochs.append(epoch)
        offset = payload_end
    return epochs, offset, None, skipped


def _complete_records(filepath: str) -> int:
    """Number of complete (frame- and checksum-valid) records in a
    segment, without decoding any payload.

    The epoch-number invariant (strictly sequential, first record
    named by the segment file) turns this count into the segment's
    epoch range — the :meth:`WalReader.last_epoch` probe needs nothing
    more.  A payload that checksums but would not unpickle still
    counts; only the decoding readers classify that deeper tear.
    """
    with open(filepath, "rb") as handle:
        data = handle.read()
    offset = 0
    count = 0
    total = len(data)
    while offset < total:
        header_end = offset + _RECORD_HEADER.size
        if header_end > total:
            break
        length, checksum = _RECORD_HEADER.unpack(data[offset:header_end])
        payload_end = header_end + length
        if payload_end > total:
            break
        if zlib.crc32(data[header_end:payload_end]) != checksum:
            break
        count += 1
        offset = payload_end
    return count


class WalReader:
    """Read-only view of a WAL directory.

    Safe to use concurrently with a live :class:`WalWriter` in another
    process: every read re-scans the directory, records are immutable
    once written, a torn tail (an append in progress) parses as "stop
    before it" — exactly the crash contract — and a segment pruned
    away between the directory listing and the read is retried against
    a fresh listing.

    Segments are append-only, so the reader caches each segment's
    complete-epoch range keyed by ``(path, size)`` — probes like
    :meth:`last_epoch` (a caught-up follower polls it constantly) cost
    one ``stat`` instead of a full parse.
    """

    def __init__(self, path: str):
        self.path = str(path)
        if not os.path.isdir(self.path):
            raise StoreError(f"WAL directory {self.path!r} does not exist")
        #: ``(segment path, size) -> (first, last)`` complete epochs.
        self._ranges: dict = {}

    def _retry(self, read):
        """Run one read; on a concurrently pruned segment, re-list and
        try again before giving up loudly."""
        for _attempt in range(3):
            try:
                return read()
            except FileNotFoundError:
                continue
        raise StoreError(
            f"WAL at {self.path!r} is pruned faster than it can be "
            "read; rebuild from the current snapshot"
        )

    def _segment_range(self, filepath: str) -> Tuple[int, int]:
        """``(first, last)`` complete epoch numbers of one segment
        (``(0, 0)`` when it holds none), cached by file size — an
        append or a tail repair changes the size and invalidates.

        Counted, not decoded: the first epoch is the segment's
        filename and numbering is strictly sequential, so the range
        probe never pays a pickle per record."""
        size = os.path.getsize(filepath)
        key = (filepath, size)
        cached = self._ranges.get(key)
        if cached is None:
            stem = os.path.basename(filepath)[: -len(_SEGMENT_SUFFIX)]
            count = _complete_records(filepath)
            cached = (int(stem), int(stem) + count - 1) if count else (0, 0)
            if len(self._ranges) > 256:
                self._ranges.clear()
            self._ranges[key] = cached
        return cached

    # -- whole-log reads ------------------------------------------------------

    def read_all(self) -> List[Epoch]:
        """Every complete epoch on disk, oldest first.

        Tolerates a torn tail in the final segment (see the module
        docstring); raises :class:`~repro.errors.WalError` on a
        malformed record anywhere else, or on an epoch-number gap.
        """
        return self._retry(lambda: self._read(since=None))

    def entries_since(self, epoch: int) -> List[Epoch]:
        """Every complete epoch published after ``epoch``.

        Raises:
            StoreError: ``epoch + 1`` is older than the first retained
                epoch — the segments were pruned, and the consumer
                must rebuild from a current snapshot.
        """

        def read() -> List[Epoch]:
            if self._last_epoch() <= epoch:
                return []  # caught up: one stat, no parsing
            first = self._first_epoch()
            if first and epoch + 1 < first:
                raise StoreError(
                    f"epochs {epoch + 1}..{first - 1} were pruned from "
                    f"the WAL at {self.path!r}; rebuild from the "
                    "current snapshot"
                )
            return self._read(since=epoch)

        return self._retry(read)

    def _read(self, since: Optional[int]) -> List[Epoch]:
        segments = _list_segments(self.path)
        epochs: List[Epoch] = []
        previous: Optional[int] = None
        for position, (first_epoch, filepath) in enumerate(segments):
            final = position == len(segments) - 1
            # A later segment proves this one holds nothing wanted.
            if (
                since is not None
                and position + 1 < len(segments)
                and segments[position + 1][0] <= since + 1
            ):
                previous = segments[position + 1][0] - 1
                continue
            # Records below ``since`` inside this segment are re-based
            # history: frame-skip them (epochs are strictly sequential
            # and the first record's number is the segment's filename,
            # the same invariant the whole-segment skip above relies
            # on) instead of decoding and discarding each one.
            skip = 0
            if since is not None and first_epoch <= since:
                skip = since + 1 - first_epoch
            parsed, _valid_bytes, tear, skipped = _scan_segment(
                filepath, skip_records=skip
            )
            if tear is not None and not final:
                raise WalError(
                    f"segment {filepath!r} is corrupt mid-log ({tear}); "
                    "epochs after it cannot be replayed"
                )
            if skipped:
                previous = first_epoch + skipped - 1
            for epoch in parsed:
                if previous is not None and epoch.number != previous + 1:
                    raise WalError(
                        f"epoch gap in WAL at {self.path!r}: "
                        f"{previous} is followed by {epoch.number}"
                    )
                previous = epoch.number
                if since is None or epoch.number > since:
                    epochs.append(epoch)
        return epochs

    # -- cheap probes ---------------------------------------------------------

    def _first_epoch(self) -> int:
        for _first, filepath in _list_segments(self.path):
            first, _last = self._segment_range(filepath)
            if first:
                return first
        return 0

    def _last_epoch(self) -> int:
        for _first, filepath in reversed(_list_segments(self.path)):
            _first_number, last = self._segment_range(filepath)
            if last:
                return last
        return 0

    def first_epoch(self) -> int:
        """The oldest retained epoch number (0 when the log is empty)."""
        return self._retry(self._first_epoch)

    def last_epoch(self) -> int:
        """The newest complete epoch number (0 when the log is empty)."""
        return self._retry(self._last_epoch)

    def size_bytes(self) -> int:
        """Total bytes currently on disk across all segments."""
        total = 0
        for _first, filepath in _list_segments(self.path):
            try:
                total += os.path.getsize(filepath)
            except OSError:  # pruned between listing and stat
                continue
        return total

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"WalReader({self.path!r})"


class WalWriter:
    """Append-only writer over a WAL directory.

    Args:
        path: the WAL directory (created if missing).
        segment_bytes: rotate to a new segment once the current one
            reaches this size (checked before each append, so segments
            overshoot by at most one record).
        fsync: ``"always"`` | ``"rotate"`` | ``"never"`` (see the
            module docstring).
        retain: epochs kept behind the newest one, mirroring
            :class:`~repro.store.log.DeltaLog`; pruning drops whole
            segments only.  ``None`` (default) keeps everything —
            required for recovery from a base snapshot.
        checkpoint_path: the checkpoint directory whose manifest sets
            the prune floor (see :func:`checkpoint_floor`); retention
            never deletes epochs above the newest manifested
            checkpoint, so a ``retain`` window cannot make the log
            unrecoverable while checkpointing lags.

    Opening an existing directory resumes it: the torn tail of the
    last segment (if any) is truncated away and epoch numbering
    continues from the last complete record.
    """

    def __init__(
        self,
        path: str,
        segment_bytes: int = 4 * 1024 * 1024,
        fsync: str = "always",
        retain: Optional[int] = None,
        checkpoint_path: Optional[str] = None,
    ):
        if fsync not in FSYNC_POLICIES:
            raise StoreError(
                f"unknown fsync policy {fsync!r} "
                f"(choose from {', '.join(FSYNC_POLICIES)})"
            )
        if segment_bytes < 1:
            raise StoreError("segment_bytes must be >= 1")
        if retain is not None and retain < 1:
            raise StoreError("retain must be >= 1 (or None to keep all)")
        self.path = str(path)
        self.segment_bytes = segment_bytes
        self.fsync = fsync
        self.retain = retain
        self.checkpoint_path = (
            str(checkpoint_path) if checkpoint_path is not None else None
        )
        self._floor_warned_at: Optional[int] = None
        os.makedirs(self.path, exist_ok=True)
        self._lock = threading.Lock()
        self._handle = None
        self._segment_size = 0
        self._segment_records = 0
        self.epochs_written = 0
        self.rotations = 0
        self.pruned_segments = 0
        self._resume()

    # -- resumption -----------------------------------------------------------

    def _resume(self) -> None:
        """Adopt the directory's state: find the last complete epoch,
        repair any torn tail, reopen the newest segment for append."""
        segments = _list_segments(self.path)
        self._last_epoch = 0
        self._bytes = 0
        for position, (first, filepath) in enumerate(segments):
            final = position == len(segments) - 1
            parsed, valid_bytes, tear, _skipped = _scan_segment(filepath)
            if tear is not None:
                if not final:
                    raise WalError(
                        f"segment {filepath!r} is corrupt mid-log ({tear}); "
                        "refusing to append after missing history"
                    )
                with open(filepath, "rb+") as handle:
                    handle.truncate(valid_bytes)
            if parsed:
                self._last_epoch = parsed[-1].number
            self._bytes += valid_bytes if final else os.path.getsize(filepath)
        if segments:
            _first, filepath = segments[-1]
            self._segment_path = filepath
            self._segment_size = os.path.getsize(filepath)
            parsed, _valid, _tear, _skipped = _scan_segment(filepath)
            self._segment_records = len(parsed)
            self._handle = open(filepath, "ab")
        else:
            self._segment_path = None

    # -- appending ------------------------------------------------------------

    @property
    def last_epoch(self) -> int:
        """The newest epoch this writer has durably appended."""
        return self._last_epoch

    @property
    def bytes_written(self) -> int:
        """Bytes currently on disk across all retained segments."""
        return self._bytes

    def append(self, epoch: Epoch) -> int:
        """Durably append one epoch; returns the bytes written.

        Raises :class:`~repro.errors.WalError` when ``epoch.number``
        is not exactly ``last_epoch + 1`` — the log never records a
        hole or a duplicate.
        """
        with self._lock:
            if epoch.number != self._last_epoch + 1:
                raise WalError(
                    f"epoch {epoch.number} does not follow "
                    f"{self._last_epoch}; the WAL only appends "
                    "sequential epochs"
                )
            if self._handle is None:
                if self._segment_path is None:
                    self._open_segment(epoch.number)
                else:  # reopened after close()
                    self._handle = open(self._segment_path, "ab")
            if self._segment_records and self._segment_size >= self.segment_bytes:
                self._rotate(epoch.number)
            record = _encode_record(epoch)
            self._handle.write(record)
            # Always flush to the OS (cross-process followers read the
            # file); the policy only decides whether to pay the fsync.
            self._handle.flush()
            if self.fsync == "always":
                os.fsync(self._handle.fileno())
            self._segment_size += len(record)
            self._segment_records += 1
            self._bytes += len(record)
            self._last_epoch = epoch.number
            self.epochs_written += 1
            if self.retain is not None:
                self._prune_locked()
            return len(record)

    def _open_segment(self, first_epoch: int) -> None:
        self._segment_path = os.path.join(self.path, _segment_filename(first_epoch))
        self._handle = open(self._segment_path, "ab")
        self._segment_size = 0
        self._segment_records = 0
        self._sync_directory()

    def _rotate(self, next_epoch: int) -> None:
        self._close_segment()
        self._open_segment(next_epoch)
        self.rotations += 1

    def _close_segment(self) -> None:
        if self._handle is None:
            return
        self._handle.flush()
        if self.fsync in ("always", "rotate"):
            os.fsync(self._handle.fileno())
        self._handle.close()
        self._handle = None

    def _sync_directory(self) -> None:
        """fsync the directory so segment creation/removal survives a
        crash (best-effort; not every platform allows it)."""
        if self.fsync == "never":
            return
        try:
            fd = os.open(self.path, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform-dependent
            return
        try:
            os.fsync(fd)
        except OSError:  # pragma: no cover - platform-dependent
            pass
        finally:
            os.close(fd)

    # -- retention ------------------------------------------------------------

    def _prune_locked(self) -> None:
        """Delete whole segments whose newest epoch is older than the
        retention horizon, clamped to the checkpoint floor (recovery
        must keep every epoch past the newest manifested checkpoint).
        The open segment is never pruned."""
        horizon = self._last_epoch - self.retain
        if self.checkpoint_path is not None:
            floor = checkpoint_floor(self.checkpoint_path)
            if floor < horizon:
                if self._floor_warned_at != floor:
                    self._floor_warned_at = floor
                    warnings.warn(
                        f"WAL retention wants to prune up to epoch "
                        f"{horizon} but the newest checkpoint covers "
                        f"only epoch {floor}; clamping — epochs "
                        f"{floor + 1}..{horizon} stay on disk until a "
                        "checkpoint re-bases them",
                        RuntimeWarning,
                        stacklevel=3,
                    )
                horizon = floor
            else:
                self._floor_warned_at = None
        if horizon <= 0:
            return
        segments = _list_segments(self.path)
        removed = False
        for position, (first, filepath) in enumerate(segments):
            if filepath == self._segment_path:
                break
            # The next segment's first epoch bounds this segment's last.
            if position + 1 >= len(segments):
                break
            newest_here = segments[position + 1][0] - 1
            if newest_here > horizon:
                break
            self._bytes -= os.path.getsize(filepath)
            os.remove(filepath)
            self.pruned_segments += 1
            removed = True
        if removed:
            self._sync_directory()

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            self._close_segment()

    def __enter__(self) -> "WalWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"WalWriter({self.path!r}, epoch={self._last_epoch}, "
            f"fsync={self.fsync})"
        )


def open_wal(wal: Any) -> Optional[WalWriter]:
    """Coerce a WAL argument: ``None``, a :class:`WalWriter`, or a
    directory path (string convenience for CLI plumbing)."""
    if wal is None or isinstance(wal, WalWriter):
        return wal
    if isinstance(wal, (str, os.PathLike)):
        return WalWriter(str(wal))
    raise StoreError(
        "wal must be a WalWriter or a directory path, got "
        f"{type(wal).__name__}"
    )


class ReplicaFollower:
    """Tail a WAL and keep a replica caught up, epoch by epoch.

    The follower is the cross-process half of the replication story:
    the primary publishes epochs through a WAL-attached
    :class:`~repro.store.log.DeltaLog`; a follower in another process
    polls the directory and applies every new epoch to its ``target``.

    Args:
        wal: the WAL to tail — a :class:`WalReader` or directory path.
        target: anything with ``apply_epochs(epochs)`` — an
            :class:`~repro.core.incremental.IncrementalBANKS` replica,
            a :class:`~repro.shard.router.ShardRouter` (a replicated
            hot-shard deployment routes each delta to its owning
            shard), or the adapter from :meth:`over_engine`.
        metrics: optional :class:`~repro.serve.metrics.MetricsRegistry`
            to register the ``replica_lag_epochs`` gauge into.
        start_epoch: the epoch the target has already absorbed
            (defaults to the target's ``applied_epoch`` when it has
            one, else 0 — the base snapshot).

    A follower that sleeps past a pruned writer's retention window
    gets :class:`~repro.errors.StoreError` from :meth:`poll` — the
    same "rebuild from a current snapshot" contract as the in-memory
    :class:`~repro.store.log.DeltaLog`.
    """

    def __init__(
        self,
        wal: Any,
        target: Any,
        metrics: Any = None,
        start_epoch: Optional[int] = None,
    ):
        self.reader = wal if isinstance(wal, WalReader) else WalReader(str(wal))
        self.target = target
        if start_epoch is None:
            start_epoch = int(getattr(target, "applied_epoch", 0) or 0)
        self.applied_epoch = start_epoch
        self.epochs_applied = 0
        self.deltas_applied = 0
        self._thread: Optional[threading.Thread] = None
        self._wake = threading.Event()
        # Polls are serialised: a background tail and a foreground
        # catch_up (e.g. a read-your-writes wait) must never both read
        # entries_since(applied) and double-apply the same epochs.
        self._poll_lock = threading.Lock()
        if metrics is not None:
            metrics.gauge(
                "replica_lag_epochs",
                "epochs the replica trails the WAL by",
                fn=self.lag_epochs,
            )

    @classmethod
    def over_engine(cls, wal: Any, engine: Any, **kwargs) -> "ReplicaFollower":
        """A follower that applies epochs *through* a
        :class:`~repro.serve.engine.QueryEngine`, so replica readers
        keep snapshot isolation: each poll's batch becomes one
        atomically published version."""
        return cls(wal, _EngineReplayTarget(engine), **kwargs)

    # -- catching up ----------------------------------------------------------

    def poll(self) -> int:
        """Apply every epoch published since the last poll; returns
        how many were applied (0 = already caught up).  Thread-safe:
        concurrent polls serialise instead of double-applying."""
        with self._poll_lock:
            epochs = self.reader.entries_since(self.applied_epoch)
            if not epochs:
                return 0
            self.target.apply_epochs(epochs)
            self.applied_epoch = epochs[-1].number
            self.epochs_applied += len(epochs)
            self.deltas_applied += sum(len(e.deltas) for e in epochs)
            return len(epochs)

    def catch_up(
        self,
        to_epoch: int,
        timeout: float = 30.0,
        interval: float = 0.02,
    ) -> int:
        """Poll until ``applied_epoch >= to_epoch``; returns the lag
        left (0 on success).  Used by tests and the CLI self-check."""
        deadline = time.monotonic() + timeout
        while self.applied_epoch < to_epoch:
            if self.poll() == 0:
                if time.monotonic() > deadline:
                    break
                time.sleep(interval)
        return max(0, to_epoch - self.applied_epoch)

    def lag_epochs(self) -> int:
        """Epochs on disk the target has not absorbed yet."""
        return max(0, self.reader.last_epoch() - self.applied_epoch)

    # -- background tailing ---------------------------------------------------

    @property
    def tailing(self) -> bool:
        """Whether a background tailing thread is running."""
        return self._thread is not None

    def start(self, interval: float = 0.5) -> "ReplicaFollower":
        """Poll on a daemon thread every ``interval`` seconds until
        :meth:`stop`."""
        if self._thread is not None:
            raise StoreError("follower is already started")
        self._wake.clear()

        def tail() -> None:
            while not self._wake.wait(interval):
                try:
                    self.poll()
                except StoreError:  # pragma: no cover - needs pruned WAL race
                    # Behind the retention window: stop tailing; the
                    # lag gauge keeps reporting the distance.
                    break

        self._thread = threading.Thread(
            target=tail, name="wal-replica-follower", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._wake.set()
        self._thread.join(timeout=5.0)
        self._thread = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ReplicaFollower(epoch={self.applied_epoch}, "
            f"lag={self.lag_epochs()})"
        )


class _EngineReplayTarget:
    """Adapter: apply WAL epochs through an engine's write path, so
    every poll batch publishes as one snapshot version."""

    def __init__(self, engine: Any):
        self._engine = engine

    @property
    def applied_epoch(self) -> int:
        facade = self._engine.snapshots.current().facade
        return int(getattr(facade, "applied_epoch", 0) or 0)

    def apply_epochs(self, epochs) -> int:
        def apply(facade: Any) -> int:
            return facade.apply_epochs(epochs)

        return self._engine.mutate(apply)
