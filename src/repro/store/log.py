"""The :class:`DeltaLog`: epochs, pins, and deliberate reclamation.

Every published snapshot version is an **epoch**: a monotone number
plus the tuple of :class:`~repro.store.delta.Delta` records that
produced it.  The log exists for consumers that follow *history*
rather than just reading the newest state — a shard router replaying
deltas into its partition, a replica catching up, a dashboard counting
writes.

Lifetime management is explicit (the ROADMAP called the old scheme
"refcount-by-accident"):

* :meth:`pin` marks the epoch a consumer has fully consumed and
  returns it; :meth:`entries_since` yields everything published after
  a given epoch; :meth:`release` drops the pin.
* the log retains at most ``retain`` epochs beyond the oldest pin;
  :meth:`publish` reclaims eagerly, so an abandoned log never grows
  without bound.
* a consumer that sleeps past the retention window gets
  :class:`~repro.errors.StoreError` from :meth:`entries_since` — a
  loud "rebuild from the current snapshot" signal instead of silently
  missing updates.

All methods are thread-safe; publication is O(1) plus reclamation.

The log is in-memory; attach a :class:`~repro.store.wal.WalWriter`
(``DeltaLog(wal=...)``) to make every published epoch durable — the
write-ahead half of crash recovery and cross-process replicas (see
:mod:`repro.store.wal` and ``docs/ARCHITECTURE.md``).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import StoreError
from repro.store.delta import Delta


@dataclass(frozen=True)
class Epoch:
    """One published version: its number and the deltas that made it."""

    number: int
    deltas: Tuple[Delta, ...]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Epoch({self.number}, {len(self.deltas)} delta(s))"


class DeltaLog:
    """Bounded, pinnable record of published epochs.

    The pin/release contract (every history-following consumer must
    observe it):

    1. call :meth:`pin` *before* reading — it returns the epoch your
       catch-up will start from and protects everything published
       after it from reclamation, however long you take;
    2. read :meth:`entries_since` with that epoch and apply the
       entries;
    3. call :meth:`release` with the pinned number (then re-pin at the
       new position for the next round, or use
       ``pin(new); release(old)`` to slide forward without a window).

    A consumer that reads *without* pinning races reclamation: if it
    sleeps past the ``retain`` window, :meth:`entries_since` raises
    :class:`~repro.errors.StoreError` — a loud "rebuild from the
    current snapshot" signal, never a silent gap.  A pinned consumer
    can sleep arbitrarily long; the log holds its epochs (and grows)
    until the pin is released.  The regression test
    ``tests/store/test_log.py::TestPinContract`` keeps both halves of
    the contract honest.

    Args:
        retain: epochs kept beyond the oldest pin.  The window bounds
            both memory and how far behind an *unpinned* consumer may
            fall before it must rebuild.
        wal: optional :class:`~repro.store.wal.WalWriter`; every
            published epoch is appended durably before :meth:`publish`
            returns, and epoch numbering resumes from the WAL's last
            record (recovery restarts continue the sequence instead of
            re-issuing epoch 1).  In-memory reclamation is unchanged;
            WAL retention is the writer's own (segment-granular) knob.
    """

    def __init__(self, retain: int = 256, wal: Optional[object] = None):
        if retain < 1:
            raise StoreError("DeltaLog needs retain >= 1")
        self.retain = retain
        self.wal = wal
        self._entries: List[Epoch] = []
        self._epoch = wal.last_epoch if wal is not None else 0
        self._pins: Dict[int, int] = {}
        self._lock = threading.Lock()
        self.published_total = 0
        self.deltas_total = 0
        self.reclaimed_total = 0

    @property
    def epoch(self) -> int:
        """The newest published epoch number (0 = nothing published)."""
        return self._epoch

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # -- publication ----------------------------------------------------------

    def publish(self, deltas: Sequence[Delta]) -> Epoch:
        """Record one published version; reclaim old entries.

        With a WAL attached the epoch is appended (and, under
        ``fsync="always"``, durable) *before* it becomes visible to
        in-memory consumers — a reader can never observe an epoch a
        crash would lose.
        """
        with self._lock:
            entry = Epoch(self._epoch + 1, tuple(deltas))
            if self.wal is not None:
                self.wal.append(entry)
            self._epoch += 1
            self._entries.append(entry)
            self.published_total += 1
            self.deltas_total += len(entry.deltas)
            self._reclaim_locked()
            return entry

    # -- consumption ----------------------------------------------------------

    def pin(self, epoch: Optional[int] = None) -> int:
        """Protect epochs after ``epoch`` (default: the newest) from
        reclamation until :meth:`release` is called with the returned
        number."""
        with self._lock:
            pinned = self._epoch if epoch is None else epoch
            self._pins[pinned] = self._pins.get(pinned, 0) + 1
            return pinned

    def release(self, epoch: int) -> None:
        """Release one :meth:`pin`; unknown pins raise."""
        with self._lock:
            count = self._pins.get(epoch)
            if not count:
                raise StoreError(f"epoch {epoch} is not pinned")
            if count == 1:
                del self._pins[epoch]
            else:
                self._pins[epoch] = count - 1
            self._reclaim_locked()

    def entries_since(self, epoch: int) -> List[Epoch]:
        """Every epoch published after ``epoch``, oldest first.

        Raises:
            StoreError: the request reaches behind the retained window
                (the consumer must rebuild from the current snapshot).
        """
        with self._lock:
            if epoch > self._epoch:
                raise StoreError(
                    f"epoch {epoch} has not been published yet "
                    f"(newest is {self._epoch})"
                )
            oldest_needed = epoch + 1
            if self._entries:
                oldest_retained = self._entries[0].number
            else:
                oldest_retained = self._epoch + 1
            if oldest_needed < oldest_retained:
                raise StoreError(
                    f"epochs {oldest_needed}..{oldest_retained - 1} were "
                    "reclaimed; rebuild from the current snapshot"
                )
            return [e for e in self._entries if e.number > epoch]

    # -- reclamation ----------------------------------------------------------

    def oldest_pin(self) -> Optional[int]:
        with self._lock:
            return min(self._pins) if self._pins else None

    def _reclaim_locked(self) -> None:
        """Drop entries older than both the retention window and every
        pin.  A pin at epoch P protects entries > P (the pinned
        consumer still needs them to catch up)."""
        horizon = self._epoch - self.retain
        if self._pins:
            horizon = min(horizon, min(self._pins))
        kept = 0
        while kept < len(self._entries) and self._entries[kept].number <= horizon:
            kept += 1
        if kept:
            del self._entries[:kept]
            self.reclaimed_total += kept

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DeltaLog(epoch={self._epoch}, {len(self._entries)} retained, "
            f"{len(self._pins)} pin(s))"
        )
