"""Node-granularity copy-on-write over :class:`DiGraph`.

``copy.deepcopy`` of the data graph copies every adjacency dict and
every key in it — O(data) per snapshot.  A :class:`VersionedGraph`
forks in O(n) pointer copies (the index arrays) and thereafter copies
an adjacency dict only when the fork first mutates that node — O(delta)
adjacency data per published version.  All untouched structure is
shared with the parent, which is what lets many live snapshot versions
coexist in barely more memory than one.

The contract is the snapshot store's: once a graph has been forked,
the *parent* is published and must not be mutated again (the store
always mutates the newest fork).  Reads need no coordination — the
read API is inherited from :class:`DiGraph` unchanged, so the hot
search loops (``raw_successors`` et al.) pay zero overhead for the
versioning.
"""

from __future__ import annotations

from typing import Hashable, Optional, Set

from repro.graph.digraph import DiGraph


def fork_graph(graph: DiGraph):
    """A copy-on-write fork of any graph representation.

    The parent is left untouched and remains fully usable for reads;
    by the snapshot contract it must not be mutated afterwards (its
    adjacency dicts are now shared with the fork).  Frozen CSR graphs
    fork into overlays (:mod:`repro.graph.csr`) — the same O(delta)
    write path over array-backed shared storage.
    """
    from repro.graph.csr import CSRGraph, CSROverlayGraph

    if isinstance(graph, CSROverlayGraph):
        return graph.fork()
    if isinstance(graph, CSRGraph):
        return graph.overlay()
    if isinstance(graph, VersionedGraph):
        return graph.fork()
    return VersionedGraph._fork_of(graph)


class VersionedGraph(DiGraph):
    """A :class:`DiGraph` whose forks share adjacency structurally.

    A freshly constructed ``VersionedGraph`` owns all of its storage
    and behaves exactly like a ``DiGraph``.  After :meth:`fork`, the
    child owns none of the adjacency dicts; every mutator first
    *takes ownership* of the dicts it is about to touch (copying them
    once), so parent snapshots never observe the child's writes.
    """

    def __init__(self) -> None:
        super().__init__()
        # None = owns every adjacency dict (nothing shared).
        self._owned_succ: Optional[Set[int]] = None
        self._owned_pred: Optional[Set[int]] = None

    @classmethod
    def _fork_of(cls, graph: DiGraph) -> "VersionedGraph":
        child = cls.__new__(cls)
        child._index = dict(graph._index)
        child._ids = list(graph._ids)
        child._node_weights = list(graph._node_weights)
        child._succ = list(graph._succ)
        child._pred = list(graph._pred)
        child._edge_count = graph._edge_count
        child._min_edge_cache = graph._min_edge_cache
        child._min_edge_count = graph._min_edge_count
        child._owned_succ = set()
        child._owned_pred = set()
        return child

    def fork(self) -> "VersionedGraph":
        """A child sharing all adjacency dicts with this graph."""
        return VersionedGraph._fork_of(self)

    @property
    def shared_nodes(self) -> int:
        """How many adjacency slots are still shared with the parent
        (introspection for tests and the write benchmark)."""
        if self._owned_succ is None:
            return 0
        return len(self._succ) - len(self._owned_succ)

    # -- ownership ----------------------------------------------------------

    def _own_succ(self, index: int) -> None:
        owned = self._owned_succ
        if owned is None or index in owned:
            return
        self._succ[index] = dict(self._succ[index])
        owned.add(index)

    def _own_pred(self, index: int) -> None:
        owned = self._owned_pred
        if owned is None or index in owned:
            return
        self._pred[index] = dict(self._pred[index])
        owned.add(index)

    # -- mutators (take ownership, then defer to DiGraph) -------------------

    def add_node(self, node: Hashable, weight: float = 0.0) -> int:
        existing = self._index.get(node)
        if existing is not None:
            return existing
        index = super().add_node(node, weight)
        if self._owned_succ is not None:
            self._owned_succ.add(index)
            self._owned_pred.add(index)
        return index

    def add_edge(self, source: Hashable, target: Hashable, weight: float) -> None:
        if source == target or weight < 0:
            super().add_edge(source, target, weight)  # raises
            return
        source_index = self.add_node(source)
        target_index = self.add_node(target)
        self._own_succ(source_index)
        self._own_pred(target_index)
        self._add_edge_at(source_index, target_index, weight)

    def remove_edge(self, source: Hashable, target: Hashable) -> None:
        self._own_succ(self.index_of(source))
        self._own_pred(self.index_of(target))
        super().remove_edge(source, target)

    def remove_node(self, node: Hashable) -> None:
        index = self.index_of(node)
        self._own_succ(index)
        self._own_pred(index)
        for target_index in self._succ[index]:
            self._own_pred(target_index)
        for source_index in self._pred[index]:
            self._own_succ(source_index)
        super().remove_node(node)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"VersionedGraph({self.num_nodes} nodes, {self.num_edges} "
            f"edges, {self.shared_nodes} shared)"
        )
