"""``repro.store``: the delta-log write path.

BANKS targets live Web publishing of organisational data (Sec. 5.2),
so the write path matters as much as the read path.  Before this
subsystem existed, every mutation batch paid ``copy.deepcopy`` of the
whole facade — O(data) writes on a graph the paper says should absorb
updates incrementally.  This package makes writes O(delta):

* :class:`~repro.store.delta.Delta` — one mutation's complete effect,
  as data: the affected node, the replay payload (row values /
  changes), every edge re-weigh pair, every prestige touch, and the
  index postings tokens that moved.  Deltas are immutable and
  picklable, so they travel to forked shard workers unchanged.
* :mod:`repro.store.delta` also holds the *derivation* functions
  (``derive_insert`` / ``derive_delete`` / ``derive_update``) that
  compute a delta while applying the relational + index part, the
  ``apply_graph_delta`` function that replays the graph part
  idempotently, and ``replay_delta`` for consumers holding their own
  replica (shard worker processes).
  :class:`~repro.core.incremental.IncrementalBANKS` delegates its
  mutation arithmetic here — one derivation serves the facade, the
  serving layer and the shard router.
* :class:`~repro.store.versioned.VersionedGraph` — a
  :class:`~repro.graph.digraph.DiGraph` with node-granularity
  copy-on-write adjacency.  ``fork()`` shares every adjacency dict
  with the parent and copies one only when the child first mutates it,
  so publishing a snapshot copies O(delta) adjacency data (plus an
  O(n) pointer-spine copy whose constant is a few hundred times
  smaller than a deep copy of the facade).
* :class:`~repro.store.log.DeltaLog` — the publication record.  Every
  published snapshot is an **epoch**: a monotone number plus the tuple
  of deltas that produced it.
* :mod:`repro.store.wal` — the durable half:
  :class:`~repro.store.wal.WalWriter` appends each published epoch to
  a segmented, checksummed on-disk log (``DeltaLog(wal=...)`` wires it
  in), :class:`~repro.store.wal.WalReader` replays it —
  :meth:`~repro.core.incremental.IncrementalBANKS.recover` rebuilds
  the exact pre-crash facade from a base snapshot — and
  :class:`~repro.store.wal.ReplicaFollower` tails it from another
  process to keep a read-only replica (a facade behind an engine, or
  a whole shard router) caught up by epoch.

The epoch / reclamation model
-----------------------------

Publishing is one reference assignment, exactly as in the deep-copy
path, so readers stay wait-free.  What changes is lifetime management:

* A reader that only needs a consistent facade keeps doing what it
  always did — grab the current snapshot and hold the reference; the
  interpreter's refcounting keeps that version alive.  Structural
  sharing makes this cheap: ten live versions share all untouched
  adjacency dicts, postings lists and table heaps.
* A consumer that needs to *catch up on history* (a shard router
  replaying deltas, a replica, a dashboard) calls
  :meth:`~repro.store.log.DeltaLog.pin` to mark the epoch it has seen,
  reads :meth:`~repro.store.log.DeltaLog.entries_since`, then drops
  the pin with :meth:`~repro.store.log.DeltaLog.release`.
* The log retains a bounded window of epochs (``retain``).  On every
  publish it reclaims entries older than both the window and the
  oldest pin — deliberate epoch-based reclamation instead of the
  refcount-by-accident the deep-copy path relied on.  A consumer that
  sleeps past the window gets :class:`~repro.errors.StoreError` from
  ``entries_since`` and must rebuild, rather than silently missing
  updates.

:class:`~repro.serve.snapshot.SnapshotStore` drives all of this under
``copy_mode="delta"`` (the default when the facade supports forking);
``copy_mode="deep"`` keeps the original deep-copy path as a fallback,
asserted equivalent by the hypothesis property test in
``tests/core/test_incremental.py``.  ``banks bench-mutate`` measures
the two against each other; ``banks bench-wal`` measures the durable
write path against the in-memory one and verifies recovery + replica
parity.

The full mutation data flow (derivation → capture → epoch → WAL →
recovery/replica) is drawn in ``docs/ARCHITECTURE.md``; the operator
view (``banks serve --live --wal``, ``banks recover``, the metric
series) lives in ``docs/OPERATIONS.md``.
"""

from repro.store.delta import (
    Delta,
    apply_graph_delta,
    derive_delete,
    derive_insert,
    derive_insert_dict,
    derive_update,
    replay_delta,
)
from repro.store.log import DeltaLog, Epoch
from repro.store.versioned import VersionedGraph, fork_graph
from repro.store.wal import (
    ReplicaFollower,
    WalReader,
    WalWriter,
    checkpoint_floor,
)

__all__ = [
    "Delta",
    "DeltaLog",
    "Epoch",
    "ReplicaFollower",
    "VersionedGraph",
    "WalReader",
    "WalWriter",
    "apply_graph_delta",
    "checkpoint_floor",
    "derive_delete",
    "derive_insert",
    "derive_insert_dict",
    "derive_update",
    "fork_graph",
    "replay_delta",
]
