"""Delta records: one mutation's complete effect, as data.

A :class:`Delta` captures everything a BANKS replica needs to follow
one relational mutation without re-deriving anything:

* the **replay payload** — table + coerced row values for an insert,
  the change mapping for an update (the relational layer re-executes
  these, which keeps RID assignment deterministic across replicas);
* the **edge re-weigh pairs** — every directed node pair whose Eq. 1
  weight the mutation changed, with the new weight (``None`` = the
  edge no longer exists);
* the **prestige touches** — every node whose prestige (node weight)
  moved, with the new value;
* the **index postings** tokens added / removed, for observability.

The derivation functions below compute a delta *while applying* the
relational and index part of the mutation (the new weights depend on
post-mutation state, and index removal must read pre-deletion row
values, so derivation and data mutation are inseparable).  The graph
part is returned as data and applied separately with
:func:`apply_graph_delta` — idempotently, so the shard layer may
broadcast one delta to a shared graph through several searchers
without double-applying.

This module is the single home of the mutation arithmetic:
:class:`~repro.core.incremental.IncrementalBANKS` (the facade),
:class:`~repro.serve.snapshot.SnapshotStore` (the serving layer) and
:class:`~repro.shard.router.ShardRouter` (the shard layer) all
delegate here, which is what keeps the three write paths equivalent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Any,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.errors import StoreError
from repro.graph.digraph import DiGraph
from repro.relational.database import Database, RID
from repro.text.inverted_index import InvertedIndex

#: A directed node pair whose edge weight must be re-derived.
_Pair = Tuple[RID, RID]

#: One edge re-weigh: ``(source, target, new_weight_or_None)``.
EdgeChange = Tuple[RID, RID, Optional[float]]


@dataclass(frozen=True)
class Delta:
    """The complete, replayable effect of one mutation.

    Attributes:
        kind: ``"insert"``, ``"delete"`` or ``"update"``.
        node: the affected tuple node ``(table, rid)``.
        row_values: for inserts, the coerced stored values (replaying
            them into an identical replica reproduces the same RID).
        changes: for updates, the ``(column, value)`` pairs applied.
        edges: every directed edge whose weight the mutation changed,
            as ``(source, target, weight)`` with ``weight=None``
            meaning the edge no longer exists.
        prestige: ``(node, weight)`` pairs for every prestige touch.
        index_added: tokens whose postings gained this row.
        index_removed: tokens whose postings dropped this row.
    """

    kind: str
    node: RID
    row_values: Optional[Tuple[Any, ...]] = None
    changes: Optional[Tuple[Tuple[str, Any], ...]] = None
    edges: Tuple[EdgeChange, ...] = ()
    prestige: Tuple[Tuple[RID, float], ...] = ()
    index_added: Tuple[str, ...] = ()
    index_removed: Tuple[str, ...] = ()

    @property
    def table(self) -> str:
        return self.node[0]

    @property
    def rid(self) -> int:
        return self.node[1]

    def touched_nodes(self) -> Set[RID]:
        """Every node whose graph state this delta moves — the set the
        copy-on-write layer must own before applying it."""
        touched: Set[RID] = {self.node}
        for source, target, _weight in self.edges:
            touched.add(source)
            touched.add(target)
        for node, _weight in self.prestige:
            touched.add(node)
        return touched

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Delta({self.kind} {self.node}, {len(self.edges)} edge "
            f"change(s), {len(self.prestige)} prestige touch(es))"
        )


# -- weight arithmetic (the Eq. 1 machinery, shared by every write path) ------


def pair_weight(
    database: Database,
    policy,
    source: RID,
    target: RID,
    _refs_memo: Optional[dict] = None,
) -> Optional[float]:
    """The Eq. 1 weight the directed edge ``source -> target`` should
    carry right now, or ``None`` when no reference justifies it.

    Candidates come from forward references ``source -> target`` and
    back edges of references ``target -> source``; multiple candidates
    merge through the policy rule (min / parallel), in any order —
    both rules are associative and commutative, so the result matches
    full construction.

    ``_refs_memo`` (internal) caches ``references_of`` per node across
    the pairs of one delta derivation: a hub tuple appears as the
    source of every one of its re-weigh pairs, and its resolved
    references cannot change mid-derivation.
    """
    if _refs_memo is None:
        source_refs = database.references_of(source)
        target_refs = database.references_of(target)
    else:
        source_refs = _refs_memo.get(source)
        if source_refs is None:
            source_refs = _refs_memo[source] = database.references_of(source)
        target_refs = _refs_memo.get(target)
        if target_refs is None:
            target_refs = _refs_memo[target] = database.references_of(target)
    candidates: List[float] = []
    for fk, referenced in source_refs:
        if referenced == target:
            candidates.append(
                policy.forward_similarity(fk.source_table, fk.target_table)
            )
    for fk, referenced in target_refs:
        if referenced == source:
            candidates.append(
                policy.backward_weight(
                    fk.source_table,
                    fk.target_table,
                    database.indegree_from(source, fk.source_table),
                )
            )
    if not candidates:
        return None
    weight = candidates[0]
    for candidate in candidates[1:]:
        weight = policy.merge(weight, candidate)
    return weight


def referrer_pairs(database: Database, target: RID) -> Set[_Pair]:
    """The directed pair ``(target, referrer)`` for each tuple that
    currently references ``target``: those are the Eq. 1 weights that
    depend on the target's per-relation indegree, which just changed.

    The opposite direction ``(referrer, target)`` is deliberately not
    emitted: per :func:`pair_weight`, the weight of ``s -> t`` merges
    forward similarities (constants per table pair) with backward
    weights driven by ``IN_R(s)`` — the *source's* indegree.  A
    mutation only moves the indegrees of the tuples its row references
    (the derivation's ``targets``), and every changed direction out of
    those is covered by this function applied to each target.  On
    bulk-ingested graphs with hub tuples this halves the dominant
    re-weigh cost.
    """
    pairs: Set[_Pair] = set()
    for referrer in database.referrer_nodes(target):
        if referrer != target:
            pairs.add((target, referrer))
    return pairs


def _edge_changes(
    database: Database,
    graph: DiGraph,
    policy,
    pairs: Set[_Pair],
    pending: Set[RID] = frozenset(),
    absent: Set[RID] = frozenset(),
) -> Tuple[EdgeChange, ...]:
    """Re-derive each directed pair's weight from the database.

    ``pending`` nodes are treated as present even though the graph has
    not seen them yet (an insert derives before the node is added);
    ``absent`` nodes are dropped (a delete derives after the node left
    the database but possibly before the graph caught up).  Pairs are
    emitted in sorted order so replay order — and therefore adjacency
    iteration order, which feeds Dijkstra tie-breaking — is identical
    on every replica.
    """

    has_node = graph.has_node
    changes: List[EdgeChange] = []
    refs_memo: dict = {}
    for source, target in sorted(pairs):
        if source == target:
            continue  # the graph model has no self loops
        if source in absent or target in absent:
            continue
        if not (source in pending or has_node(source)):
            continue
        if not (target in pending or has_node(target)):
            continue
        weight = pair_weight(database, policy, source, target, refs_memo)
        changes.append((source, target, weight))
    return tuple(changes)


def _prestige_touches(
    database: Database, policy, nodes: Set[RID], absent: Set[RID] = frozenset()
) -> Tuple[Tuple[RID, float], ...]:
    """Post-mutation prestige values for ``nodes`` (sorted for replay
    determinism)."""
    touches: List[Tuple[RID, float]] = []
    for node in sorted(nodes):
        if node in absent:
            continue
        if policy.prestige == "none":
            touches.append((node, 1.0))
        else:
            touches.append((node, float(database.indegree(node))))
    return tuple(touches)


# -- derivation (applies the relational + index part, returns the delta) ------


def derive_insert(
    database: Database,
    indexes: Sequence[InvertedIndex],
    graph: DiGraph,
    policy,
    table_name: str,
    values: Sequence[Any],
) -> Delta:
    """Insert a tuple; return the delta (graph part not yet applied)."""
    rid = database.insert(table_name, values)
    return _finish_insert(database, indexes, graph, policy, rid)


def derive_insert_dict(
    database: Database,
    indexes: Sequence[InvertedIndex],
    graph: DiGraph,
    policy,
    table_name: str,
    mapping: Mapping[str, Any],
) -> Delta:
    rid = database.insert_dict(table_name, mapping)
    return _finish_insert(database, indexes, graph, policy, rid)


def _finish_insert(
    database: Database,
    indexes: Sequence[InvertedIndex],
    graph: DiGraph,
    policy,
    rid: RID,
) -> Delta:
    added: Tuple[str, ...] = ()
    for index in indexes:
        added = index.add_row(rid[0], rid[1])
    targets = {target for _fk, target in database.references_of(rid)}
    pairs: Set[_Pair] = set()
    for target in targets:
        pairs.add((rid, target))
        pairs.add((target, rid))
        pairs.update(referrer_pairs(database, target))
    return Delta(
        kind="insert",
        node=rid,
        row_values=tuple(database.table(rid[0]).row(rid[1]).values),
        edges=_edge_changes(database, graph, policy, pairs, pending={rid}),
        prestige=_prestige_touches(database, policy, targets | {rid}),
        index_added=added,
    )


def derive_delete(
    database: Database,
    indexes: Sequence[InvertedIndex],
    graph: DiGraph,
    policy,
    rid: RID,
) -> Delta:
    """Delete a tuple; return the delta (graph part not yet applied).

    Raises :class:`repro.errors.IntegrityError` (with the index
    restored) if other tuples still reference ``rid``.
    """
    targets = [target for _fk, target in database.references_of(rid)]
    removed: Tuple[str, ...] = ()
    for index in indexes:
        removed = index.remove_row(rid[0], rid[1])
    try:
        database.delete(rid)
    except Exception:
        for index in indexes:
            index.add_row(rid[0], rid[1])  # restore postings
        raise
    pairs: Set[_Pair] = set()
    for target in targets:
        pairs.update(referrer_pairs(database, target))
    touched = set(targets)
    return Delta(
        kind="delete",
        node=rid,
        edges=_edge_changes(database, graph, policy, pairs, absent={rid}),
        prestige=_prestige_touches(database, policy, touched, absent={rid}),
        index_removed=removed,
    )


def derive_update(
    database: Database,
    indexes: Sequence[InvertedIndex],
    graph: DiGraph,
    policy,
    rid: RID,
    changes: Mapping[str, Any],
) -> Delta:
    """Update a tuple in place; return the delta (graph part pending)."""
    old_targets = {target for _fk, target in database.references_of(rid)}
    removed: Tuple[str, ...] = ()
    added: Tuple[str, ...] = ()
    for index in indexes:
        removed = index.remove_row(rid[0], rid[1])
    try:
        database.update(rid, changes)
    except Exception:
        for index in indexes:
            index.add_row(rid[0], rid[1])
        raise
    for index in indexes:
        added = index.add_row(rid[0], rid[1])
    new_targets = {target for _fk, target in database.references_of(rid)}
    touched = old_targets | new_targets
    pairs: Set[_Pair] = set()
    for target in touched:
        pairs.add((rid, target))
        pairs.add((target, rid))
        pairs.update(referrer_pairs(database, target))
    return Delta(
        kind="update",
        node=rid,
        changes=tuple(sorted(changes.items())),
        edges=_edge_changes(database, graph, policy, pairs),
        prestige=_prestige_touches(database, policy, touched | {rid}),
        index_added=added,
        index_removed=removed,
    )


# -- application / replay -----------------------------------------------------


def apply_graph_delta(graph: DiGraph, delta: Delta) -> None:
    """Apply the graph part of ``delta`` — idempotently.

    Idempotence matters because the thread-backed shard layer shares
    one stitched graph between several searchers: broadcasting a delta
    to each of them must not corrupt the shared state.  Edge adds
    re-assign the same weight; removals are guarded; node removal
    drops incident edges exactly once.
    """
    if delta.kind == "insert":
        graph.add_node(delta.node)
    for source, target, weight in delta.edges:
        if weight is None:
            if graph.has_edge(source, target):
                graph.remove_edge(source, target)
        else:
            graph.add_edge(source, target, weight)
    for node, weight in delta.prestige:
        if graph.has_node(node):
            graph.set_node_weight(node, weight)
    if delta.kind == "delete" and graph.has_node(delta.node):
        graph.remove_node(delta.node)


def replay_delta(
    database: Database,
    indexes: Sequence[InvertedIndex],
    delta: Delta,
) -> None:
    """Replay the relational + index part of ``delta`` on a replica.

    Order matters and is fixed per kind (index removal must read the
    row's pre-mutation values):

    * insert: database insert, then index adds;
    * delete: index removals, then database delete;
    * update: index removals, database update, index adds.

    Raises :class:`~repro.errors.StoreError` when an insert lands on a
    different RID than the delta recorded — the replica has diverged.
    """
    if delta.kind == "insert":
        rid = database.insert(delta.table, list(delta.row_values or ()))
        if rid != delta.node:
            raise StoreError(
                f"replica diverged: insert replay produced {rid}, "
                f"delta says {delta.node}"
            )
        for index in indexes:
            index.add_row(delta.table, delta.rid)
    elif delta.kind == "delete":
        for index in indexes:
            index.remove_row(delta.table, delta.rid)
        database.delete(delta.node)
    elif delta.kind == "update":
        for index in indexes:
            index.remove_row(delta.table, delta.rid)
        database.update(delta.node, dict(delta.changes or ()))
        for index in indexes:
            index.add_row(delta.table, delta.rid)
    else:  # pragma: no cover - defensive
        raise StoreError(f"unknown delta kind {delta.kind!r}")
