"""Relational-algebra operators over materialised result sets.

The browsing subsystem of the paper (Sec. 4) exposes exactly these
operations as interactive controls: project columns away, impose
selections, join through a foreign key in either direction, group by a
column, sort, paginate.  Each operator here is a pure function from a
:class:`Relation` to a new :class:`Relation` so that a browsing session is
a composable chain of operator applications.

A :class:`Relation` is a *derived* result: a list of named columns plus a
list of value tuples, optionally remembering the provenance RID of each
source row so hyperlinks can still be generated after projection.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Sequence, Tuple

from repro.errors import BrowseError, UnknownColumnError
from repro.relational.database import Database, RID
from repro.relational.schema import ForeignKey
from repro.relational.table import Row, Table

#: Comparison operators accepted by :func:`select` (and the SQL subset).
COMPARATORS: Dict[str, Callable[[Any, Any], bool]] = {
    "=": operator.eq,
    "==": operator.eq,
    "!=": operator.ne,
    "<>": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


@dataclass
class Relation:
    """A derived table: column names, rows, and per-row provenance.

    Attributes:
        columns: output column names, qualified (``"paper.title"``) when
            the relation is the result of a join.
        rows: value tuples, one per output row.
        provenance: for each row, the RIDs of the base-table tuples it was
            derived from (used by the browser to build hyperlinks).
    """

    columns: List[str]
    rows: List[Tuple[Any, ...]]
    provenance: List[Tuple[RID, ...]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.provenance:
            self.provenance = [() for _ in self.rows]
        if len(self.provenance) != len(self.rows):
            raise BrowseError("provenance length must match row count")

    def column_position(self, column_name: str) -> int:
        try:
            return self.columns.index(column_name)
        except ValueError:
            # Accept unqualified names when unambiguous.
            matches = [
                i
                for i, name in enumerate(self.columns)
                if name.split(".")[-1] == column_name
            ]
            if len(matches) == 1:
                return matches[0]
            raise UnknownColumnError("<derived>", column_name) from None

    def __len__(self) -> int:
        return len(self.rows)


def from_table(table: Table) -> Relation:
    """Lift a base table into a :class:`Relation`."""
    name = table.schema.name
    columns = [f"{name}.{c}" for c in table.schema.column_names]
    rows: List[Tuple[Any, ...]] = []
    provenance: List[Tuple[RID, ...]] = []
    for row in table.scan():
        rows.append(row.values)
        provenance.append(((name, row.rid),))
    return Relation(columns, rows, provenance)


def project(relation: Relation, keep: Sequence[str]) -> Relation:
    """Keep only the named columns (the browser's "drop column" control
    is ``project`` with the complement)."""
    positions = [relation.column_position(c) for c in keep]
    columns = [relation.columns[p] for p in positions]
    rows = [tuple(row[p] for p in positions) for row in relation.rows]
    return Relation(columns, rows, list(relation.provenance))


def drop_columns(relation: Relation, drop: Sequence[str]) -> Relation:
    """Project away the named columns."""
    drop_positions = {relation.column_position(c) for c in drop}
    keep = [
        name
        for i, name in enumerate(relation.columns)
        if i not in drop_positions
    ]
    return project(relation, keep)


def select(
    relation: Relation, column: str, comparator: str, value: Any
) -> Relation:
    """Filter rows by ``column <comparator> value``.

    NULLs never satisfy a comparison (SQL three-valued logic collapsed to
    "unknown is false").
    """
    if comparator not in COMPARATORS:
        raise BrowseError(f"unknown comparator: {comparator!r}")
    compare = COMPARATORS[comparator]
    position = relation.column_position(column)
    rows: List[Tuple[Any, ...]] = []
    provenance: List[Tuple[RID, ...]] = []
    for row, prov in zip(relation.rows, relation.provenance):
        cell = row[position]
        if cell is None:
            continue
        try:
            keep = compare(cell, value)
        except TypeError:
            keep = False
        if keep:
            rows.append(row)
            provenance.append(prov)
    return Relation(list(relation.columns), rows, provenance)


def select_where(
    relation: Relation, predicate: Callable[[Tuple[Any, ...]], bool]
) -> Relation:
    """General-predicate selection (used by the SQL layer for AND chains)."""
    rows: List[Tuple[Any, ...]] = []
    provenance: List[Tuple[RID, ...]] = []
    for row, prov in zip(relation.rows, relation.provenance):
        if predicate(row):
            rows.append(row)
            provenance.append(prov)
    return Relation(list(relation.columns), rows, provenance)


def join_fk(
    database: Database,
    relation: Relation,
    foreign_key: ForeignKey,
    reverse: bool = False,
) -> Relation:
    """Join the referenced (or, with ``reverse=True``, the referencing)
    table into ``relation`` along ``foreign_key``.

    This is the browser's one-click "join" control: for a foreign key
    column the referenced tuple's columns are appended; in reverse mode
    each row fans out to one output row per referencing tuple (rows with
    no referencing tuple disappear, i.e. an inner join, matching the
    paper's UI behaviour of showing referencing tuples).
    """
    if not reverse:
        other = database.table(foreign_key.target_table)
        key_positions = [
            relation.column_position(
                f"{foreign_key.source_table}.{c}"
            )
            for c in foreign_key.source_columns
        ]
        other_key_columns = foreign_key.target_columns
    else:
        other = database.table(foreign_key.source_table)
        key_positions = [
            relation.column_position(
                f"{foreign_key.target_table}.{c}"
            )
            for c in foreign_key.target_columns
        ]
        other_key_columns = foreign_key.source_columns

    # Hash the joined-in table on its key columns.
    other_positions = [
        other.schema.column_position(c) for c in other_key_columns
    ]
    buckets: Dict[Tuple[Any, ...], List[Row]] = {}
    for row in other.scan():
        key = tuple(row.values[p] for p in other_positions)
        buckets.setdefault(key, []).append(row)

    other_name = other.schema.name
    columns = list(relation.columns) + [
        f"{other_name}.{c}" for c in other.schema.column_names
    ]
    rows: List[Tuple[Any, ...]] = []
    provenance: List[Tuple[RID, ...]] = []
    for row, prov in zip(relation.rows, relation.provenance):
        key = tuple(row[p] for p in key_positions)
        if any(part is None for part in key):
            continue
        for match in buckets.get(key, ()):
            rows.append(row + match.values)
            provenance.append(prov + ((other_name, match.rid),))
    return Relation(columns, rows, provenance)


def group_by(relation: Relation, column: str) -> "Grouping":
    """Group rows by the distinct values of ``column``.

    Mirrors the paper's group-by control: "only the distinct values for
    that column [are] displayed; the user can click on any of the values
    to see the tuples associated with that value".
    """
    position = relation.column_position(column)
    groups: Dict[Any, List[int]] = {}
    for i, row in enumerate(relation.rows):
        groups.setdefault(row[position], []).append(i)
    return Grouping(relation, column, groups)


@dataclass
class Grouping:
    """The result of :func:`group_by`: distinct values, expandable."""

    relation: Relation
    column: str
    _groups: Dict[Any, List[int]]

    def distinct_values(self) -> List[Any]:
        return list(self._groups)

    def count(self, value: Any) -> int:
        return len(self._groups.get(value, ()))

    def expand(self, value: Any) -> Relation:
        """The rows associated with one distinct value."""
        indexes = self._groups.get(value, [])
        return Relation(
            list(self.relation.columns),
            [self.relation.rows[i] for i in indexes],
            [self.relation.provenance[i] for i in indexes],
        )


class _NullsLast:
    """Sort key wrapper ordering NULLs after every non-null value."""

    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value

    def __lt__(self, other: "_NullsLast") -> bool:
        if self.value is None:
            return False
        if other.value is None:
            return True
        return self.value < other.value


def sort_by(relation: Relation, column: str, descending: bool = False) -> Relation:
    """Stable sort by one column, NULLs last."""
    position = relation.column_position(column)
    order = sorted(
        range(len(relation.rows)),
        key=lambda i: _NullsLast(relation.rows[i][position]),
        reverse=descending,
    )
    return Relation(
        list(relation.columns),
        [relation.rows[i] for i in order],
        [relation.provenance[i] for i in order],
    )


def paginate(relation: Relation, page: int, page_size: int) -> Relation:
    """Slice out one page (pages are 1-based, as displayed to users)."""
    if page < 1 or page_size < 1:
        raise BrowseError("page and page_size must be >= 1")
    start = (page - 1) * page_size
    stop = start + page_size
    return Relation(
        list(relation.columns),
        relation.rows[start:stop],
        relation.provenance[start:stop],
    )


def page_count(relation: Relation, page_size: int) -> int:
    if page_size < 1:
        raise BrowseError("page_size must be >= 1")
    return max(1, -(-len(relation.rows) // page_size))


@dataclass
class Projection:
    """A reusable description of a column subset (kept for the template
    layer, which stores projections in the database)."""

    columns: Tuple[str, ...]

    def apply(self, relation: Relation) -> Relation:
        return project(relation, self.columns)
