"""Schema objects: columns, tables, foreign keys and the database catalog.

The schema layer is deliberately explicit — BANKS derives its entire data
graph from this metadata (every foreign key becomes a pair of directed
edges), and the browsing subsystem derives its hyperlinks from it, so the
catalog is the single source of truth for both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.errors import SchemaError, UnknownColumnError, UnknownTableError
from repro.relational.types import DataType


@dataclass(frozen=True)
class Column:
    """A typed, optionally NOT NULL column."""

    name: str
    datatype: DataType
    nullable: bool = True

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "").isalnum():
            raise SchemaError(f"invalid column name: {self.name!r}")


@dataclass(frozen=True)
class ForeignKey:
    """A foreign key from one table's columns to another table's key.

    Attributes:
        source_table: referencing table name.
        source_columns: referencing column names (composite keys allowed).
        target_table: referenced table name.
        target_columns: referenced column names, typically the primary key.
    """

    source_table: str
    source_columns: Tuple[str, ...]
    target_table: str
    target_columns: Tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.source_columns) != len(self.target_columns):
            raise SchemaError(
                "foreign key column count mismatch: "
                f"{self.source_columns} -> {self.target_columns}"
            )
        if not self.source_columns:
            raise SchemaError("foreign key must reference at least one column")

    @property
    def name(self) -> str:
        """A stable human-readable identifier for this constraint."""
        src = ",".join(self.source_columns)
        tgt = ",".join(self.target_columns)
        return f"{self.source_table}({src})->{self.target_table}({tgt})"


class TableSchema:
    """The definition of one table: columns, primary key, foreign keys."""

    def __init__(
        self,
        name: str,
        columns: Sequence[Column],
        primary_key: Sequence[str] = (),
        foreign_keys: Sequence[ForeignKey] = (),
    ):
        if not name or not name.replace("_", "").isalnum():
            raise SchemaError(f"invalid table name: {name!r}")
        self.name = name
        self.columns: Tuple[Column, ...] = tuple(columns)
        if not self.columns:
            raise SchemaError(f"table {name!r} must have at least one column")
        self._column_index: Dict[str, int] = {}
        for position, column in enumerate(self.columns):
            if column.name in self._column_index:
                raise SchemaError(
                    f"duplicate column {column.name!r} in table {name!r}"
                )
            self._column_index[column.name] = position

        self.primary_key: Tuple[str, ...] = tuple(primary_key)
        for key_column in self.primary_key:
            if key_column not in self._column_index:
                raise UnknownColumnError(name, key_column)

        self.foreign_keys: Tuple[ForeignKey, ...] = tuple(foreign_keys)
        for fk in self.foreign_keys:
            if fk.source_table != name:
                raise SchemaError(
                    f"foreign key {fk.name} declared on wrong table {name!r}"
                )
            for source_column in fk.source_columns:
                if source_column not in self._column_index:
                    raise UnknownColumnError(name, source_column)

    # -- column access ----------------------------------------------------

    @property
    def column_names(self) -> Tuple[str, ...]:
        return tuple(column.name for column in self.columns)

    def has_column(self, column_name: str) -> bool:
        return column_name in self._column_index

    def column_position(self, column_name: str) -> int:
        """Ordinal position of ``column_name`` or raise."""
        try:
            return self._column_index[column_name]
        except KeyError:
            raise UnknownColumnError(self.name, column_name) from None

    def column(self, column_name: str) -> Column:
        return self.columns[self.column_position(column_name)]

    def text_columns(self) -> List[Column]:
        """Columns whose values are searchable text (used by indexing)."""
        return [c for c in self.columns if c.datatype.name == "TEXT"]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        cols = ", ".join(f"{c.name} {c.datatype.name}" for c in self.columns)
        return f"TableSchema({self.name}: {cols})"


class DatabaseSchema:
    """The catalog: a named collection of :class:`TableSchema` objects.

    Validates referential structure eagerly — every foreign key must point
    at an existing table/columns by the time :meth:`validate` runs (the
    :class:`repro.relational.database.Database` calls it on every DDL
    change).
    """

    def __init__(self, tables: Iterable[TableSchema] = ()):
        self._tables: Dict[str, TableSchema] = {}
        for table in tables:
            self.add_table(table)

    def add_table(self, table: TableSchema) -> None:
        if table.name in self._tables:
            raise SchemaError(f"table {table.name!r} already exists")
        self._tables[table.name] = table

    def drop_table(self, table_name: str) -> None:
        if table_name not in self._tables:
            raise UnknownTableError(table_name)
        for other in self._tables.values():
            if other.name == table_name:
                continue
            for fk in other.foreign_keys:
                if fk.target_table == table_name:
                    raise SchemaError(
                        f"cannot drop {table_name!r}: referenced by {fk.name}"
                    )
        del self._tables[table_name]

    @property
    def table_names(self) -> List[str]:
        return list(self._tables)

    def has_table(self, table_name: str) -> bool:
        return table_name in self._tables

    def table(self, table_name: str) -> TableSchema:
        try:
            return self._tables[table_name]
        except KeyError:
            raise UnknownTableError(table_name) from None

    def tables(self) -> List[TableSchema]:
        return list(self._tables.values())

    def foreign_keys(self) -> List[ForeignKey]:
        """All foreign keys in the catalog, in declaration order."""
        keys: List[ForeignKey] = []
        for table in self._tables.values():
            keys.extend(table.foreign_keys)
        return keys

    def references_to(self, table_name: str) -> List[ForeignKey]:
        """Foreign keys *into* ``table_name`` (used for reverse browsing)."""
        return [fk for fk in self.foreign_keys() if fk.target_table == table_name]

    def validate(self) -> None:
        """Check cross-table consistency of every foreign key."""
        for table in self._tables.values():
            for fk in table.foreign_keys:
                if fk.target_table not in self._tables:
                    raise UnknownTableError(fk.target_table)
                target = self._tables[fk.target_table]
                for target_column in fk.target_columns:
                    if not target.has_column(target_column):
                        raise UnknownColumnError(fk.target_table, target_column)
                for source_column, target_column in zip(
                    fk.source_columns, fk.target_columns
                ):
                    source_type = table.column(source_column).datatype
                    target_type = target.column(target_column).datatype
                    if source_type.name != target_type.name:
                        raise SchemaError(
                            f"foreign key {fk.name} joins incompatible types "
                            f"{source_type.name} and {target_type.name}"
                        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DatabaseSchema({', '.join(self._tables)})"
