"""Secondary hash indexes on arbitrary column combinations.

Used by the browsing subsystem for fast selections and by tests as an
oracle-checked structure.  The index is maintained eagerly from the rows
present at build time; :meth:`HashIndex.add` / :meth:`HashIndex.remove`
keep it current afterwards.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Dict, List, Sequence, Tuple

from repro.relational.table import Row, Table


class HashIndex:
    """An equality index ``column values -> [RID]`` over one table."""

    def __init__(self, table: Table, column_names: Sequence[str]):
        self.table = table
        self.column_names: Tuple[str, ...] = tuple(column_names)
        self._positions = tuple(
            table.schema.column_position(name) for name in self.column_names
        )
        self._buckets: Dict[Tuple[Any, ...], List[int]] = defaultdict(list)
        for row in table.scan():
            self.add(row)

    def _key_of(self, row: Row) -> Tuple[Any, ...]:
        return tuple(row.values[p] for p in self._positions)

    def add(self, row: Row) -> None:
        self._buckets[self._key_of(row)].append(row.rid)

    def remove(self, row: Row) -> None:
        bucket = self._buckets.get(self._key_of(row))
        if bucket and row.rid in bucket:
            bucket.remove(row.rid)
            if not bucket:
                del self._buckets[self._key_of(row)]

    def lookup(self, key: Sequence[Any]) -> List[Row]:
        """All rows whose indexed columns equal ``key`` (RID order)."""
        rids = self._buckets.get(tuple(key), ())
        return [self.table.row(rid) for rid in rids if self.table.has_rid(rid)]

    def keys(self) -> List[Tuple[Any, ...]]:
        return list(self._buckets)

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        cols = ",".join(self.column_names)
        return f"HashIndex({self.table.schema.name}[{cols}], {len(self)} entries)"
