"""A SQL subset: DDL, DML and queries for BANKS databases.

Supported statements::

    CREATE TABLE t (
        a INTEGER NOT NULL PRIMARY KEY,
        b TEXT,
        PRIMARY KEY (a, b),                      -- table-level form
        FOREIGN KEY (b) REFERENCES other(name)
    );
    INSERT INTO t VALUES (1, 'x');
    INSERT INTO t (a, b) VALUES (1, 'x');
    UPDATE t SET b = 'y', a = a + 1 WHERE a >= 2;
    DELETE FROM t WHERE b LIKE '%obsolete%';
    SELECT a, b FROM t
        WHERE (a >= 2 OR b IN ('x', 'y')) AND b IS NOT NULL
        ORDER BY a DESC, b LIMIT 5 OFFSET 10;
    SELECT DISTINCT b FROM t;
    SELECT t.a, u.name FROM t JOIN u ON t.b = u.id WHERE u.age > 30;
    SELECT b, COUNT(*), SUM(a) AS total FROM t GROUP BY b HAVING COUNT(*) > 1;
    DROP TABLE t;

Still intentionally a *subset* — no subqueries, no outer joins, no window
functions.  The parser is a hand-written tokenizer + recursive descent,
raising :class:`repro.errors.SQLSyntaxError` with the offending statement
on any deviation.  Expressions (``WHERE`` / ``HAVING`` / ``ON`` / ``SET``)
share the engine in :mod:`repro.relational.expr`, which implements SQL's
three-valued NULL logic.
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import IntegrityError, SQLSyntaxError, UnknownColumnError
from repro.relational.algebra import (
    Relation,
    from_table,
    project,
    select_where,
    sort_by,
)
from repro.relational.database import Database, RID
from repro.relational.expr import (
    Arithmetic,
    Between,
    ColumnRef,
    Comparison,
    Expression,
    InList,
    IsNull,
    Like,
    Literal,
    Negate,
    Not,
    And,
    Or,
    equality_pairs,
)
from repro.relational.schema import Column, ForeignKey, TableSchema
from repro.relational.types import type_from_name

_TOKEN_RE = re.compile(
    r"""
    \s*(
        '(?:[^']|'')*'            # string literal with '' escape
      | \d+\.\d+                  # float
      | \d+                       # int
      | [A-Za-z_][A-Za-z_0-9]*    # identifier / keyword
      | <> | <= | >= | != | ==    # two-char operators
      | [(),;*=<>.+\-/%]          # punctuation and arithmetic
    )
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "CREATE", "TABLE", "DROP", "INSERT", "INTO", "VALUES", "SELECT", "FROM",
    "WHERE", "AND", "OR", "NOT", "ORDER", "BY", "ASC", "DESC", "LIMIT",
    "OFFSET", "PRIMARY", "KEY", "FOREIGN", "REFERENCES", "NULL", "TRUE",
    "FALSE", "UPDATE", "SET", "DELETE", "JOIN", "INNER", "ON", "GROUP",
    "HAVING", "DISTINCT", "LIKE", "IN", "IS", "BETWEEN", "AS",
}

#: Aggregate function names accepted in a select list.
_AGGREGATES = ("COUNT", "SUM", "AVG", "MIN", "MAX")

_COMPARATOR_TOKENS = ("=", "==", "!=", "<>", "<", "<=", ">", ">=")


def tokenize(text: str) -> List[str]:
    """Split ``text`` into SQL tokens; raise on unlexable input."""
    tokens: List[str] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            remainder = text[position:].strip()
            if not remainder:
                break
            raise SQLSyntaxError(f"cannot tokenize near {remainder[:20]!r}", text)
        tokens.append(match.group(1))
        position = match.end()
    return tokens


class _Parser:
    """Token-stream cursor with expectation helpers."""

    def __init__(self, tokens: List[str], statement: str):
        self.tokens = tokens
        self.statement = statement
        self.position = 0
        # When set (HAVING clauses), aggregate spellings like COUNT(*)
        # parse as references to the aggregation's output columns.
        self.aggregate_refs = False

    # -- cursor helpers ----------------------------------------------------

    def peek(self, ahead: int = 0) -> Optional[str]:
        if self.position + ahead < len(self.tokens):
            return self.tokens[self.position + ahead]
        return None

    def peek_upper(self, ahead: int = 0) -> Optional[str]:
        token = self.peek(ahead)
        return token.upper() if token is not None else None

    def advance(self) -> str:
        token = self.peek()
        if token is None:
            raise SQLSyntaxError("unexpected end of statement", self.statement)
        self.position += 1
        return token

    def expect(self, expected: str) -> str:
        token = self.advance()
        if token.upper() != expected.upper():
            raise SQLSyntaxError(
                f"expected {expected!r}, found {token!r}", self.statement
            )
        return token

    def accept(self, expected: str) -> bool:
        if self.peek_upper() == expected.upper():
            self.position += 1
            return True
        return False

    def done(self) -> bool:
        # A trailing semicolon is allowed and ignored.
        return self.peek() is None or self.peek() == ";"

    def expect_identifier(self) -> str:
        token = self.advance()
        if not re.fullmatch(r"[A-Za-z_][A-Za-z_0-9]*", token):
            raise SQLSyntaxError(f"expected identifier, found {token!r}", self.statement)
        if token.upper() in _KEYWORDS:
            raise SQLSyntaxError(
                f"keyword {token!r} used as identifier", self.statement
            )
        return token

    def expect_column_ref(self) -> str:
        """An optionally qualified column name (``col`` or ``table.col``)."""
        name = self.expect_identifier()
        if self.peek() == ".":
            self.advance()
            name = f"{name}.{self.expect_identifier()}"
        return name

    def at_literal(self) -> bool:
        token = self.peek()
        if token is None:
            return False
        if token.startswith("'") or re.fullmatch(r"\d+(\.\d+)?", token):
            return True
        return token.upper() in ("NULL", "TRUE", "FALSE")

    def parse_literal(self) -> Any:
        negative = False
        if self.peek() == "-":
            self.advance()
            negative = True
        token = self.advance()
        if token.startswith("'"):
            if negative:
                raise SQLSyntaxError("cannot negate a string literal", self.statement)
            return token[1:-1].replace("''", "'")
        if re.fullmatch(r"\d+\.\d+", token):
            value: Any = float(token)
            return -value if negative else value
        if re.fullmatch(r"\d+", token):
            value = int(token)
            return -value if negative else value
        upper = token.upper()
        if negative:
            raise SQLSyntaxError(f"cannot negate {token!r}", self.statement)
        if upper == "NULL":
            return None
        if upper == "TRUE":
            return True
        if upper == "FALSE":
            return False
        raise SQLSyntaxError(f"expected literal, found {token!r}", self.statement)

    # -- expression grammar ---------------------------------------------------
    #
    # expr     := or_expr
    # or_expr  := and_expr (OR and_expr)*
    # and_expr := not_expr (AND not_expr)*
    # not_expr := NOT not_expr | predicate
    # predicate:= sum [comparison | LIKE | IN | IS NULL | BETWEEN]
    # sum      := term ((+|-) term)*
    # term     := factor ((*|/|%) factor)*
    # factor   := - factor | literal | column_ref | ( expr )

    def parse_expression(self) -> Expression:
        return self._parse_or()

    def _parse_or(self) -> Expression:
        left = self._parse_and()
        while self.accept("OR"):
            left = Or(left, self._parse_and())
        return left

    def _parse_and(self) -> Expression:
        left = self._parse_not()
        while self.accept("AND"):
            left = And(left, self._parse_not())
        return left

    def _parse_not(self) -> Expression:
        if self.accept("NOT"):
            return Not(self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self) -> Expression:
        left = self._parse_sum()
        token = self.peek()
        upper = self.peek_upper()
        if token in _COMPARATOR_TOKENS:
            operator = self.advance()
            return Comparison(operator, left, self._parse_sum())
        negated = False
        if upper == "NOT" and self.peek_upper(1) in ("LIKE", "IN", "BETWEEN"):
            self.advance()
            negated = True
            upper = self.peek_upper()
        if upper == "LIKE":
            self.advance()
            return Like(left, self._parse_sum(), negated=negated)
        if upper == "IN":
            self.advance()
            self.expect("(")
            items: List[Expression] = [Literal(self.parse_literal())]
            while self.accept(","):
                items.append(Literal(self.parse_literal()))
            self.expect(")")
            return InList(left, tuple(items), negated=negated)
        if upper == "BETWEEN":
            self.advance()
            low = self._parse_sum()
            self.expect("AND")
            return Between(left, low, self._parse_sum(), negated=negated)
        if upper == "IS":
            self.advance()
            is_not = self.accept("NOT")
            self.expect("NULL")
            return IsNull(left, negated=is_not)
        return left

    def _parse_sum(self) -> Expression:
        left = self._parse_term()
        while self.peek() in ("+", "-"):
            operator = self.advance()
            left = Arithmetic(operator, left, self._parse_term())
        return left

    def _parse_term(self) -> Expression:
        left = self._parse_factor()
        while self.peek() in ("*", "/", "%"):
            operator = self.advance()
            left = Arithmetic(operator, left, self._parse_factor())
        return left

    def _parse_factor(self) -> Expression:
        if self.peek() == "-":
            self.advance()
            return Negate(self._parse_factor())
        if self.peek() == "(":
            self.advance()
            inner = self.parse_expression()
            self.expect(")")
            return inner
        if self.at_literal():
            return Literal(self.parse_literal())
        if (
            self.aggregate_refs
            and self.peek_upper() in _AGGREGATES
            and self.peek(1) == "("
        ):
            function = self.advance().lower()
            self.expect("(")
            if self.peek() == "*":
                self.advance()
                argument = "*"
            else:
                argument = self.expect_column_ref()
            self.expect(")")
            return ColumnRef(f"{function}({argument})")
        return ColumnRef(self.expect_column_ref())


def _split_statements(script: str) -> List[str]:
    """Split a script on semicolons that are outside string literals."""
    statements: List[str] = []
    current: List[str] = []
    in_string = False
    for char in script:
        if char == "'":
            in_string = not in_string
            current.append(char)
        elif char == ";" and not in_string:
            text = "".join(current).strip()
            if text:
                statements.append(text)
            current = []
        else:
            current.append(char)
    tail = "".join(current).strip()
    if tail:
        statements.append(tail)
    return statements


# -- DDL ----------------------------------------------------------------------


def _parse_column_list(parser: _Parser) -> List[str]:
    parser.expect("(")
    names = [parser.expect_identifier()]
    while parser.accept(","):
        names.append(parser.expect_identifier())
    parser.expect(")")
    return names


def _execute_create_table(parser: _Parser, database: Database) -> None:
    parser.expect("TABLE")
    table_name = parser.expect_identifier()
    parser.expect("(")

    columns: List[Column] = []
    primary_key: List[str] = []
    foreign_keys: List[ForeignKey] = []

    while True:
        upper = parser.peek_upper()
        if upper == "PRIMARY":
            parser.advance()
            parser.expect("KEY")
            if primary_key:
                raise SQLSyntaxError("duplicate PRIMARY KEY", parser.statement)
            primary_key = _parse_column_list(parser)
        elif upper == "FOREIGN":
            parser.advance()
            parser.expect("KEY")
            source_columns = _parse_column_list(parser)
            parser.expect("REFERENCES")
            target_table = parser.expect_identifier()
            target_columns = _parse_column_list(parser)
            foreign_keys.append(
                ForeignKey(
                    table_name,
                    tuple(source_columns),
                    target_table,
                    tuple(target_columns),
                )
            )
        else:
            column_name = parser.expect_identifier()
            type_token = parser.advance()
            # Swallow a parenthesised length like VARCHAR(80).
            if parser.peek() == "(":
                parser.advance()
                parser.advance()
                parser.expect(")")
            datatype = type_from_name(type_token)
            nullable = True
            while True:
                if parser.accept("NOT"):
                    parser.expect("NULL")
                    nullable = False
                elif parser.peek_upper() == "PRIMARY":
                    parser.advance()
                    parser.expect("KEY")
                    primary_key = [column_name]
                    nullable = False
                elif parser.peek_upper() == "REFERENCES":
                    parser.advance()
                    target_table = parser.expect_identifier()
                    target_columns = _parse_column_list(parser)
                    foreign_keys.append(
                        ForeignKey(
                            table_name,
                            (column_name,),
                            target_table,
                            tuple(target_columns),
                        )
                    )
                else:
                    break
            columns.append(Column(column_name, datatype, nullable))

        if parser.accept(","):
            continue
        parser.expect(")")
        break

    database.create_table(
        TableSchema(table_name, columns, primary_key, foreign_keys)
    )


# -- DML ----------------------------------------------------------------------


def _execute_insert(parser: _Parser, database: Database) -> Tuple[str, int]:
    parser.expect("INTO")
    table_name = parser.expect_identifier()
    column_names: Optional[List[str]] = None
    if parser.peek() == "(":
        column_names = _parse_column_list(parser)
    parser.expect("VALUES")
    parser.expect("(")
    values: List[Any] = [parser.parse_literal()]
    while parser.accept(","):
        values.append(parser.parse_literal())
    parser.expect(")")

    if column_names is None:
        return database.insert(table_name, values)
    if len(column_names) != len(values):
        raise SQLSyntaxError(
            f"{len(column_names)} columns but {len(values)} values",
            parser.statement,
        )
    return database.insert_dict(table_name, dict(zip(column_names, values)))


def _execute_update(parser: _Parser, database: Database) -> int:
    """``UPDATE t SET col = expr [, ...] [WHERE expr]``; returns the
    number of updated rows.  SET expressions are evaluated against the
    *old* row, so ``SET a = a + 1`` behaves as in SQL."""
    table_name = parser.expect_identifier()
    table = database.table(table_name)
    parser.expect("SET")

    assignments: List[Tuple[str, Expression]] = []
    while True:
        column = parser.expect_identifier()
        table.schema.column_position(column)  # raises on unknown
        parser.expect("=")
        assignments.append((column, parser.parse_expression()))
        if not parser.accept(","):
            break

    predicate: Optional[Expression] = None
    if parser.accept("WHERE"):
        predicate = parser.parse_expression()

    relation = from_table(table)
    resolve = relation.column_position
    updates: List[Tuple[RID, Dict[str, Any]]] = []
    for row_values, provenance in zip(relation.rows, relation.provenance):
        if predicate is not None and not predicate.is_true(row_values, resolve):
            continue
        changes = {
            column: expression.evaluate(row_values, resolve)
            for column, expression in assignments
        }
        updates.append((provenance[0], changes))
    for rid, changes in updates:
        database.update(rid, changes)
    return len(updates)


def _execute_delete(parser: _Parser, database: Database) -> int:
    """``DELETE FROM t [WHERE expr]``; returns the number of deleted rows.

    Matching rows may reference each other (self-referencing tables), so
    deletion retries in passes until it stops making progress; a genuine
    external reference then surfaces as :class:`IntegrityError`.
    """
    parser.expect("FROM")
    table_name = parser.expect_identifier()
    table = database.table(table_name)

    predicate: Optional[Expression] = None
    if parser.accept("WHERE"):
        predicate = parser.parse_expression()

    relation = from_table(table)
    resolve = relation.column_position
    doomed: List[RID] = [
        provenance[0]
        for row_values, provenance in zip(relation.rows, relation.provenance)
        if predicate is None or predicate.is_true(row_values, resolve)
    ]

    deleted = 0
    pending = doomed
    while pending:
        survivors: List[RID] = []
        last_error: Optional[IntegrityError] = None
        for rid in pending:
            try:
                database.delete(rid)
                deleted += 1
            except IntegrityError as exc:  # maybe referenced intra-batch
                survivors.append(rid)
                last_error = exc
        if len(survivors) == len(pending):
            assert last_error is not None
            raise last_error  # no progress: a real external reference
        pending = survivors
    return deleted


# -- SELECT ---------------------------------------------------------------------


class _SelectItem:
    """One entry of a select list: a column or an aggregate call."""

    __slots__ = ("kind", "column", "function", "alias")

    def __init__(
        self,
        kind: str,
        column: Optional[str],
        function: Optional[str] = None,
        alias: Optional[str] = None,
    ):
        self.kind = kind  # "column" | "aggregate"
        self.column = column  # None means COUNT(*)
        self.function = function
        self.alias = alias

    @property
    def output_name(self) -> str:
        if self.alias:
            return self.alias
        if self.kind == "column":
            return self.column or ""
        argument = self.column if self.column is not None else "*"
        return f"{(self.function or '').lower()}({argument})"


def _parse_select_item(parser: _Parser) -> _SelectItem:
    upper = parser.peek_upper()
    if upper in _AGGREGATES and parser.peek(1) == "(":
        function = parser.advance().upper()
        parser.expect("(")
        if parser.peek() == "*":
            parser.advance()
            column: Optional[str] = None
            if function != "COUNT":
                raise SQLSyntaxError(
                    f"{function}(*) is not valid; only COUNT(*)",
                    parser.statement,
                )
        else:
            column = parser.expect_column_ref()
        parser.expect(")")
        alias = parser.expect_identifier() if parser.accept("AS") else None
        return _SelectItem("aggregate", column, function, alias)
    column = parser.expect_column_ref()
    alias = parser.expect_identifier() if parser.accept("AS") else None
    return _SelectItem("column", column, alias=alias)


def _hash_join(
    left: Relation,
    right: Relation,
    pairs: Sequence[Tuple[str, str]],
) -> Relation:
    """Equi-join on resolved column pairs (each pair may name a column of
    either side; both orientations are tried)."""
    left_positions: List[int] = []
    right_positions: List[int] = []
    for first, second in pairs:
        try:
            left_positions.append(left.column_position(first))
            right_positions.append(right.column_position(second))
        except UnknownColumnError:
            left_positions.append(left.column_position(second))
            right_positions.append(right.column_position(first))

    buckets: Dict[Tuple[Any, ...], List[int]] = {}
    for i, row in enumerate(right.rows):
        key = tuple(row[p] for p in right_positions)
        if any(part is None for part in key):
            continue
        buckets.setdefault(key, []).append(i)

    columns = list(left.columns) + list(right.columns)
    rows: List[Tuple[Any, ...]] = []
    provenance: List[Tuple[RID, ...]] = []
    for row, prov in zip(left.rows, left.provenance):
        key = tuple(row[p] for p in left_positions)
        if any(part is None for part in key):
            continue
        for i in buckets.get(key, ()):
            rows.append(row + right.rows[i])
            provenance.append(prov + right.provenance[i])
    return Relation(columns, rows, provenance)


def _nested_loop_join(
    left: Relation, right: Relation, condition: Expression
) -> Relation:
    """General-predicate inner join (used when ON is not an equi-join)."""
    columns = list(left.columns) + list(right.columns)
    combined = Relation(columns, [], [])
    resolve = combined.column_position
    rows: List[Tuple[Any, ...]] = []
    provenance: List[Tuple[RID, ...]] = []
    for row, prov in zip(left.rows, left.provenance):
        for other_row, other_prov in zip(right.rows, right.provenance):
            candidate = row + other_row
            if condition.is_true(candidate, resolve):
                rows.append(candidate)
                provenance.append(prov + other_prov)
    return Relation(columns, rows, provenance)


def _distinct(relation: Relation) -> Relation:
    """Keep the first occurrence of each distinct row."""
    seen: set = set()
    rows: List[Tuple[Any, ...]] = []
    provenance: List[Tuple[RID, ...]] = []
    for row, prov in zip(relation.rows, relation.provenance):
        if row in seen:
            continue
        seen.add(row)
        rows.append(row)
        provenance.append(prov)
    return Relation(list(relation.columns), rows, provenance)


def _aggregate_value(
    function: str, values: List[Any]
) -> Any:
    """One aggregate over the non-null values of a group (SQL semantics:
    NULLs are ignored; empty input yields NULL, except COUNT = 0)."""
    if function == "COUNT":
        return len(values)
    if not values:
        return None
    if function == "SUM":
        return sum(values)
    if function == "AVG":
        return sum(values) / len(values)
    if function == "MIN":
        return min(values)
    if function == "MAX":
        return max(values)
    raise SQLSyntaxError(f"unknown aggregate {function!r}")


def _apply_aggregation(
    relation: Relation,
    items: Sequence[_SelectItem],
    group_columns: Sequence[str],
    statement: str,
) -> Relation:
    """GROUP BY + aggregate evaluation producing the output relation."""
    group_positions = [relation.column_position(c) for c in group_columns]
    grouped_names = set(group_columns) | {
        relation.columns[p] for p in group_positions
    }
    for item in items:
        if item.kind == "column":
            name = item.column or ""
            if name not in grouped_names and not any(
                relation.column_position(name) == p for p in group_positions
            ):
                raise SQLSyntaxError(
                    f"column {name!r} must appear in GROUP BY "
                    "or inside an aggregate",
                    statement,
                )

    groups: Dict[Tuple[Any, ...], List[int]] = {}
    for i, row in enumerate(relation.rows):
        key = tuple(row[p] for p in group_positions)
        groups.setdefault(key, []).append(i)
    if not group_positions and not groups:
        groups[()] = []  # aggregate over an empty table: one empty group

    columns = [item.output_name for item in items]
    rows: List[Tuple[Any, ...]] = []
    for key, indexes in groups.items():
        out: List[Any] = []
        for item in items:
            if item.kind == "column":
                position = relation.column_position(item.column or "")
                out.append(relation.rows[indexes[0]][position] if indexes else None)
                continue
            if item.column is None:  # COUNT(*)
                out.append(len(indexes))
                continue
            position = relation.column_position(item.column)
            values = [
                relation.rows[i][position]
                for i in indexes
                if relation.rows[i][position] is not None
            ]
            out.append(_aggregate_value(item.function or "", values))
        rows.append(tuple(out))
    return Relation(columns, rows)


def _execute_select(parser: _Parser, database: Database) -> Relation:
    distinct = parser.accept("DISTINCT")
    star = parser.accept("*")
    items: List[_SelectItem] = []
    if not star:
        items.append(_parse_select_item(parser))
        while parser.accept(","):
            items.append(_parse_select_item(parser))

    parser.expect("FROM")
    table_name = parser.expect_identifier()
    relation = from_table(database.table(table_name))

    while True:
        if parser.accept("INNER"):
            parser.expect("JOIN")
        elif not parser.accept("JOIN"):
            break
        other_name = parser.expect_identifier()
        other = from_table(database.table(other_name))
        parser.expect("ON")
        condition = parser.parse_expression()
        pairs = equality_pairs(condition)
        if pairs is not None:
            relation = _hash_join(relation, other, pairs)
        else:
            relation = _nested_loop_join(relation, other, condition)

    if parser.accept("WHERE"):
        predicate = parser.parse_expression()
        resolve = relation.column_position
        relation = select_where(
            relation, lambda row: predicate.is_true(row, resolve)
        )

    group_columns: List[str] = []
    if parser.accept("GROUP"):
        parser.expect("BY")
        group_columns.append(parser.expect_column_ref())
        while parser.accept(","):
            group_columns.append(parser.expect_column_ref())

    has_aggregates = any(item.kind == "aggregate" for item in items)

    having: Optional[Expression] = None
    if parser.accept("HAVING"):
        if not (group_columns or has_aggregates):
            raise SQLSyntaxError(
                "HAVING requires GROUP BY or aggregates", parser.statement
            )
        parser.aggregate_refs = True
        having = parser.parse_expression()
        parser.aggregate_refs = False

    if group_columns or has_aggregates:
        if star:
            raise SQLSyntaxError(
                "SELECT * cannot be combined with GROUP BY / aggregates",
                parser.statement,
            )
        # Aggregates the HAVING clause uses but the select list does not
        # are computed as hidden columns and projected away afterwards
        # (``... GROUP BY c HAVING COUNT(*) > 1`` with COUNT unselected).
        output_names = {item.output_name for item in items}
        hidden: List[_SelectItem] = []
        if having is not None:
            for name in having.columns():
                item = _aggregate_item_from_name(name)
                if (
                    item is not None
                    and name not in output_names
                    and all(h.output_name != name for h in hidden)
                ):
                    hidden.append(item)
        relation = _apply_aggregation(
            relation, list(items) + hidden, group_columns, parser.statement
        )
        if having is not None:
            resolve = relation.column_position
            relation = select_where(
                relation, lambda row: having.is_true(row, resolve)
            )
        if hidden:
            relation = project(
                relation, [item.output_name for item in items]
            )
        projected = True
    else:
        projected = False

    order_terms: List[Tuple[str, bool]] = []
    if parser.accept("ORDER"):
        parser.expect("BY")
        while True:
            column = _order_by_column(parser)
            descending = False
            if parser.accept("DESC"):
                descending = True
            else:
                parser.accept("ASC")
            order_terms.append((column, descending))
            if not parser.accept(","):
                break
        # Stable sorts applied minor-key first implement multi-column order.
        for column, descending in reversed(order_terms):
            relation = sort_by(relation, column, descending)

    limit: Optional[int] = None
    offset = 0
    if parser.accept("LIMIT"):
        limit_value = parser.parse_literal()
        if not isinstance(limit_value, int) or limit_value < 0:
            raise SQLSyntaxError(
                "LIMIT must be a non-negative integer", parser.statement
            )
        limit = limit_value
        if parser.accept("OFFSET"):
            offset_value = parser.parse_literal()
            if not isinstance(offset_value, int) or offset_value < 0:
                raise SQLSyntaxError(
                    "OFFSET must be a non-negative integer", parser.statement
                )
            offset = offset_value

    if limit is not None or offset:
        stop = None if limit is None else offset + limit
        relation = Relation(
            list(relation.columns),
            relation.rows[offset:stop],
            relation.provenance[offset:stop],
        )

    if not star and not projected:
        positions = [
            relation.column_position(item.column or "") for item in items
        ]
        columns = [
            item.alias or relation.columns[position]
            for item, position in zip(items, positions)
        ]
        rows = [tuple(row[p] for p in positions) for row in relation.rows]
        relation = Relation(columns, rows, list(relation.provenance))

    if distinct:
        relation = _distinct(relation)
    return relation


_AGGREGATE_NAME_RE = re.compile(
    r"^(count|sum|avg|min|max)\((.+|\*)\)$", re.IGNORECASE
)


def _aggregate_item_from_name(name: str) -> Optional[_SelectItem]:
    """Reconstruct a select item from an aggregate spelling like
    ``count(*)`` or ``sum(price)``; ``None`` for plain column names."""
    match = _AGGREGATE_NAME_RE.match(name)
    if match is None:
        return None
    function = match.group(1).upper()
    argument = match.group(2)
    column = None if argument == "*" else argument
    if column is None and function != "COUNT":
        return None
    return _SelectItem("aggregate", column, function)


def _order_by_column(parser: _Parser) -> str:
    """ORDER BY accepts plain/qualified columns and aggregate spellings
    (``COUNT(*)``), the latter resolving to the output column name."""
    upper = parser.peek_upper()
    if upper in _AGGREGATES and parser.peek(1) == "(":
        function = parser.advance().lower()
        parser.expect("(")
        if parser.peek() == "*":
            parser.advance()
            argument = "*"
        else:
            argument = parser.expect_column_ref()
        parser.expect(")")
        return f"{function}({argument})"
    return parser.expect_column_ref()


# -- entry points ----------------------------------------------------------------

#: What :func:`execute_sql` may return, depending on the statement verb.
SQLResult = Union[Relation, Tuple[str, int], int, None]


def execute_sql(database: Database, statement: str) -> SQLResult:
    """Execute a single SQL statement against ``database``.

    Returns a :class:`Relation` for SELECT, the inserted RID for INSERT,
    the affected-row count for UPDATE / DELETE, and ``None`` for DDL.
    """
    tokens = tokenize(statement)
    if not tokens:
        raise SQLSyntaxError("empty statement", statement)
    parser = _Parser(tokens, statement)
    verb = parser.advance().upper()
    result: SQLResult
    if verb == "CREATE":
        _execute_create_table(parser, database)
        result = None
    elif verb == "DROP":
        parser.expect("TABLE")
        database.drop_table(parser.expect_identifier())
        result = None
    elif verb == "INSERT":
        result = _execute_insert(parser, database)
    elif verb == "UPDATE":
        result = _execute_update(parser, database)
    elif verb == "DELETE":
        result = _execute_delete(parser, database)
    elif verb == "SELECT":
        result = _execute_select(parser, database)
    else:
        raise SQLSyntaxError(f"unsupported statement verb {verb!r}", statement)
    if not parser.done():
        raise SQLSyntaxError(
            f"trailing tokens: {' '.join(parser.tokens[parser.position:])!r}",
            statement,
        )
    return result


def execute_script(database: Database, script: str) -> List[SQLResult]:
    """Execute a semicolon-separated script; return per-statement results."""
    return [
        execute_sql(database, statement)
        for statement in _split_statements(script)
    ]
