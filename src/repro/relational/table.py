"""Heap table storage with RID addressing.

Tuples live in an append-only list; a tuple's RID (row identifier) is its
slot number in that list, which is exactly the addressing contract the
BANKS paper relies on: *"the in-memory node representation need not store
any attribute of the corresponding tuple other than the RID"*.  Deleting a
row leaves a tombstone so RIDs stay stable.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.errors import IntegrityError, TypeMismatchError, UnknownColumnError
from repro.relational.schema import TableSchema


class Row:
    """One tuple plus the metadata needed to interpret it.

    A lightweight view object: it shares the underlying value tuple with
    the table's heap (no copying) and exposes column access by name.
    """

    __slots__ = ("table_name", "rid", "values", "_schema")

    def __init__(
        self, table_name: str, rid: int, values: Tuple[Any, ...], schema: TableSchema
    ):
        self.table_name = table_name
        self.rid = rid
        self.values = values
        self._schema = schema

    def __getitem__(self, column_name: str) -> Any:
        return self.values[self._schema.column_position(column_name)]

    def get(self, column_name: str, default: Any = None) -> Any:
        if not self._schema.has_column(column_name):
            return default
        return self[column_name]

    def as_dict(self) -> Dict[str, Any]:
        return dict(zip(self._schema.column_names, self.values))

    @property
    def schema(self) -> TableSchema:
        return self._schema

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Row):
            return NotImplemented
        return (
            self.table_name == other.table_name
            and self.rid == other.rid
            and self.values == other.values
        )

    def __hash__(self) -> int:
        return hash((self.table_name, self.rid))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        pairs = ", ".join(
            f"{name}={value!r}"
            for name, value in zip(self._schema.column_names, self.values)
        )
        return f"Row({self.table_name}:{self.rid} {pairs})"


class Table:
    """An append-only heap of tuples conforming to a :class:`TableSchema`.

    Maintains a hash index on the primary key (if one is declared) so that
    foreign-key checks and browsing lookups are O(1).
    """

    def __init__(self, schema: TableSchema):
        self.schema = schema
        self._heap: List[Optional[Tuple[Any, ...]]] = []
        self._live_count = 0
        self._pk_positions: Tuple[int, ...] = tuple(
            schema.column_position(c) for c in schema.primary_key
        )
        self._pk_index: Dict[Tuple[Any, ...], int] = {}
        self._shared = False

    # -- copy-on-write forking ---------------------------------------------

    def fork(self) -> "Table":
        """A copy-on-write fork sharing this table's heap and PK index.

        Both sides keep reading the shared storage for free; whichever
        side mutates first takes a private copy of the heap and PK
        index (row tuples themselves are immutable and stay shared
        forever).  The snapshot store forks the newest version and
        never mutates published ones, so in practice only the fork
        pays the copy — and only if the batch touches this table.
        """
        child = Table(self.schema)
        child._heap = self._heap
        child._pk_index = self._pk_index
        child._live_count = self._live_count
        child._shared = True
        self._shared = True
        return child

    def _materialize(self) -> None:
        if self._shared:
            self._heap = list(self._heap)
            self._pk_index = dict(self._pk_index)
            self._shared = False

    @property
    def next_rid(self) -> int:
        """The RID the next successful :meth:`insert` will assign."""
        return len(self._heap)

    # -- mutation ----------------------------------------------------------

    def insert(self, values: Sequence[Any]) -> int:
        """Validate and append one tuple; return its RID."""
        self._materialize()
        columns = self.schema.columns
        if len(values) != len(columns):
            raise IntegrityError(
                f"table {self.schema.name!r} expects {len(columns)} values, "
                f"got {len(values)}"
            )
        coerced: List[Any] = []
        for column, value in zip(columns, values):
            try:
                typed = column.datatype.validate(value)
            except TypeMismatchError as exc:
                raise TypeMismatchError(
                    f"{self.schema.name}.{column.name}: {exc}"
                ) from None
            if typed is None and not column.nullable:
                raise IntegrityError(
                    f"{self.schema.name}.{column.name} is NOT NULL"
                )
            coerced.append(typed)
        row_tuple = tuple(coerced)

        if self._pk_positions:
            key = tuple(row_tuple[p] for p in self._pk_positions)
            if any(part is None for part in key):
                raise IntegrityError(
                    f"primary key of {self.schema.name!r} cannot be NULL"
                )
            if key in self._pk_index:
                raise IntegrityError(
                    f"duplicate primary key {key!r} in table {self.schema.name!r}"
                )
            self._pk_index[key] = len(self._heap)

        rid = len(self._heap)
        self._heap.append(row_tuple)
        self._live_count += 1
        return rid

    def insert_dict(self, mapping: Mapping[str, Any]) -> int:
        """Insert from a column-name mapping; absent columns become NULL."""
        for column_name in mapping:
            if not self.schema.has_column(column_name):
                raise UnknownColumnError(self.schema.name, column_name)
        values = [mapping.get(name) for name in self.schema.column_names]
        return self.insert(values)

    def update(self, rid: int, values: Sequence[Any]) -> None:
        """Replace the tuple at ``rid`` in place (the RID is preserved).

        Validates types, NOT NULL and primary-key uniqueness exactly like
        :meth:`insert`; on any failure the old tuple is left untouched.
        """
        self._materialize()
        old_tuple = self._fetch(rid)
        columns = self.schema.columns
        if len(values) != len(columns):
            raise IntegrityError(
                f"table {self.schema.name!r} expects {len(columns)} values, "
                f"got {len(values)}"
            )
        coerced: List[Any] = []
        for column, value in zip(columns, values):
            try:
                typed = column.datatype.validate(value)
            except TypeMismatchError as exc:
                raise TypeMismatchError(
                    f"{self.schema.name}.{column.name}: {exc}"
                ) from None
            if typed is None and not column.nullable:
                raise IntegrityError(
                    f"{self.schema.name}.{column.name} is NOT NULL"
                )
            coerced.append(typed)
        new_tuple = tuple(coerced)

        if self._pk_positions:
            old_key = tuple(old_tuple[p] for p in self._pk_positions)
            new_key = tuple(new_tuple[p] for p in self._pk_positions)
            if any(part is None for part in new_key):
                raise IntegrityError(
                    f"primary key of {self.schema.name!r} cannot be NULL"
                )
            if new_key != old_key:
                if new_key in self._pk_index:
                    raise IntegrityError(
                        f"duplicate primary key {new_key!r} "
                        f"in table {self.schema.name!r}"
                    )
                del self._pk_index[old_key]
                self._pk_index[new_key] = rid
        self._heap[rid] = new_tuple

    def delete(self, rid: int) -> None:
        """Tombstone the row at ``rid`` (RIDs of other rows are unchanged)."""
        self._materialize()
        row_tuple = self._fetch(rid)
        if self._pk_positions:
            key = tuple(row_tuple[p] for p in self._pk_positions)
            self._pk_index.pop(key, None)
        self._heap[rid] = None
        self._live_count -= 1

    # -- access ------------------------------------------------------------

    def _fetch(self, rid: int) -> Tuple[Any, ...]:
        if rid < 0 or rid >= len(self._heap):
            raise IntegrityError(
                f"RID {rid} out of range for table {self.schema.name!r}"
            )
        row_tuple = self._heap[rid]
        if row_tuple is None:
            raise IntegrityError(
                f"RID {rid} of table {self.schema.name!r} was deleted"
            )
        return row_tuple

    def row(self, rid: int) -> Row:
        return Row(self.schema.name, rid, self._fetch(rid), self.schema)

    def values_at(self, rid: int) -> Tuple[Any, ...]:
        """The raw value tuple at ``rid`` — :meth:`row` without the
        :class:`Row` wrapper, for hot paths that index by position."""
        return self._fetch(rid)

    def has_rid(self, rid: int) -> bool:
        return 0 <= rid < len(self._heap) and self._heap[rid] is not None

    def lookup_pk(self, key: Sequence[Any]) -> Optional[Row]:
        """Fetch the row with the given primary-key value(s), if present."""
        if not self._pk_positions:
            raise IntegrityError(
                f"table {self.schema.name!r} has no primary key"
            )
        rid = self._pk_index.get(tuple(key))
        if rid is None:
            return None
        return self.row(rid)

    def lookup_pk_rid(self, key: Tuple[Any, ...]) -> Optional[int]:
        """RID of the row with the given primary-key tuple, if present —
        the :meth:`lookup_pk` hash probe without building a :class:`Row`
        (foreign-key resolution only needs the slot number)."""
        if not self._pk_positions:
            raise IntegrityError(
                f"table {self.schema.name!r} has no primary key"
            )
        return self._pk_index.get(key)

    def scan(self) -> Iterator[Row]:
        """Yield every live row in RID order."""
        name = self.schema.name
        schema = self.schema
        for rid, row_tuple in enumerate(self._heap):
            if row_tuple is not None:
                yield Row(name, rid, row_tuple, schema)

    def rids(self) -> Iterator[int]:
        for rid, row_tuple in enumerate(self._heap):
            if row_tuple is not None:
                yield rid

    def __len__(self) -> int:
        return self._live_count

    def __iter__(self) -> Iterator[Row]:
        return self.scan()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Table({self.schema.name}, {self._live_count} rows)"
