"""The :class:`Database`: catalog + tables + referential integrity.

Beyond plain storage this layer maintains the *reverse reference index* —
for every tuple, which tuples reference it through which foreign key.
That index serves two masters:

* BANKS graph construction (:mod:`repro.core.model`) reads it to create
  backward edges and to compute the per-relation indegrees
  ``IN_{R}(v)`` that drive Eq. 1 edge weights and node prestige;
* the browsing subsystem uses it to offer "referencing tuples" links on
  every primary key (Sec. 4 of the paper).
"""

from __future__ import annotations

from collections import defaultdict
from typing import (
    Any,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.errors import IntegrityError, TypeMismatchError, UnknownTableError
from repro.relational.schema import DatabaseSchema, ForeignKey, TableSchema
from repro.relational.table import Row, Table

# A fully-qualified row identifier: (table name, slot in that table's heap).
RID = Tuple[str, int]


class Database:
    """A named collection of :class:`Table` objects with FK enforcement.

    Foreign keys are checked on insert: referencing a primary key that
    does not (yet) exist raises :class:`IntegrityError` unless the
    database was created with ``deferred_fk_check=True``, in which case
    :meth:`check_integrity` validates everything at the end of loading
    (bulk loaders and the sqlite adapter use that mode since dumps are
    rarely topologically sorted).
    """

    def __init__(self, name: str = "db", deferred_fk_check: bool = False):
        self.name = name
        self.schema = DatabaseSchema()
        self._tables: Dict[str, Table] = {}
        self._deferred = deferred_fk_check
        # (target table, target rid) -> list of (fk, source table, source rid)
        self._reverse_refs: Dict[RID, List[Tuple[ForeignKey, str, int]]] = (
            defaultdict(list)
        )
        # Reverse-ref lists shared with a fork; copied before append.
        self._shared_refs: Set[RID] = set()
        # target rid -> {source table: count}: the per-relation indegree
        # ``IN_{R}(v)`` of Eq. 1, maintained so :meth:`indegree_from` is
        # O(1) instead of scanning the (possibly huge, for hub tuples)
        # reverse-reference list.  Inner dicts are never mutated in
        # place — every change rebinds a fresh dict — so forks may share
        # them without copy-on-write bookkeeping.
        self._indeg: Dict[RID, Dict[str, int]] = {}
        # table name -> prepared FK resolution steps (see :meth:`_fk_plan`).
        # Derived purely from the schema, so forks share it; DDL rebinds
        # a fresh dict rather than clearing in place.
        self._fk_plans: Dict[str, List[Tuple[ForeignKey, str, Tuple[int, ...], Optional[Tuple[int, ...]]]]] = {}

    # -- copy-on-write forking ------------------------------------------------

    def fork(self) -> "Database":
        """A copy-on-write fork: same schema, shared row storage.

        Tables fork at table granularity (a batch that never touches a
        table never copies it); the reverse-reference index forks at
        key granularity (only the lists a mutation appends to are
        copied).  The fork and the original each see a fully
        consistent database; whichever side mutates first pays for
        exactly what it touches.  The snapshot store only ever mutates
        the newest fork.
        """
        child = Database.__new__(Database)
        child.name = self.name
        child.schema = self.schema  # DDL is fixed while serving
        child._deferred = self._deferred
        child._tables = {name: table.fork() for name, table in self._tables.items()}
        child._reverse_refs = defaultdict(list, self._reverse_refs)
        shared = set(self._reverse_refs)
        child._shared_refs = shared
        self._shared_refs = set(shared)
        child._indeg = dict(self._indeg)  # inner dicts shared, see __init__
        child._fk_plans = self._fk_plans  # schema-derived, DDL rebinds
        return child

    # -- DDL ----------------------------------------------------------------

    def create_table(self, table_schema: TableSchema) -> Table:
        self.schema.add_table(table_schema)
        self.schema.validate()
        table = Table(table_schema)
        self._tables[table_schema.name] = table
        self._fk_plans = {}
        return table

    def create_tables(self, table_schemas: Sequence[TableSchema]) -> None:
        """Create several tables, validating foreign keys only after all
        are registered — required when declaration order does not follow
        reference order (sqlite dumps list tables alphabetically)."""
        for table_schema in table_schemas:
            self.schema.add_table(table_schema)
        self.schema.validate()
        for table_schema in table_schemas:
            self._tables[table_schema.name] = Table(table_schema)
        self._fk_plans = {}

    def drop_table(self, table_name: str) -> None:
        self.schema.drop_table(table_name)
        table = self._tables.pop(table_name)
        self._fk_plans = {}
        for row in table.scan():
            self._forget_references(table.schema, row)

    # -- access ---------------------------------------------------------------

    def table(self, table_name: str) -> Table:
        try:
            return self._tables[table_name]
        except KeyError:
            raise UnknownTableError(table_name) from None

    def tables(self) -> List[Table]:
        return list(self._tables.values())

    @property
    def table_names(self) -> List[str]:
        return list(self._tables)

    def row(self, rid: RID) -> Row:
        table_name, slot = rid
        return self.table(table_name).row(slot)

    def total_rows(self) -> int:
        return sum(len(t) for t in self._tables.values())

    def all_rows(self) -> Iterator[Row]:
        for table in self._tables.values():
            yield from table.scan()

    # -- DML ----------------------------------------------------------------

    def insert(self, table_name: str, values: Sequence[Any]) -> RID:
        """Insert one tuple, enforce FKs, maintain the reverse index."""
        table = self.table(table_name)
        slot = table.insert(values)
        row = table.row(slot)
        try:
            self._record_references(table.schema, row)
        except IntegrityError:
            table.delete(slot)
            raise
        return (table_name, slot)

    def insert_dict(self, table_name: str, mapping: Mapping[str, Any]) -> RID:
        table = self.table(table_name)
        slot = table.insert_dict(mapping)
        row = table.row(slot)
        try:
            self._record_references(table.schema, row)
        except IntegrityError:
            table.delete(slot)
            raise
        return (table_name, slot)

    def update(self, rid: RID, changes: Mapping[str, Any]) -> None:
        """Update columns of one tuple in place, preserving its RID.

        Foreign keys of the *new* tuple are validated (an update that
        would dangle a reference raises :class:`IntegrityError` and the
        tuple is restored); the reverse-reference index is maintained.
        Changing the primary key of a tuple that other tuples reference
        is refused — their foreign-key values would be orphaned.
        """
        table_name, slot = rid
        table = self.table(table_name)
        schema = table.schema
        for column_name in changes:
            schema.column_position(column_name)  # raises on unknown

        old_row = table.row(slot)
        old_values = old_row.values
        pk_changed = any(
            column in changes and changes[column] != old_row[column]
            for column in schema.primary_key
        )
        if pk_changed and self._reverse_refs.get(rid):
            raise IntegrityError(
                f"cannot change primary key of {rid}: referenced by "
                f"{len(self._reverse_refs[rid])} tuple(s)"
            )

        new_values = [
            changes.get(name, old_values[position])
            for position, name in enumerate(schema.column_names)
        ]
        self._forget_references(schema, old_row)
        try:
            table.update(slot, new_values)
        except (IntegrityError, TypeMismatchError):
            self._record_references(schema, old_row)
            raise
        try:
            self._record_references(schema, table.row(slot))
        except IntegrityError:
            table.update(slot, list(old_values))
            self._record_references(schema, table.row(slot))
            raise

    def delete(self, rid: RID) -> None:
        """Delete a tuple; refuse if other live tuples reference it."""
        if self._reverse_refs.get(rid):
            referrers = self._reverse_refs[rid]
            fk = referrers[0][0]
            raise IntegrityError(
                f"cannot delete {rid}: referenced by {len(referrers)} "
                f"tuple(s), e.g. via {fk.name}"
            )
        table_name, slot = rid
        table = self.table(table_name)
        row = table.row(slot)
        self._forget_references(table.schema, row)
        table.delete(slot)

    # -- referential machinery ------------------------------------------------

    def _resolve_fk_target(
        self, fk: ForeignKey, row: Row
    ) -> Optional[RID]:
        """RID of the tuple that ``row`` references through ``fk``.

        Returns ``None`` when any referencing column is NULL (SQL
        semantics: NULL foreign keys reference nothing).
        """
        key = tuple(row[c] for c in fk.source_columns)
        if any(part is None for part in key):
            return None
        target_table = self.table(fk.target_table)
        target_schema = target_table.schema
        if tuple(target_schema.primary_key) == tuple(fk.target_columns):
            target_row = target_table.lookup_pk(key)
        else:
            # Referenced columns are not the PK (the paper's "inclusion
            # dependency" extension): fall back to a scan for the first
            # matching tuple.
            target_row = None
            positions = [
                target_schema.column_position(c) for c in fk.target_columns
            ]
            for candidate in target_table.scan():
                if tuple(candidate.values[p] for p in positions) == key:
                    target_row = candidate
                    break
        if target_row is None:
            if self._deferred:
                return None
            raise IntegrityError(
                f"foreign key violation: {fk.name} has no target for {key!r}"
            )
        return (fk.target_table, target_row.rid)

    def _record_references(self, schema: TableSchema, row: Row) -> None:
        # Resolve every target before mutating the index so that a failing
        # FK leaves no partial entries behind.
        targets: List[Tuple[RID, ForeignKey]] = []
        for fk in schema.foreign_keys:
            target = self._resolve_fk_target(fk, row)
            if target is not None:
                targets.append((target, fk))
        for target, fk in targets:
            if target in self._shared_refs:
                # The list is shared with a fork: copy before append.
                self._reverse_refs[target] = list(self._reverse_refs[target])
                self._shared_refs.discard(target)
            self._reverse_refs[target].append((fk, schema.name, row.rid))
            counts = dict(self._indeg.get(target, ()))
            counts[schema.name] = counts.get(schema.name, 0) + 1
            self._indeg[target] = counts

    def _forget_references(self, schema: TableSchema, row: Row) -> None:
        for fk in schema.foreign_keys:
            key = tuple(row[c] for c in fk.source_columns)
            if any(part is None for part in key):
                continue
            for target, entries in list(self._reverse_refs.items()):
                if target[0] != fk.target_table:
                    continue
                kept = [
                    e
                    for e in entries
                    if not (e[0] is fk and e[1] == schema.name and e[2] == row.rid)
                ]
                if len(kept) != len(entries):
                    if kept:
                        self._reverse_refs[target] = kept
                    else:
                        del self._reverse_refs[target]
                    dropped = len(entries) - len(kept)
                    counts = dict(self._indeg.get(target, ()))
                    remaining = counts.get(schema.name, 0) - dropped
                    if remaining > 0:
                        counts[schema.name] = remaining
                    else:
                        counts.pop(schema.name, None)
                    if counts:
                        self._indeg[target] = counts
                    else:
                        self._indeg.pop(target, None)

    # -- reference queries ------------------------------------------------------

    def _fk_plan(
        self, table_name: str
    ) -> List[Tuple[ForeignKey, str, Tuple[int, ...], Optional[Tuple[int, ...]]]]:
        """Prepared FK resolution steps for ``table_name``:
        ``(fk, target table, source positions, target positions)`` with
        ``target positions = None`` meaning a PK hash probe.  Purely
        schema-derived, cached until DDL — Eq. 1 re-weighing resolves
        references once per affected edge, so per-call schema walks
        (column positions, PK comparisons) dominate without this.
        """
        plan = self._fk_plans.get(table_name)
        if plan is None:
            schema = self.table(table_name).schema
            plan = []
            for fk in schema.foreign_keys:
                source_positions = tuple(
                    schema.column_position(c) for c in fk.source_columns
                )
                target_schema = self.table(fk.target_table).schema
                if tuple(target_schema.primary_key) == tuple(fk.target_columns):
                    target_positions = None
                else:
                    target_positions = tuple(
                        target_schema.column_position(c)
                        for c in fk.target_columns
                    )
                plan.append(
                    (fk, fk.target_table, source_positions, target_positions)
                )
            self._fk_plans[table_name] = plan
        return plan

    def references_of(self, rid: RID) -> List[Tuple[ForeignKey, RID]]:
        """Outgoing references: tuples that ``rid`` points to."""
        table_name, slot = rid
        plan = self._fk_plans.get(table_name)
        if plan is None:
            plan = self._fk_plan(table_name)
        if not plan:
            return []
        values = self._tables[table_name].values_at(slot)
        out: List[Tuple[ForeignKey, RID]] = []
        for fk, target_name, source_positions, target_positions in plan:
            if len(source_positions) == 1:
                part = values[source_positions[0]]
                if part is None:
                    continue  # NULL foreign keys reference nothing
                key = (part,)
            else:
                key = tuple(values[p] for p in source_positions)
                if any(part is None for part in key):
                    continue
            target_table = self._tables[target_name]
            if target_positions is None:
                target_rid = target_table.lookup_pk_rid(key)
            else:
                # Non-PK inclusion dependency: scan for the first match.
                target_rid = None
                for candidate in target_table.scan():
                    if (
                        tuple(candidate.values[p] for p in target_positions)
                        == key
                    ):
                        target_rid = candidate.rid
                        break
            if target_rid is None:
                if self._deferred:
                    continue
                raise IntegrityError(
                    f"foreign key violation: {fk.name} has no target "
                    f"for {key!r}"
                )
            out.append((fk, (target_name, target_rid)))
        return out

    def resolved_references(self, table_name: str):
        """Yield ``(source_rid, fk, target_rid)`` for every resolved
        foreign-key reference out of ``table_name``'s rows, in
        row-major, FK-declaration order — exactly what calling
        :meth:`references_of` per row produces, with the per-row
        schema work (column positions, PK checks, target-table
        lookups) hoisted out of the loop.  Bulk consumers (graph
        construction over the whole database) iterate this; point
        queries keep :meth:`references_of`.
        """
        table = self.table(table_name)
        schema = table.schema
        if not schema.foreign_keys:
            return
        prepared = []
        for fk in schema.foreign_keys:
            source_positions = tuple(
                schema.column_position(c) for c in fk.source_columns
            )
            target_table = self.table(fk.target_table)
            if tuple(target_table.schema.primary_key) == tuple(
                fk.target_columns
            ):
                target_positions = None  # PK lookup
            else:
                target_positions = tuple(
                    target_table.schema.column_position(c)
                    for c in fk.target_columns
                )
            prepared.append((fk, source_positions, target_table, target_positions))
        for slot in table.rids():
            values = table.row(slot).values
            for fk, source_positions, target_table, target_positions in prepared:
                key = tuple(values[p] for p in source_positions)
                if any(part is None for part in key):
                    continue
                if target_positions is None:
                    target_row = target_table.lookup_pk(key)
                else:
                    target_row = None
                    for candidate in target_table.scan():
                        if (
                            tuple(
                                candidate.values[p] for p in target_positions
                            )
                            == key
                        ):
                            target_row = candidate
                            break
                if target_row is None:
                    if self._deferred:
                        continue
                    raise IntegrityError(
                        f"foreign key violation: {fk.name} has no target "
                        f"for {key!r}"
                    )
                yield (
                    (table_name, slot),
                    fk,
                    (fk.target_table, target_row.rid),
                )

    def referencing(self, rid: RID) -> List[Tuple[ForeignKey, RID]]:
        """Incoming references: tuples that point to ``rid``."""
        return [
            (fk, (source_table, source_rid))
            for fk, source_table, source_rid in self._reverse_refs.get(rid, ())
        ]

    def referrer_nodes(self, rid: RID) -> List[RID]:
        """The tuples that point to ``rid``, without the FK detail —
        :meth:`referencing` minus the per-entry tuple packing, for the
        Eq. 1 re-weigh sweep that only needs the neighbour identities.
        A tuple referencing ``rid`` through several FKs appears once
        per reference; callers that need distinct nodes deduplicate.
        """
        return [
            (source_table, source_rid)
            for _fk, source_table, source_rid in self._reverse_refs.get(rid, ())
        ]

    def indegree(self, rid: RID) -> int:
        """Total number of tuples referencing ``rid`` — node prestige."""
        return len(self._reverse_refs.get(rid, ()))

    def indegree_from(self, rid: RID, source_table: str) -> int:
        """Indegree of ``rid`` contributed by tuples of ``source_table``
        (the ``IN_{R}(v)`` quantity of the paper's Eq. 1).

        O(1): read from the maintained per-relation counters rather
        than scanning the reverse-reference list — on hub tuples of a
        bulk-ingested graph that list holds thousands of entries and
        Eq. 1 re-weighing reads this once per affected edge.
        """
        counts = self._indeg.get(rid)
        if not counts:
            return 0
        return counts.get(source_table, 0)

    def check_integrity(self) -> None:
        """Re-validate every foreign key (for deferred-check loading).

        After a successful check the reverse-reference index is rebuilt,
        so deferred databases become fully queryable.
        """
        self.schema.validate()
        self._reverse_refs.clear()
        self._shared_refs.clear()
        self._indeg.clear()
        was_deferred = self._deferred
        self._deferred = False
        try:
            for table in self._tables.values():
                for row in table.scan():
                    self._record_references(table.schema, row)
        except IntegrityError:
            self._deferred = was_deferred
            raise

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = ", ".join(
            f"{name}({len(table)})" for name, table in self._tables.items()
        )
        return f"Database({self.name}: {parts})"
