"""Load and dump databases as directories of CSV files.

A database maps to a directory with one ``<table>.csv`` per table plus a
``_schema.sql`` file holding the DDL (so primary/foreign keys survive the
round trip).  This gives examples and tests a human-inspectable fixture
format that needs no binary tooling.
"""

from __future__ import annotations

import csv
import os
from typing import List, Optional

from repro.errors import SchemaError
from repro.relational.database import Database
from repro.relational.sql import execute_script
from repro.relational.types import BOOLEAN, INTEGER, REAL


_NULL_MARKER = ""


def dump_to_csv_dir(database: Database, directory: str) -> None:
    """Write ``database`` into ``directory`` (created if needed)."""
    os.makedirs(directory, exist_ok=True)
    ddl_statements: List[str] = []
    for table in database.tables():
        schema = table.schema
        clauses = []
        for column in schema.columns:
            clause = f"{column.name} {column.datatype.name}"
            if not column.nullable:
                clause += " NOT NULL"
            clauses.append(clause)
        if schema.primary_key:
            clauses.append(f"PRIMARY KEY ({', '.join(schema.primary_key)})")
        for fk in schema.foreign_keys:
            clauses.append(
                f"FOREIGN KEY ({', '.join(fk.source_columns)}) "
                f"REFERENCES {fk.target_table}({', '.join(fk.target_columns)})"
            )
        ddl_statements.append(
            f"CREATE TABLE {schema.name} (\n    " + ",\n    ".join(clauses) + "\n);"
        )
        path = os.path.join(directory, f"{schema.name}.csv")
        with open(path, "w", newline="", encoding="utf-8") as handle:
            writer = csv.writer(handle)
            writer.writerow(schema.column_names)
            for row in table.scan():
                writer.writerow(
                    [_NULL_MARKER if v is None else v for v in row.values]
                )
    with open(os.path.join(directory, "_schema.sql"), "w", encoding="utf-8") as handle:
        handle.write("\n".join(ddl_statements) + "\n")


def load_from_csv_dir(directory: str, name: Optional[str] = None) -> Database:
    """Rebuild a database previously written by :func:`dump_to_csv_dir`."""
    schema_path = os.path.join(directory, "_schema.sql")
    if not os.path.exists(schema_path):
        raise SchemaError(f"no _schema.sql in {directory!r}")
    database = Database(name or os.path.basename(directory.rstrip("/")),
                        deferred_fk_check=True)
    with open(schema_path, encoding="utf-8") as handle:
        execute_script(database, handle.read())

    for table in database.tables():
        path = os.path.join(directory, f"{table.schema.name}.csv")
        if not os.path.exists(path):
            continue
        with open(path, newline="", encoding="utf-8") as handle:
            reader = csv.reader(handle)
            header = next(reader, None)
            if header is None:
                continue
            if tuple(header) != table.schema.column_names:
                raise SchemaError(
                    f"CSV header of {path!r} does not match schema: "
                    f"{header} != {list(table.schema.column_names)}"
                )
            for raw_row in reader:
                values = []
                for column, cell in zip(table.schema.columns, raw_row):
                    if cell == _NULL_MARKER:
                        values.append(None)
                    elif column.datatype is INTEGER:
                        values.append(int(cell))
                    elif column.datatype is REAL:
                        values.append(float(cell))
                    elif column.datatype is BOOLEAN:
                        values.append(cell == "True")
                    else:
                        values.append(cell)
                database.insert(table.schema.name, values)
    database.check_integrity()
    return database
