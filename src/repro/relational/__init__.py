"""A small, from-scratch relational engine.

This package is the storage substrate of the BANKS reproduction.  It
provides exactly what the paper requires from its RDBMS (IBM UDB via JDBC
in the original system):

* a catalog describing tables, typed columns, primary keys and foreign
  keys (:mod:`repro.relational.schema`);
* heap-stored tuples addressable by RID (:mod:`repro.relational.table`);
* constraint-enforcing inserts and reverse-reference lookups
  (:mod:`repro.relational.database`);
* secondary hash indexes (:mod:`repro.relational.index`);
* relational-algebra operators used by the browsing subsystem
  (:mod:`repro.relational.algebra`);
* a small SQL subset (:mod:`repro.relational.sql`) and adapters for
  sqlite3 files and CSV directories, so BANKS can be pointed at existing
  data "without any programming" as the paper puts it.
"""

from repro.relational.algebra import (
    Projection,
    Relation,
    group_by,
    join_fk,
    paginate,
    project,
    select,
    sort_by,
)
from repro.relational.database import Database, RID
from repro.relational.index import HashIndex
from repro.relational.schema import (
    Column,
    DatabaseSchema,
    ForeignKey,
    TableSchema,
)
from repro.relational.sql import execute_sql, execute_script
from repro.relational.table import Row, Table
from repro.relational.types import (
    BOOLEAN,
    INTEGER,
    REAL,
    TEXT,
    DataType,
)

__all__ = [
    "BOOLEAN",
    "Column",
    "Database",
    "DatabaseSchema",
    "DataType",
    "ForeignKey",
    "HashIndex",
    "INTEGER",
    "Projection",
    "REAL",
    "RID",
    "Relation",
    "Row",
    "Table",
    "TableSchema",
    "TEXT",
    "execute_script",
    "execute_sql",
    "group_by",
    "join_fk",
    "paginate",
    "project",
    "select",
    "sort_by",
]
