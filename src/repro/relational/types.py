"""Column datatypes for the mini relational engine.

The engine supports four scalar types — ``INTEGER``, ``REAL``, ``TEXT``
and ``BOOLEAN`` — which cover everything BANKS needs (keys, measures,
names/titles, flags).  Each type knows how to validate and coerce Python
values; ``None`` is the SQL NULL and is accepted by every type unless the
column is declared ``NOT NULL`` (enforced at the schema layer, not here).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.errors import TypeMismatchError


@dataclass(frozen=True)
class DataType:
    """A scalar column type.

    Attributes:
        name: canonical SQL-ish spelling (``"INTEGER"`` etc.).
        python_type: the Python type stored for non-null values.
        coerce: converts an arbitrary input value to ``python_type`` or
            raises :class:`TypeMismatchError`.
    """

    name: str
    python_type: type
    coerce: Callable[[Any], Any]

    def validate(self, value: Any) -> Any:
        """Return ``value`` coerced to this type (``None`` passes through)."""
        if value is None:
            return None
        return self.coerce(value)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DataType({self.name})"


def _coerce_integer(value: Any) -> int:
    if isinstance(value, bool):
        # bool is a subclass of int but TRUE/FALSE in an INTEGER column is
        # almost always a bug in the caller; refuse it explicitly.
        raise TypeMismatchError(f"INTEGER column cannot store boolean {value!r}")
    if isinstance(value, int):
        return value
    if isinstance(value, float) and value.is_integer():
        return int(value)
    if isinstance(value, str):
        try:
            return int(value, 10)
        except ValueError:
            raise TypeMismatchError(f"cannot coerce {value!r} to INTEGER") from None
    raise TypeMismatchError(f"cannot coerce {value!r} to INTEGER")


def _coerce_real(value: Any) -> float:
    if isinstance(value, bool):
        raise TypeMismatchError(f"REAL column cannot store boolean {value!r}")
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, str):
        try:
            return float(value)
        except ValueError:
            raise TypeMismatchError(f"cannot coerce {value!r} to REAL") from None
    raise TypeMismatchError(f"cannot coerce {value!r} to REAL")


def _coerce_text(value: Any) -> str:
    if isinstance(value, str):
        return value
    if isinstance(value, (int, float, bool)):
        return str(value)
    raise TypeMismatchError(f"cannot coerce {value!r} to TEXT")


_TRUE_LITERALS = {"true", "t", "1", "yes"}
_FALSE_LITERALS = {"false", "f", "0", "no"}


def _coerce_boolean(value: Any) -> bool:
    if isinstance(value, bool):
        return value
    if isinstance(value, int) and value in (0, 1):
        return bool(value)
    if isinstance(value, str):
        lowered = value.strip().lower()
        if lowered in _TRUE_LITERALS:
            return True
        if lowered in _FALSE_LITERALS:
            return False
    raise TypeMismatchError(f"cannot coerce {value!r} to BOOLEAN")


INTEGER = DataType("INTEGER", int, _coerce_integer)
REAL = DataType("REAL", float, _coerce_real)
TEXT = DataType("TEXT", str, _coerce_text)
BOOLEAN = DataType("BOOLEAN", bool, _coerce_boolean)

_BY_NAME = {
    "INTEGER": INTEGER,
    "INT": INTEGER,
    "BIGINT": INTEGER,
    "SMALLINT": INTEGER,
    "REAL": REAL,
    "FLOAT": REAL,
    "DOUBLE": REAL,
    "NUMERIC": REAL,
    "DECIMAL": REAL,
    "TEXT": TEXT,
    "VARCHAR": TEXT,
    "CHAR": TEXT,
    "STRING": TEXT,
    "CLOB": TEXT,
    "BOOLEAN": BOOLEAN,
    "BOOL": BOOLEAN,
}


def type_from_name(name: str) -> DataType:
    """Resolve a SQL type spelling (``"VARCHAR(80)"``, ``"int"``) to a
    :class:`DataType`.

    Unknown names map to ``TEXT``, mirroring sqlite's forgiving affinity
    rules so that the sqlite adapter can ingest arbitrary schemas.
    """
    base = name.strip().upper()
    if "(" in base:
        base = base[: base.index("(")].strip()
    return _BY_NAME.get(base, TEXT)


def infer_type(value: Any) -> Optional[DataType]:
    """Infer the narrowest :class:`DataType` able to store ``value``.

    Returns ``None`` for ``None`` (no information).  Used by the CSV
    importer.
    """
    if value is None:
        return None
    if isinstance(value, bool):
        return BOOLEAN
    if isinstance(value, int):
        return INTEGER
    if isinstance(value, float):
        return REAL
    return TEXT
