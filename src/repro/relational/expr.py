"""SQL expression engine: syntax-tree nodes and three-valued evaluation.

The extended SQL subset shares one expression language across ``WHERE``,
``HAVING``, ``JOIN ... ON`` and ``UPDATE ... SET``: boolean connectives
over comparison predicates, ``LIKE`` / ``IN`` / ``IS [NOT] NULL`` /
``BETWEEN``, and arithmetic over column references and literals.

Evaluation follows SQL's three-valued logic (Kleene): any comparison or
arithmetic involving NULL yields *unknown*, represented as ``None``;
``AND`` / ``OR`` / ``NOT`` propagate unknowns per Kleene's tables; a
``WHERE`` clause keeps a row only when its predicate evaluates to
``True`` (unknown is collapsed to false at the filtering boundary, as
real databases do).

Expressions are parsed by :mod:`repro.relational.sql` and evaluated
against a row tuple plus a *resolver* that maps column names to
positions (``repro.relational.algebra.Relation.column_position`` in
practice, which accepts both qualified ``table.column`` names and
unambiguous bare names).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence, Tuple

from repro.errors import SQLSyntaxError

#: Maps a column name to its position in the row tuple.
Resolver = Callable[[str], int]

#: The value of an evaluated expression: a Python scalar or ``None`` (NULL).
Value = Any


class Expression:
    """Base class for expression-tree nodes.

    Subclasses implement :meth:`evaluate`; the result is a Python value,
    with ``None`` standing for SQL NULL / unknown.
    """

    def evaluate(self, row: Tuple[Any, ...], resolve: Resolver) -> Value:
        raise NotImplementedError

    def is_true(self, row: Tuple[Any, ...], resolve: Resolver) -> bool:
        """Predicate truth: unknown (NULL) collapses to false."""
        return self.evaluate(row, resolve) is True

    def columns(self) -> Tuple[str, ...]:
        """Every column name referenced anywhere in this expression."""
        return ()


@dataclass(frozen=True)
class Literal(Expression):
    """A constant: number, string, boolean or NULL."""

    value: Value

    def evaluate(self, row: Tuple[Any, ...], resolve: Resolver) -> Value:
        return self.value


@dataclass(frozen=True)
class ColumnRef(Expression):
    """A reference to a column, possibly qualified (``table.column``)."""

    name: str

    def evaluate(self, row: Tuple[Any, ...], resolve: Resolver) -> Value:
        return row[resolve(self.name)]

    def columns(self) -> Tuple[str, ...]:
        return (self.name,)


def _known(*values: Value) -> bool:
    return all(value is not None for value in values)


@dataclass(frozen=True)
class Arithmetic(Expression):
    """Binary arithmetic: ``+ - * / %`` (NULL-propagating)."""

    operator: str
    left: Expression
    right: Expression

    def evaluate(self, row: Tuple[Any, ...], resolve: Resolver) -> Value:
        left = self.left.evaluate(row, resolve)
        right = self.right.evaluate(row, resolve)
        if not _known(left, right):
            return None
        if self.operator == "+":
            return left + right
        if self.operator == "-":
            return left - right
        if self.operator == "*":
            return left * right
        if self.operator == "/":
            if right == 0:
                return None  # SQL: division by zero yields NULL (sqlite)
            result = left / right
            # Integer division stays integral when exact, matching the
            # engine's INTEGER columns.
            if isinstance(left, int) and isinstance(right, int) and left % right == 0:
                return left // right
            return result
        if self.operator == "%":
            if right == 0:
                return None
            return left % right
        raise SQLSyntaxError(f"unknown arithmetic operator {self.operator!r}")

    def columns(self) -> Tuple[str, ...]:
        return self.left.columns() + self.right.columns()


@dataclass(frozen=True)
class Negate(Expression):
    """Unary minus."""

    operand: Expression

    def evaluate(self, row: Tuple[Any, ...], resolve: Resolver) -> Value:
        value = self.operand.evaluate(row, resolve)
        if value is None:
            return None
        return -value

    def columns(self) -> Tuple[str, ...]:
        return self.operand.columns()


_COMPARISONS: dict = {
    "=": lambda a, b: a == b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


@dataclass(frozen=True)
class Comparison(Expression):
    """A binary comparison; NULL on either side yields unknown."""

    operator: str
    left: Expression
    right: Expression

    def evaluate(self, row: Tuple[Any, ...], resolve: Resolver) -> Optional[bool]:
        left = self.left.evaluate(row, resolve)
        right = self.right.evaluate(row, resolve)
        if not _known(left, right):
            return None
        try:
            return bool(_COMPARISONS[self.operator](left, right))
        except TypeError:
            # Cross-type comparison (e.g. TEXT vs INTEGER): unknown.
            return None

    def columns(self) -> Tuple[str, ...]:
        return self.left.columns() + self.right.columns()


def like_to_regex(pattern: str) -> "re.Pattern[str]":
    """Compile a SQL LIKE pattern (``%`` any run, ``_`` any one char).

    Matching is case-insensitive, following sqlite's default behaviour.
    """
    parts = []
    for char in pattern:
        if char == "%":
            parts.append(".*")
        elif char == "_":
            parts.append(".")
        else:
            parts.append(re.escape(char))
    return re.compile("^" + "".join(parts) + "$", re.IGNORECASE | re.DOTALL)


@dataclass(frozen=True)
class Like(Expression):
    """``expr [NOT] LIKE pattern`` (pattern must evaluate to text)."""

    operand: Expression
    pattern: Expression
    negated: bool = False

    def evaluate(self, row: Tuple[Any, ...], resolve: Resolver) -> Optional[bool]:
        value = self.operand.evaluate(row, resolve)
        pattern = self.pattern.evaluate(row, resolve)
        if not _known(value, pattern):
            return None
        matched = like_to_regex(str(pattern)).match(str(value)) is not None
        return (not matched) if self.negated else matched

    def columns(self) -> Tuple[str, ...]:
        return self.operand.columns() + self.pattern.columns()


@dataclass(frozen=True)
class InList(Expression):
    """``expr [NOT] IN (v1, v2, ...)`` with SQL NULL semantics.

    If the operand is NULL the result is unknown; if no element matches
    but the list contains a NULL, the result is unknown too (the NULL
    *might* have been the match).
    """

    operand: Expression
    items: Tuple[Expression, ...]
    negated: bool = False

    def evaluate(self, row: Tuple[Any, ...], resolve: Resolver) -> Optional[bool]:
        value = self.operand.evaluate(row, resolve)
        if value is None:
            return None
        saw_null = False
        found = False
        for item in self.items:
            candidate = item.evaluate(row, resolve)
            if candidate is None:
                saw_null = True
            elif candidate == value:
                found = True
                break
        if found:
            result: Optional[bool] = True
        elif saw_null:
            result = None
        else:
            result = False
        if result is None:
            return None
        return (not result) if self.negated else result

    def columns(self) -> Tuple[str, ...]:
        names = self.operand.columns()
        for item in self.items:
            names = names + item.columns()
        return names


@dataclass(frozen=True)
class IsNull(Expression):
    """``expr IS [NOT] NULL`` — always a definite boolean."""

    operand: Expression
    negated: bool = False

    def evaluate(self, row: Tuple[Any, ...], resolve: Resolver) -> bool:
        is_null = self.operand.evaluate(row, resolve) is None
        return (not is_null) if self.negated else is_null

    def columns(self) -> Tuple[str, ...]:
        return self.operand.columns()


@dataclass(frozen=True)
class Between(Expression):
    """``expr [NOT] BETWEEN low AND high`` (inclusive both ends)."""

    operand: Expression
    low: Expression
    high: Expression
    negated: bool = False

    def evaluate(self, row: Tuple[Any, ...], resolve: Resolver) -> Optional[bool]:
        inner = And(
            Comparison(">=", self.operand, self.low),
            Comparison("<=", self.operand, self.high),
        )
        result = inner.evaluate(row, resolve)
        if result is None:
            return None
        return (not result) if self.negated else result

    def columns(self) -> Tuple[str, ...]:
        return self.operand.columns() + self.low.columns() + self.high.columns()


@dataclass(frozen=True)
class Not(Expression):
    """Kleene NOT: unknown stays unknown."""

    operand: Expression

    def evaluate(self, row: Tuple[Any, ...], resolve: Resolver) -> Optional[bool]:
        value = self.operand.evaluate(row, resolve)
        if value is None:
            return None
        return not value

    def columns(self) -> Tuple[str, ...]:
        return self.operand.columns()


@dataclass(frozen=True)
class And(Expression):
    """Kleene AND: false dominates, unknown otherwise propagates."""

    left: Expression
    right: Expression

    def evaluate(self, row: Tuple[Any, ...], resolve: Resolver) -> Optional[bool]:
        left = self.left.evaluate(row, resolve)
        if left is False:
            return False
        right = self.right.evaluate(row, resolve)
        if right is False:
            return False
        if left is None or right is None:
            return None
        return True

    def columns(self) -> Tuple[str, ...]:
        return self.left.columns() + self.right.columns()


@dataclass(frozen=True)
class Or(Expression):
    """Kleene OR: true dominates, unknown otherwise propagates."""

    left: Expression
    right: Expression

    def evaluate(self, row: Tuple[Any, ...], resolve: Resolver) -> Optional[bool]:
        left = self.left.evaluate(row, resolve)
        if left is True:
            return True
        right = self.right.evaluate(row, resolve)
        if right is True:
            return True
        if left is None or right is None:
            return None
        return False

    def columns(self) -> Tuple[str, ...]:
        return self.left.columns() + self.right.columns()


def conjoin(expressions: Sequence[Expression]) -> Expression:
    """AND together a non-empty list of expressions."""
    if not expressions:
        raise SQLSyntaxError("cannot conjoin zero expressions")
    result = expressions[0]
    for expression in expressions[1:]:
        result = And(result, expression)
    return result


def equality_pairs(
    expression: Expression,
) -> Optional[Tuple[Tuple[str, str], ...]]:
    """If ``expression`` is a conjunction of column = column comparisons,
    return the ``(left_column, right_column)`` pairs — the shape a hash
    join can exploit.  Returns ``None`` for anything more general.
    """
    if isinstance(expression, And):
        left = equality_pairs(expression.left)
        right = equality_pairs(expression.right)
        if left is None or right is None:
            return None
        return left + right
    if (
        isinstance(expression, Comparison)
        and expression.operator in ("=", "==")
        and isinstance(expression.left, ColumnRef)
        and isinstance(expression.right, ColumnRef)
    ):
        return ((expression.left.name, expression.right.name),)
    return None
