"""Import any sqlite3 database into a :class:`repro.relational.Database`.

This adapter is the reproduction's counterpart of the paper's JDBC layer:
*"The BANKS system is developed in Java using servlets and JDBC, and can
be run on any schema without any programming."*  Point
:func:`load_sqlite` at a sqlite file (or an open connection) and you get
a fully-catalogued database — tables, primary keys, foreign keys and all
rows — ready for :class:`repro.core.banks.BANKS`.
"""

from __future__ import annotations

import sqlite3
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import SchemaError
from repro.relational.database import Database
from repro.relational.schema import Column, ForeignKey, TableSchema
from repro.relational.types import type_from_name


def _connect(source: Union[str, sqlite3.Connection]) -> Tuple[sqlite3.Connection, bool]:
    if isinstance(source, sqlite3.Connection):
        return source, False
    return sqlite3.connect(source), True


def _table_names(connection: sqlite3.Connection) -> List[str]:
    cursor = connection.execute(
        "SELECT name FROM sqlite_master "
        "WHERE type = 'table' AND name NOT LIKE 'sqlite_%' ORDER BY name"
    )
    return [row[0] for row in cursor.fetchall()]


def _columns_of(
    connection: sqlite3.Connection, table_name: str
) -> Tuple[List[Column], List[str]]:
    columns: List[Column] = []
    primary_key: List[Tuple[int, str]] = []
    cursor = connection.execute(f'PRAGMA table_info("{table_name}")')
    for _cid, name, declared_type, notnull, _default, pk_position in cursor:
        datatype = type_from_name(declared_type or "TEXT")
        columns.append(Column(name, datatype, nullable=not notnull and not pk_position))
        if pk_position:
            primary_key.append((pk_position, name))
    primary_key.sort()
    return columns, [name for _, name in primary_key]


def _foreign_keys_of(
    connection: sqlite3.Connection, table_name: str
) -> List[ForeignKey]:
    """Read sqlite's foreign_key_list pragma, grouping composite keys."""
    grouped: Dict[int, Dict[str, object]] = {}
    cursor = connection.execute(f'PRAGMA foreign_key_list("{table_name}")')
    for fk_id, seq, target_table, source_col, target_col, *_rest in cursor:
        entry = grouped.setdefault(
            fk_id, {"target": target_table, "pairs": []}
        )
        entry["pairs"].append((seq, source_col, target_col))
    keys: List[ForeignKey] = []
    for entry in grouped.values():
        pairs = sorted(entry["pairs"])  # type: ignore[arg-type]
        source_columns = tuple(source for _seq, source, _target in pairs)
        target_columns = tuple(target for _seq, _source, target in pairs)
        if any(target is None for target in target_columns):
            # `REFERENCES t` without explicit columns: resolve to t's PK.
            pk_cursor = connection.execute(
                f'PRAGMA table_info("{entry["target"]}")'
            )
            pk = sorted(
                (row[5], row[1]) for row in pk_cursor if row[5]
            )
            target_columns = tuple(name for _, name in pk)
            if len(target_columns) != len(source_columns):
                raise SchemaError(
                    f"cannot resolve implicit FK targets for {table_name!r}"
                )
        keys.append(
            ForeignKey(
                table_name,
                source_columns,
                str(entry["target"]),
                target_columns,
            )
        )
    return keys


def load_sqlite(
    source: Union[str, sqlite3.Connection],
    name: Optional[str] = None,
    check_integrity: bool = True,
) -> Database:
    """Build a :class:`Database` mirroring the sqlite database ``source``.

    Args:
        source: a filename/path or an existing sqlite3 connection
            (including ``":memory:"`` databases under test).
        name: name for the resulting database; defaults to ``"sqlite"``.
        check_integrity: if true (default), re-validate every foreign key
            after loading; disable for dirty real-world dumps.
    """
    connection, owned = _connect(source)
    try:
        database = Database(name or "sqlite", deferred_fk_check=True)
        table_names = _table_names(connection)

        schemas = []
        for table_name in table_names:
            columns, primary_key = _columns_of(connection, table_name)
            foreign_keys = _foreign_keys_of(connection, table_name)
            schemas.append(
                TableSchema(table_name, columns, primary_key, foreign_keys)
            )
        database.create_tables(schemas)

        for table_name in table_names:
            cursor = connection.execute(f'SELECT * FROM "{table_name}"')
            for values in cursor:
                database.insert(table_name, list(values))

        if check_integrity:
            database.check_integrity()
        return database
    finally:
        if owned:
            connection.close()


def dump_to_sqlite(
    database: Database, target: Union[str, sqlite3.Connection]
) -> None:
    """Write ``database`` out as a sqlite3 database (round-trip support)."""
    connection, owned = _connect(target)
    try:
        for table in database.tables():
            schema = table.schema
            column_clauses = []
            for column in schema.columns:
                clause = f'"{column.name}" {column.datatype.name}'
                if not column.nullable:
                    clause += " NOT NULL"
                column_clauses.append(clause)
            if schema.primary_key:
                quoted = ", ".join(f'"{c}"' for c in schema.primary_key)
                column_clauses.append(f"PRIMARY KEY ({quoted})")
            for fk in schema.foreign_keys:
                sources = ", ".join(f'"{c}"' for c in fk.source_columns)
                targets = ", ".join(f'"{c}"' for c in fk.target_columns)
                column_clauses.append(
                    f'FOREIGN KEY ({sources}) REFERENCES "{fk.target_table}" ({targets})'
                )
            connection.execute(
                f'CREATE TABLE "{schema.name}" ({", ".join(column_clauses)})'
            )
            placeholders = ", ".join("?" for _ in schema.columns)
            connection.executemany(
                f'INSERT INTO "{schema.name}" VALUES ({placeholders})',
                (row.values for row in table.scan()),
            )
        connection.commit()
    finally:
        if owned:
            connection.close()
