"""Space accounting for the data graph (paper Sec. 5.2).

The paper reports ~120 MB for a 100K-node / 300K-edge graph in Java and
argues the representation is small because nodes store only RIDs.  This
module measures the actual Python-object footprint of a
:class:`repro.graph.digraph.DiGraph` (deep ``sys.getsizeof`` over its
containers) and derives per-node / per-edge byte costs so the benchmark
can report the same table at several scales.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Set

from repro.graph.digraph import DiGraph


@dataclass(frozen=True)
class MemoryReport:
    """Measured footprint of one graph.

    Attributes:
        total_bytes: deep size of the graph object.
        num_nodes / num_edges: graph dimensions.
        bytes_per_node: total divided by nodes (includes edge share).
        bytes_per_edge: marginal cost per directed edge (adjacency
            entries only).
    """

    total_bytes: int
    num_nodes: int
    num_edges: int

    @property
    def bytes_per_node(self) -> float:
        return self.total_bytes / max(1, self.num_nodes)

    @property
    def bytes_per_edge(self) -> float:
        return self.total_bytes / max(1, self.num_edges)

    @property
    def megabytes(self) -> float:
        return self.total_bytes / (1024.0 * 1024.0)


def _deep_sizeof(obj: object, seen: Set[int]) -> int:
    identity = id(obj)
    if identity in seen:
        return 0
    seen.add(identity)
    size = sys.getsizeof(obj)
    if isinstance(obj, dict):
        for key, value in obj.items():
            size += _deep_sizeof(key, seen)
            size += _deep_sizeof(value, seen)
    elif isinstance(obj, (list, tuple, set, frozenset)):
        for item in obj:
            size += _deep_sizeof(item, seen)
    return size


_DICT_GRAPH_ATTRS = ("_index", "_ids", "_node_weights", "_succ", "_pred")
_CSR_GRAPH_ATTRS = (
    "_index",
    "_ids",
    "_reprs",
    "_tables",
    "_node_weights",
    "_succ_off",
    "_succ_to",
    "_succ_w",
    "_pred_off",
    "_pred_to",
    "_pred_w",
    "_edge_norms",
    "_over_succ",
    "_over_pred",
    "_over_nw",
)


def graph_memory_bytes(graph: DiGraph) -> MemoryReport:
    """Deep-measure the memory footprint of ``graph``.

    Handles both representations: the dict-of-dicts
    :class:`~repro.graph.digraph.DiGraph` and the frozen CSR snapshot
    (:mod:`repro.graph.csr`), whose adjacency lives in typed arrays
    plus overlay dicts.  ``sys.getsizeof`` on an ``array`` already
    reports its buffer, so no per-element recursion is needed there.
    """
    attributes = (
        _CSR_GRAPH_ATTRS
        if hasattr(graph, "_succ_off")
        else _DICT_GRAPH_ATTRS
    )
    seen: Set[int] = set()
    total = 0
    for attribute in attributes:
        total += _deep_sizeof(getattr(graph, attribute), seen)
    return MemoryReport(
        total_bytes=total,
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
    )
