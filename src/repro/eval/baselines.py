"""Ranking baselines for the ablation benchmarks.

The paper positions BANKS against simpler schemes from related work
(Sec. 6): Goldman et al.'s proximity-only search, Mragyati's
indegree-only ranking, and the naive undirected graph model it argues
against in Sec. 2.1.  Each baseline here reuses the BANKS machinery with
one ingredient removed, so differences are attributable to exactly that
ingredient:

* :func:`proximity_only_scoring` — lambda = 0 (no prestige; Goldman et
  al. [7] "do not consider node and edge weighting techniques");
* :func:`prestige_only_scoring` — lambda = 1 (Mragyati's default
  "ranking system uses indegree");
* :func:`uniform_backedge_policy` — back edges not scaled by indegree
  (the "ignore directionality/hub" model of Sec. 2.1);
* :func:`no_prestige_policy` — node weights all equal.
"""

from __future__ import annotations

from repro.core.scoring import ScoringConfig
from repro.core.weights import WeightPolicy


def proximity_only_scoring(edge_log: bool = True) -> ScoringConfig:
    """Rank purely by tree proximity (ignore node prestige)."""
    return ScoringConfig(lambda_weight=0.0, edge_log=edge_log)


def prestige_only_scoring() -> ScoringConfig:
    """Rank purely by node prestige (ignore edge weights)."""
    return ScoringConfig(lambda_weight=1.0, edge_log=False)


def paper_best_scoring() -> ScoringConfig:
    """The setting Figure 5 found best: lambda=0.2, EdgeLog on."""
    return ScoringConfig(lambda_weight=0.2, edge_log=True)


def uniform_backedge_policy() -> WeightPolicy:
    """Back edges cost the same as forward edges (no hub penalty)."""
    return WeightPolicy(backward_indegree_scaling=False)


def no_prestige_policy() -> WeightPolicy:
    """All node weights equal (prestige disabled at the graph level)."""
    return WeightPolicy(prestige="none")


def parallel_resistance_policy() -> WeightPolicy:
    """Eq. 1's alternative merge rule ("equivalent parallel resistance")."""
    return WeightPolicy(merge_rule="parallel")
