"""Parameter sweep harness — regenerates Figure 5.

Figure 5 plots the scaled error score against lambda (0, 0.2, 0.5, 0.8,
1) and EdgeLog (log scaling of edge weights on/off).  The paper also
checks NodeLog and the additive/multiplicative combination mode, finding
neither matters much; :func:`full_grid_sweep` covers those axes too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.banks import BANKS
from repro.core.scoring import ScoringConfig
from repro.eval.error_score import (
    ANSWERS_EXAMINED,
    query_rank_error,
    scale_errors,
)
from repro.eval.workload import EvalQuery

#: The lambda grid of Figure 5.
FIGURE5_LAMBDAS = (0.0, 0.2, 0.5, 0.8, 1.0)


@dataclass(frozen=True)
class SweepPoint:
    """One cell of the sweep: a parameter setting and its error."""

    lambda_weight: float
    edge_log: bool
    node_log: bool
    combination: str
    scaled_error: float
    raw_error: int

    def label(self) -> str:
        return (
            f"lambda={self.lambda_weight:g} "
            f"EdgeLog={int(self.edge_log)} NodeLog={int(self.node_log)} "
            f"{self.combination}"
        )


def run_workload(
    banks: BANKS,
    workload: Sequence[EvalQuery],
    scoring: ScoringConfig,
    answers_examined: int = ANSWERS_EXAMINED,
    output_heap_size: int = 400,
) -> Tuple[int, Dict[str, int]]:
    """Raw error of one parameter setting over the whole workload.

    Returns ``(total_raw_error, per_query_errors)``.  A generous output
    heap makes emission order match relevance order exactly for these
    dataset sizes, isolating the *scoring* comparison Figure 5 is about
    (the heap-size approximation is studied separately in the ablation
    benchmark).
    """
    per_query: Dict[str, int] = {}
    for query in workload:
        answers = banks.search(
            query.text,
            max_results=answers_examined,
            scoring=scoring,
            output_heap_size=output_heap_size,
        )
        result_keys = [answer.tree.undirected_key() for answer in answers]
        per_query[query.query_id] = query_rank_error(
            query.ideal_keys, result_keys
        )
    return sum(per_query.values()), per_query


def figure5_sweep(
    banks: BANKS,
    workload: Sequence[EvalQuery],
    lambdas: Sequence[float] = FIGURE5_LAMBDAS,
    edge_logs: Sequence[bool] = (False, True),
    node_log: bool = False,
    combination: str = "additive",
) -> List[SweepPoint]:
    """The lambda x EdgeLog grid of Figure 5."""
    total_ideals = sum(len(query.ideal_keys) for query in workload)
    points: List[SweepPoint] = []
    for edge_log in edge_logs:
        for lambda_weight in lambdas:
            scoring = ScoringConfig(
                lambda_weight=lambda_weight,
                edge_log=edge_log,
                node_log=node_log,
                combination=combination,
            )
            raw, _per_query = run_workload(banks, workload, scoring)
            points.append(
                SweepPoint(
                    lambda_weight=lambda_weight,
                    edge_log=edge_log,
                    node_log=node_log,
                    combination=combination,
                    scaled_error=scale_errors(raw, total_ideals),
                    raw_error=raw,
                )
            )
    return points


def full_grid_sweep(
    banks: BANKS,
    workload: Sequence[EvalQuery],
    lambdas: Sequence[float] = FIGURE5_LAMBDAS,
) -> List[SweepPoint]:
    """Every retained option combination (Sec. 2.3's eight minus the
    three the paper discarded), across the lambda grid."""
    total_ideals = sum(len(query.ideal_keys) for query in workload)
    points: List[SweepPoint] = []
    for option in ScoringConfig.paper_grid():
        for lambda_weight in lambdas:
            scoring = ScoringConfig(
                lambda_weight=lambda_weight,
                edge_log=option.edge_log,
                node_log=option.node_log,
                combination=option.combination,
            )
            raw, _per_query = run_workload(banks, workload, scoring)
            points.append(
                SweepPoint(
                    lambda_weight=lambda_weight,
                    edge_log=option.edge_log,
                    node_log=option.node_log,
                    combination=option.combination,
                    scaled_error=scale_errors(raw, total_ideals),
                    raw_error=raw,
                )
            )
    return points


def format_figure5(points: Sequence[SweepPoint]) -> str:
    """Render sweep points as the Figure 5 grid (rows: EdgeLog, columns:
    lambda), the same series the paper plots."""
    lambdas = sorted({p.lambda_weight for p in points})
    lines = ["ScaledError by (EdgeLog, lambda):"]
    header = "EdgeLog\\lambda | " + " | ".join(f"{lam:>5g}" for lam in lambdas)
    lines.append(header)
    lines.append("-" * len(header))
    for edge_log in (0, 1):
        cells = []
        for lam in lambdas:
            match = [
                p
                for p in points
                if p.edge_log == bool(edge_log) and p.lambda_weight == lam
            ]
            cells.append(f"{match[0].scaled_error:>5.1f}" if match else "    -")
        lines.append(f"{edge_log:>14} | " + " | ".join(cells))
    return "\n".join(lines)
