"""The evaluation workload: 7 queries with ground-truth ideal answers.

The paper (Sec. 5) picks queries "that illustrated different ways of
querying this information (e.g. keywords from two authors who are
coauthors, authors who have a common coauthor, an author and a title,
keywords from titles alone, and so on)" and, per query, marks the most
meaningful answers as *ideal*.  Our generator plants those meaningful
substructures (see :mod:`repro.datasets.bibliography`), so the ideal
answers are known by construction rather than by judgement.

Ideal answers are expressed as *undirected tree keys* — the same
canonical form :meth:`repro.core.answer.AnswerTree.undirected_key` uses —
because the paper "considered answers to be the same if their trees were
the same, even if the roots were different".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Sequence, Tuple

from repro.datasets.bibliography import BibliographyAnecdotes
from repro.relational.database import RID


@dataclass(frozen=True)
class EvalQuery:
    """One benchmark query.

    Attributes:
        query_id: short identifier (used in benchmark output rows).
        text: the query string fed to BANKS.
        form: which of the paper's query forms this exercises.
        ideal_keys: undirected tree keys of the ideal answers, best
            first.
    """

    query_id: str
    text: str
    form: str
    ideal_keys: Tuple[FrozenSet, ...]


def _single_node_key(node: RID) -> FrozenSet:
    return frozenset((frozenset((node,)), frozenset()))


def _tree_key(nodes: Sequence[RID], edges: Sequence[Tuple[RID, RID]]) -> FrozenSet:
    return frozenset(
        (
            frozenset(nodes),
            frozenset(frozenset(edge) for edge in edges),
        )
    )


def _star_key(
    anecdotes: BibliographyAnecdotes, paper: RID, authors: Sequence[RID]
) -> FrozenSet:
    """Key of a paper-rooted star: paper -> writes -> each author."""
    nodes: List[RID] = [paper]
    edges: List[Tuple[RID, RID]] = []
    for author in authors:
        writes = anecdotes.writes_by_paper[(author, paper)]
        nodes.extend([writes, author])
        edges.append((paper, writes))
        edges.append((writes, author))
    return _tree_key(nodes, edges)


def bibliography_workload(
    anecdotes: BibliographyAnecdotes,
) -> List[EvalQuery]:
    """The 7 evaluation queries over the bibliographic database."""
    a = anecdotes

    # Q2: the Stonebraker tree — root at the common co-author, one
    # branch per co-authored paper down to Seltzer / Sunita.
    st_nodes: List[RID] = [a.stonebraker]
    st_edges: List[Tuple[RID, RID]] = []
    for paper, leaf in (
        (a.stonebraker_seltzer_paper, a.seltzer),
        (a.stonebraker_sunita_paper, a.sunita),
    ):
        writes_st = a.writes_by_paper[(a.stonebraker, paper)]
        writes_leaf = a.writes_by_paper[(leaf, paper)]
        st_nodes.extend([writes_st, paper, writes_leaf, leaf])
        st_edges.extend(
            [
                (a.stonebraker, writes_st),
                (writes_st, paper),
                (paper, writes_leaf),
                (writes_leaf, leaf),
            ]
        )

    return [
        EvalQuery(
            "q1-coauthors",
            "soumen sunita",
            "keywords from two authors who are coauthors",
            (
                _star_key(a, a.soumen_sunita_second_paper, [a.soumen, a.sunita]),
                _star_key(a, a.chakrabarti_sd98, [a.soumen, a.sunita]),
            ),
        ),
        EvalQuery(
            "q2-common-coauthor",
            "seltzer sunita",
            "authors who have a common coauthor",
            (_tree_key(st_nodes, st_edges),),
        ),
        EvalQuery(
            "q3-author-title",
            "gray transaction",
            "an author and a title word",
            (
                _star_key(a, a.transaction_classic, [a.gray]),
                _star_key(a, a.transaction_book, [a.gray]),
            ),
        ),
        EvalQuery(
            "q4-title-only",
            "transaction",
            "keywords from titles alone",
            (
                _single_node_key(a.transaction_classic),
                _single_node_key(a.transaction_book),
            ),
        ),
        EvalQuery(
            "q5-author-only",
            "mohan",
            "an author name matching several authors",
            (
                _single_node_key(a.c_mohan),
                _single_node_key(a.mohan_ahuja),
                _single_node_key(a.mohan_kamat),
            ),
        ),
        EvalQuery(
            "q6-author-title-word",
            "sunita temporal",
            "an author and a word of one of their titles",
            (_star_key(a, a.chakrabarti_sd98, [a.sunita]),),
        ),
        EvalQuery(
            "q7-metadata",
            "author sudarshan",
            "a metadata keyword (relation name) plus a name",
            (_single_node_key(a.sudarshan),),
        ),
    ]
