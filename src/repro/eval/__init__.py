"""The paper's evaluation harness (Sec. 5).

* :mod:`repro.eval.workload` — the 7-query benchmark with ideal answers
  (Sec. 5.3: "7 different queries whose form was outlined earlier ...
  we chose answers that we felt were the most meaningful");
* :mod:`repro.eval.error_score` — the rank-difference error metric,
  scaled so the worst possible score is 100;
* :mod:`repro.eval.sweep` — the parameter sweep behind Figure 5;
* :mod:`repro.eval.baselines` — ranking baselines (proximity-only,
  prestige-only, uniform back edges) for the ablation benchmarks;
* :mod:`repro.eval.memory` — Sec. 5.2 space accounting.
"""

from repro.eval.error_score import query_rank_error, scale_errors
from repro.eval.sweep import SweepPoint, figure5_sweep, run_workload
from repro.eval.workload import EvalQuery, bibliography_workload
from repro.eval.memory import graph_memory_bytes

__all__ = [
    "EvalQuery",
    "SweepPoint",
    "bibliography_workload",
    "figure5_sweep",
    "graph_memory_bytes",
    "query_rank_error",
    "run_workload",
    "scale_errors",
]
