"""The paper's rank-difference error metric (Sec. 5.3).

"For each query, for each parameter setting, we computed the absolute
value of the rank difference of the ideal answers with their rank in the
answers for that parameter setting.  The sum of these rank differences
gives the raw error score for that parameter setting.  We scaled the
scores to set the worst possible error score to 100. ... For answers
that were missing at a parameter setting, the rank difference was
assumed to be 11 (one more than the number of answers examined)."
"""

from __future__ import annotations

from typing import FrozenSet, Sequence

#: The paper examines the top 10 answers per query.
ANSWERS_EXAMINED = 10

#: Rank difference charged for an ideal answer absent from the top 10.
MISSING_PENALTY = ANSWERS_EXAMINED + 1


def query_rank_error(
    ideal_keys: Sequence[FrozenSet],
    result_keys: Sequence[FrozenSet],
    missing_penalty: int = MISSING_PENALTY,
) -> int:
    """Raw rank-difference error for one query at one parameter setting.

    Args:
        ideal_keys: undirected tree keys of the ideal answers, in ideal
            order (position = ideal rank).
        result_keys: undirected tree keys of the returned answers, in
            returned order (the caller truncates to the examined top-k).
        missing_penalty: charge for an ideal answer not returned.
    """
    positions = {key: rank for rank, key in enumerate(result_keys)}
    error = 0
    for ideal_rank, key in enumerate(ideal_keys):
        actual_rank = positions.get(key)
        if actual_rank is None:
            error += missing_penalty
        else:
            error += abs(actual_rank - ideal_rank)
    return error


def worst_possible_error(
    total_ideals: int, missing_penalty: int = MISSING_PENALTY
) -> int:
    """The raw error when every ideal answer is missing everywhere."""
    return missing_penalty * total_ideals


def scale_errors(
    raw_error: float, total_ideals: int, missing_penalty: int = MISSING_PENALTY
) -> float:
    """Scale a raw error so the worst possible score is 100."""
    worst = worst_possible_error(total_ideals, missing_penalty)
    if worst <= 0:
        return 0.0
    return 100.0 * raw_error / worst
