"""Packaging for the BANKS reproduction.

Metadata is declared here (rather than a ``[project]`` table) because
some offline environments' pip/setuptools cannot build PEP 660 editable
wheels (no ``wheel`` package available); this file keeps both
``setup.py develop`` and ``pip install .`` working there.  Tool
configuration (pytest paths, package discovery) lives in
pyproject.toml.
"""

from setuptools import find_packages, setup

setup(
    name="banks-repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Keyword Searching and Browsing in Databases "
        "using BANKS' (Bhalotia et al., ICDE 2002)"
    ),
    long_description=(
        "The BANKS data-graph model, backward expanding search, "
        "proximity+prestige ranking, browsing front end, concurrent "
        "query-serving engine, and the paper's evaluation harness, on "
        "top of a from-scratch relational engine with sqlite/CSV "
        "adapters.  Pure standard library; no runtime dependencies."
    ),
    author="paper-repo-growth",
    license="MIT",
    python_requires=">=3.9",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    entry_points={"console_scripts": ["banks = repro.cli:main"]},
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "Programming Language :: Python :: 3",
        "Topic :: Database :: Front-Ends",
        "Topic :: Text Processing :: Indexing",
    ],
)
