"""Shim for environments whose pip/setuptools cannot build PEP 660
editable wheels (no ``wheel`` package available offline).  Configuration
lives in pyproject.toml; this file only enables ``setup.py develop``."""

from setuptools import setup

setup()
