#!/usr/bin/env python
"""Live data: incremental maintenance + feedback, no rebuilds.

The paper reports a ~2 minute initial graph load (Sec. 5.2) — fine
once, fatal per update.  This example runs BANKS as a *live* system:

1. tuples are inserted, updated and deleted while the engine is
   serving queries — the graph and keyword index follow as deltas
   (`IncrementalBANKS`), never rebuilding;
2. user clicks feed authority transfer (Sec. 7): endorsed answers
   rise on subsequent searches.

Run:
    python examples/live_updates.py
"""

from __future__ import annotations

import time

from repro.core.incremental import IncrementalBANKS
from repro.datasets import generate_bibliography


def show(banks, query: str, note: str, max_results: int = 3) -> None:
    start = time.perf_counter()
    answers = banks.search(query, max_results=max_results)
    elapsed = 1000 * (time.perf_counter() - start)
    print(f"\n>>> {query!r}  ({note}; {elapsed:.0f} ms)")
    for answer in answers:
        print(f"  [{answer.relevance:.3f}] "
              f"{banks.node_label(answer.tree.root)}")


def main() -> None:
    database, _ = generate_bibliography(papers=200, authors=120, seed=7)
    start = time.perf_counter()
    banks = IncrementalBANKS(database)
    print(f"initial build: {banks} in "
          f"{1000 * (time.perf_counter() - start):.0f} ms")

    show(banks, "quantum indexing", "before any insert")

    # A new paper arrives — searchable immediately, no rebuild.
    start = time.perf_counter()
    paper = banks.insert("paper", ["LIVE1", "Quantum Indexing Structures"])
    author_row = next(database.table("author").scan())
    banks.insert("writes", [author_row["author_id"], "LIVE1"])
    print(f"\n2 deltas applied in "
          f"{1000 * (time.perf_counter() - start):.2f} ms")
    show(banks, "quantum indexing", "after insert")

    # The title is corrected in place; the old term stops matching.
    banks.update(paper, {"title": "Holographic Indexing Structures"})
    show(banks, "quantum indexing", "after title update")
    show(banks, "holographic indexing", "new title matches")

    # Retraction: remove the authorship then the paper.
    writes_rid = next(
        rid
        for rid in database.table("writes").rids()
        if database.table("writes").row(rid)["paper_id"] == "LIVE1"
    )
    banks.delete(("writes", writes_rid))
    banks.delete(paper)
    show(banks, "holographic indexing", "after delete")

    print(f"\nfinal state: {banks}")
    print("every delta above kept the graph identical to a full rebuild "
          "(property-tested in tests/core/test_incremental.py)")


if __name__ == "__main__":
    main()
