#!/usr/bin/env python
"""Zero-effort Web publishing of a sqlite database (paper Sec. 1).

"The greatest value of BANKS lies in near zero-effort Web publishing of
relational data which would otherwise remain invisible to the Web."

This example builds a sqlite product-catalog database (standing in for
any database you already have), loads it with the sqlite adapter —
schema, keys and all, no programming — and serves a browsable,
keyword-searchable site over it.

Run::

    python examples/publish_sqlite.py            # smoke mode: render pages
    python examples/publish_sqlite.py --serve    # serve on localhost:8947
"""

import sqlite3
import sys
import tempfile

from repro import BANKS
from repro.browse import BrowseApp
from repro.relational.sqlite_adapter import load_sqlite

CATALOG_SQL = """
CREATE TABLE category (
    cat_id TEXT PRIMARY KEY,
    name TEXT NOT NULL
);
CREATE TABLE product (
    prod_id TEXT PRIMARY KEY,
    name TEXT NOT NULL,
    cat_id TEXT NOT NULL REFERENCES category(cat_id)
);
CREATE TABLE store (
    store_id TEXT PRIMARY KEY,
    city TEXT NOT NULL
);
CREATE TABLE stock (
    store_id TEXT NOT NULL REFERENCES store(store_id),
    prod_id TEXT NOT NULL REFERENCES product(prod_id),
    quantity INTEGER NOT NULL,
    PRIMARY KEY (store_id, prod_id)
);

INSERT INTO category VALUES ('AUDIO', 'Audio Equipment');
INSERT INTO category VALUES ('PHOTO', 'Cameras and Photography');
INSERT INTO product VALUES ('P1', 'Walnut Bookshelf Speakers', 'AUDIO');
INSERT INTO product VALUES ('P2', 'Tube Amplifier Kit', 'AUDIO');
INSERT INTO product VALUES ('P3', 'Rangefinder Camera', 'PHOTO');
INSERT INTO product VALUES ('P4', 'Tripod With Fluid Head', 'PHOTO');
INSERT INTO store VALUES ('S1', 'Mumbai');
INSERT INTO store VALUES ('S2', 'Pune');
INSERT INTO stock VALUES ('S1', 'P1', 12);
INSERT INTO stock VALUES ('S1', 'P3', 3);
INSERT INTO stock VALUES ('S2', 'P2', 7);
INSERT INTO stock VALUES ('S2', 'P3', 5);
INSERT INTO stock VALUES ('S2', 'P4', 9);
"""


def build_catalog() -> str:
    path = tempfile.mktemp(suffix=".db", prefix="banks_catalog_")
    connection = sqlite3.connect(path)
    connection.executescript(CATALOG_SQL)
    connection.commit()
    connection.close()
    return path


def main() -> None:
    sqlite_path = build_catalog()
    print(f"created sqlite database at {sqlite_path}")

    # The whole "integration": one call.
    database = load_sqlite(sqlite_path, name="catalog")
    app = BrowseApp(BANKS(database))

    if "--serve" in sys.argv:
        from wsgiref.simple_server import make_server

        port = 8947
        print(f"serving http://localhost:{port}/ (Ctrl-C to stop)")
        make_server("localhost", port, app).serve_forever()
        return

    # Smoke mode: render key pages and a search, print sizes.
    for path, query_string in [
        ("/", ""),
        ("/schema", ""),
        ("/table/product", ""),
        ("/search", "q=camera+mumbai"),
    ]:
        status, html = app.handle(path, query_string)
        print(f"{path:<18} {status} {len(html)} bytes")

    print("\nkeyword search 'camera mumbai' (joins stock/store implicitly):")
    banks = app.banks
    for answer in banks.search("camera mumbai", max_results=2):
        print(f"--- rank {answer.rank}  relevance {answer.relevance:.3f}")
        print(answer.render())


if __name__ == "__main__":
    main()
