#!/usr/bin/env python
"""Browsing the thesis database (paper Sec. 4 / Fig. 4, headless).

Replays the paper's sample browsing session on the synthetic IITB
thesis database — joins through foreign keys, projections, group-by,
templates — and writes each page to ``/tmp/banks_browse/*.html`` so you
can open them in a browser.

Run::

    python examples/thesis_browsing.py
"""

import os

from repro import BANKS
from repro.browse import BrowseApp, BrowseState
from repro.datasets import generate_thesis_db

OUT_DIR = "/tmp/banks_browse"


def save(name: str, html: str) -> None:
    path = os.path.join(OUT_DIR, name)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(html)
    print(f"  wrote {path} ({len(html)} bytes)")


def main() -> None:
    os.makedirs(OUT_DIR, exist_ok=True)
    database, _anecdotes = generate_thesis_db()
    app = BrowseApp(BANKS(database))

    print("Fig. 4 style session: student JOIN thesis, drop columns")
    # student is foreign-keyed from thesis; join in the reverse
    # direction from student (roll number -> thesis) like the paper.
    state = (
        BrowseState("thesis")
        .with_join(0, "f")          # thesis -> student
        .with_drop("thesis.thesis_id")
        .with_sort("student.name")
    )
    _status, html = app.handle(f"/table/{state.table}", state.to_query())
    save("join_thesis_student.html", html)

    print("group students by department, expand CSE")
    state = (
        BrowseState("student")
        .with_group_by("student.dept_id")
        .with_expand("CSE")
    )
    _status, html = app.handle("/table/student", state.to_query())
    save("students_by_department.html", html)

    print("schema browser and a tuple page with back-references")
    _status, html = app.handle("/schema", "")
    save("schema.html", html)
    _status, html = app.handle("/row/department/0", "")
    save("department_row.html", html)

    print("templates: hierarchy, crosstab, chart (composed)")
    app.templates.save(
        "students-by-dept-prog",
        "groupby",
        {
            "table": "student",
            "group_columns": ["student.dept_id", "student.prog_id"],
        },
    )
    app.templates.save(
        "dept-crosstab",
        "crosstab",
        {"table": "student", "row": "student.dept_id",
         "column": "student.prog_id"},
    )
    app.templates.save(
        "dept-pie",
        "chart",
        {
            "table": "student",
            "label_column": "student.dept_id",
            "chart": "pie",
            # Template composition: clicking a slice opens the
            # hierarchical template at that department.
            "link_to": "students-by-dept-prog",
        },
    )
    for name in ("students-by-dept-prog", "dept-crosstab", "dept-pie"):
        _status, html = app.handle(f"/template/{name}", "")
        save(f"template_{name}.html", html)
    _status, html = app.handle(
        "/template/students-by-dept-prog", "path=CSE"
    )
    save("template_drilldown_cse.html", html)

    print("keyword search from the browser: 'computer engineering'")
    _status, html = app.handle("/search", "q=computer+engineering")
    save("search_computer_engineering.html", html)


if __name__ == "__main__":
    main()
