#!/usr/bin/env python
"""Cross-database keyword search through external links (Sec. 7).

The paper plans "support for external links, such as HTML HREFs ...
particularly useful when integrating information from multiple
databases".  This example federates two independently generated
databases — the DBLP-like bibliography and the IITB-thesis-like
database — by declaring one external link: thesis advisors and
bibliography authors with the same name are the same person.

Keyword queries then return connection trees *spanning both databases*:
a thesis in one database connects to papers in the other through the
person-identity link.

Run:
    python examples/federated_search.py
"""

from __future__ import annotations

from repro.datasets import generate_bibliography, generate_thesis_db
from repro.federate import ExternalLink, FederatedBanks, Federation
from repro.relational import execute_script


def main() -> None:
    biblio, _ = generate_bibliography(papers=80, authors=50, seed=7)
    thesis, _ = generate_thesis_db()

    # The thesis database writes advisors as "Prof. X"; align a few
    # names so the identity link has something to match (in a real
    # deployment this is the data-cleaning step HREF publishing needs).
    execute_script(
        thesis,
        "UPDATE faculty SET name = 'S. Sudarshan' "
        "WHERE name = 'Prof. S. Sudarshan'",
    )

    federation = Federation("campus")
    federation.register("dblp", biblio)
    federation.register("theses", thesis)
    federation.add_link(
        ExternalLink(
            name="advisor-is-author",
            source_db="theses",
            source_table="faculty",
            source_column="name",
            target_db="dblp",
            target_table="author",
            target_column="name",
        )
    )
    print(federation)

    banks = FederatedBanks(federation)
    print(banks)
    resolved = federation.resolve_links()
    print(f"resolved external links: {len(resolved)}")
    for source, target, weight in resolved[:5]:
        print(f"  {source} -> {target} (weight {weight})")

    for query in ("sudarshan temporal", "sudarshan thesis", "author aditya"):
        print(f"\n>>> {query!r}")
        answers = banks.search(query, max_results=3)
        if not answers:
            print("    (no answers)")
            continue
        for answer in answers:
            marker = "CROSS-DB" if answer.is_cross_database() else "single"
            print(f"  [{answer.relevance:.3f}] ({marker})")
            for line in answer.render().splitlines():
                print(f"    {line}")


if __name__ == "__main__":
    main()
