#!/usr/bin/env python
"""Quickstart: define a schema, load a few tuples, run keyword queries.

Recreates the paper's running example (Fig. 1 / Fig. 2): the DBLP
fragment around the paper ChakrabartiSD98 and a "soumen sunita" query
whose answer is the rooted connection tree joining both authors through
the paper.

Run::

    python examples/quickstart.py
"""

from repro import BANKS
from repro.relational import Database, execute_script

SCHEMA_AND_DATA = """
CREATE TABLE author (
    author_id TEXT PRIMARY KEY,
    name TEXT NOT NULL
);
CREATE TABLE paper (
    paper_id TEXT PRIMARY KEY,
    title TEXT NOT NULL
);
CREATE TABLE writes (
    author_id TEXT NOT NULL REFERENCES author(author_id),
    paper_id TEXT NOT NULL REFERENCES paper(paper_id),
    PRIMARY KEY (author_id, paper_id)
);
CREATE TABLE cites (
    citing TEXT NOT NULL REFERENCES paper(paper_id),
    cited TEXT NOT NULL REFERENCES paper(paper_id),
    PRIMARY KEY (citing, cited)
);

INSERT INTO author VALUES ('SoumenC', 'Soumen Chakrabarti');
INSERT INTO author VALUES ('SunitaS', 'Sunita Sarawagi');
INSERT INTO author VALUES ('ByronD', 'Byron Dom');
INSERT INTO paper VALUES
    ('ChakrabartiSD98',
     'Mining Surprising Patterns Using Temporal Description Length');
INSERT INTO paper VALUES ('Later01', 'Followup Work On Pattern Mining');
INSERT INTO writes VALUES ('SoumenC', 'ChakrabartiSD98');
INSERT INTO writes VALUES ('SunitaS', 'ChakrabartiSD98');
INSERT INTO writes VALUES ('ByronD', 'ChakrabartiSD98');
INSERT INTO writes VALUES ('SoumenC', 'Later01');
INSERT INTO cites VALUES ('Later01', 'ChakrabartiSD98');
"""


def main() -> None:
    database = Database("dblp-fragment")
    execute_script(database, SCHEMA_AND_DATA)

    banks = BANKS(database)
    print(banks)
    print()

    for query in ("soumen sunita", "sunita temporal", "mining"):
        print(f"=== query: {query!r}")
        for answer in banks.search(query, max_results=3):
            print(f"--- rank {answer.rank}  relevance {answer.relevance:.3f}")
            print(answer.render())
        print()


if __name__ == "__main__":
    main()
