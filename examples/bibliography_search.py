#!/usr/bin/env python
"""The paper's Sec. 5.1 anecdotes, replayed on the synthetic DBLP.

Generates the bibliographic database (with the planted anecdote
substructures), runs each anecdote query, and prints the answer trees —
including the log-scaling comparison for "seltzer sunita" and a
structure-grouped summary (the Sec. 7 summarisation extension).

Run::

    python examples/bibliography_search.py
"""

from repro import BANKS, ScoringConfig
from repro.datasets import generate_bibliography

ANECDOTES = [
    ("mohan", "prestige from the writes relation"),
    ("transaction", "prestige from citations"),
    ("soumen sunita", "co-author connection trees (Fig. 2)"),
    ("sunita temporal", "author + title word"),
    ("seltzer sunita", "common co-author through Stonebraker"),
    ("author sudarshan", "metadata keyword: matches the author relation"),
]


def main() -> None:
    database, _anecdotes = generate_bibliography()
    banks = BANKS(database)
    print(banks)

    for query, why in ANECDOTES:
        print(f"\n=== {query!r}  ({why})")
        answers = banks.search(query, max_results=3, output_heap_size=400)
        for answer in answers:
            print(f"--- rank {answer.rank}  relevance {answer.relevance:.3f}")
            print(answer.render())

    print("\n=== 'seltzer sunita' without log scaling of edge weights")
    print("(the Stonebraker answer sinks, as reported in the paper)")
    answers = banks.search(
        "seltzer sunita",
        max_results=3,
        scoring=ScoringConfig(lambda_weight=0.2, edge_log=False),
        output_heap_size=400,
    )
    for answer in answers:
        print(f"--- rank {answer.rank}  relevance {answer.relevance:.3f}")
        print(answer.render())

    print("\n=== answers to 'soumen sunita' grouped by tree structure")
    for signature, group in banks.search_summarized(
        "soumen sunita", max_results=10
    ).items():
        print(f"  {signature}: {len(group)} answer(s)")

    print("\n=== fuzzy matching: 'chakraborti' (misspelled)")
    fuzzy_banks = BANKS(database, fuzzy=True)
    for answer in fuzzy_banks.search("chakraborti", max_results=2):
        print(f"--- rank {answer.rank}  relevance {answer.relevance:.3f}")
        print(answer.render())


if __name__ == "__main__":
    main()
