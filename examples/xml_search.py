#!/usr/bin/env python
"""Keyword search over XML documents (the paper's Sec. 7 extension).

The paper observes that the BANKS edge model subsumes nested XML —
containment is "simply edges of a new type".  This example builds an
XML bibliography and an XML product catalog, runs the same keyword
queries the relational examples use, and shows connection trees whose
roots are *information elements*.

Run:
    python examples/xml_search.py
"""

from __future__ import annotations

from repro.xmlkw import XMLBanks, parse_xml
from repro.xmlkw.generator import generate_bibliography_xml, generate_catalog_xml


def heading(title: str) -> None:
    print()
    print("=" * 64)
    print(title)
    print("=" * 64)


def show(banks: XMLBanks, query: str, max_results: int = 3) -> None:
    print(f"\n>>> {query!r}")
    answers = banks.search(query, max_results=max_results)
    if not answers:
        print("    (no answers)")
        return
    for answer in answers:
        print(f"  [{answer.relevance:.3f}]")
        for line in answer.render().splitlines():
            print(f"    {line}")


def main() -> None:
    heading("XML bibliography (generated, with the paper's anecdote entities)")
    bibliography = generate_bibliography_xml(papers=120, authors=60, seed=7)
    banks = XMLBanks(
        bibliography,
        excluded_root_tags=("bibliography", "authorref", "cite"),
    )
    print(banks)

    # The Fig. 2 query on XML: the co-authored paper is the information
    # element connecting both author subtrees.
    show(banks, "soumen sunita")

    # Metadata matching: 'author' is relevant to every <author> element.
    show(banks, "author temporal", max_results=2)

    # Tag-qualified search (the XML reading of attribute:keyword).
    show(banks, "title:temporal", max_results=2)

    heading("XML product catalog (containment + supplier references)")
    catalog = generate_catalog_xml(categories=6, products_per_category=10, seed=3)
    catalog_banks = XMLBanks(catalog, excluded_root_tags=("catalog",))
    print(catalog_banks)

    show(catalog_banks, "steel hammer", max_results=2)
    show(catalog_banks, "supplier valve", max_results=2)

    heading("Hand-written document: references beat the hub")
    document = parse_xml(
        """
        <library>
          <author id="knuth"><name>donald knuth</name></author>
          <author id="lamport"><name>leslie lamport</name></author>
          <book id="b1" ref="knuth"><title>the art of computer programming</title></book>
          <book id="b2" ref="knuth"><title>concrete mathematics</title></book>
          <book id="b3" ref="lamport"><title>latex a document preparation system</title></book>
        </library>
        """,
        "library",
    )
    library_banks = XMLBanks(document, excluded_root_tags=("library",))
    print(library_banks)

    # 'knuth programming' should connect through the IDREF edge
    # (book -> author), not through the <library> hub.
    show(library_banks, "knuth programming", max_results=1)

    heading("Browsing the same corpus (Sec. 7's browsing half)")
    from repro.xmlkw import XMLBrowseApp

    app = XMLBrowseApp(library_banks)
    for path, query in (("/", ""), ("/element/library/1", ""), ("/search", "q=knuth")):
        status, html = app.handle(path, query)
        print(f"GET {path}?{query} -> {status} ({len(html)} bytes of HTML)")
    print("(pass the app to wsgiref.simple_server to serve it live)")


if __name__ == "__main__":
    main()
