#!/usr/bin/env python
"""Selective data exposure with authorization (Sec. 7).

The paper plans "authorization mechanisms to selectively expose data to
different users".  This example publishes a hospital database to three
kinds of users and shows that keyword search respects each policy —
including the non-obvious guarantee that *connection trees never route
through tuples a user cannot see*.

Run:
    python examples/secure_publishing.py
"""

from __future__ import annotations

from repro.authz import AccessPolicy, PolicySet, Principal, SecureBanks
from repro.relational import Database, execute_script


def build_hospital() -> Database:
    database = Database("hospital")
    execute_script(
        database,
        """
        CREATE TABLE doctor (did TEXT PRIMARY KEY, name TEXT NOT NULL);
        CREATE TABLE patient (
            pid TEXT PRIMARY KEY,
            name TEXT NOT NULL,
            diagnosis TEXT,
            ward TEXT
        );
        CREATE TABLE visit (
            did TEXT NOT NULL REFERENCES doctor(did),
            pid TEXT NOT NULL REFERENCES patient(pid),
            note TEXT
        );
        INSERT INTO doctor VALUES ('d1', 'doctor house');
        INSERT INTO doctor VALUES ('d2', 'doctor grey');
        INSERT INTO patient VALUES ('p1', 'john smith', 'lupus', 'east');
        INSERT INTO patient VALUES ('p2', 'mary jones', 'pneumonia', 'west');
        INSERT INTO patient VALUES ('p3', 'ravi patel', 'fracture', 'east');
        INSERT INTO visit VALUES ('d1', 'p1', 'followup scan ordered');
        INSERT INTO visit VALUES ('d2', 'p2', 'antibiotics prescribed');
        INSERT INTO visit VALUES ('d1', 'p3', 'cast removed');
        """,
    )
    return database


def build_policies() -> PolicySet:
    policies = PolicySet()
    # Clinicians see everything.
    policies.grant("clinician", AccessPolicy(default="allow"))
    # The front desk sees people and visits but never diagnoses.
    policies.grant(
        "front-desk",
        AccessPolicy(default="allow").hide_columns("patient", "diagnosis"),
    )
    # Ward nurses see only their own ward's patients (and, through the
    # referential cascade, only the visits of those patients).
    policies.grant(
        "east-ward",
        AccessPolicy(default="allow").restrict_rows(
            "patient", lambda row: row["ward"] == "east"
        ),
    )
    return policies


def show(secure: SecureBanks, principal: Principal, query: str) -> None:
    answers = secure.search(principal, query, max_results=3)
    print(f"\n  {principal.name} ({', '.join(sorted(principal.roles))}) "
          f">>> {query!r}")
    if not answers:
        print("    (no answers — policy filtered everything)")
        return
    for answer in answers:
        print(f"    [{answer.relevance:.3f}]")
        for line in answer.render().splitlines():
            print(f"      {line}")


def main() -> None:
    database = build_hospital()
    secure = SecureBanks(database, build_policies())

    clinician = Principal.with_roles("dr-house", "clinician")
    front_desk = Principal.with_roles("sam", "front-desk")
    nurse = Principal.with_roles("nina", "east-ward")

    print("=== same queries, three principals ===")
    # The clinician finds the patient by diagnosis; the front desk
    # cannot — the diagnosis column is nulled in their view.
    show(secure, clinician, "lupus")
    show(secure, front_desk, "lupus")

    # The nurse sees east-ward patients only; Mary (west) is invisible,
    # even through her visit tuple.
    show(secure, clinician, "mary antibiotics")
    show(secure, nurse, "mary antibiotics")
    show(secure, nurse, "house followup")

    print("\n=== per-principal views ===")
    for principal in (clinician, front_desk, nurse):
        view = secure.view_for(principal)
        rows = {t.schema.name: len(t) for t in view.tables()}
        print(f"  {principal.name:<10} sees {rows}")

    print("\n=== audit trail ===")
    for record in secure.audit.records():
        print(
            f"  {record.principal:<10} {record.query!r:<24} "
            f"-> {record.answer_count} answer(s)"
        )


if __name__ == "__main__":
    main()
