"""Docs staleness gate: symbols must import, links must resolve.

Documentation rots in two specific, mechanically checkable ways, and
this script fails CI on both:

* **stale symbol references** — every dotted ``repro.*`` name a
  document mentions (``repro.store.wal``,
  ``repro.store.wal.WalWriter``, ``repro.serve.engine.QueryEngine.submit``,
  ...) must actually resolve: the longest importable module prefix is
  imported and the remaining attributes are walked.  Renaming or
  deleting a module/class/function without updating the docs fails
  here.
* **dead relative links** — every markdown link target that is not an
  absolute URL or a pure fragment must exist on disk, relative to the
  document (fragments are stripped; ``#section`` anchors themselves
  are not verified).

Usage::

    python tools/check_docs.py docs/*.md README.md ROADMAP.md

Exit status 0 when clean, 1 with one line per violation.
"""

from __future__ import annotations

import argparse
import importlib
import re
import sys
from pathlib import Path
from typing import Iterable, List, Tuple

#: Dotted repro.* names: at least one dot, segments are identifiers.
_SYMBOL = re.compile(r"\brepro(?:\.[A-Za-z_][A-Za-z0-9_]*)+")

#: Markdown inline links: [text](target).  Images share the syntax.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: Link schemes that are not filesystem paths.
_EXTERNAL = ("http://", "https://", "mailto:")


def _ensure_importable() -> None:
    """Put the repo's ``src`` on the path, wherever we're run from."""
    src = Path(__file__).resolve().parents[1] / "src"
    if src.is_dir() and str(src) not in sys.path:
        sys.path.insert(0, str(src))


def extract_symbols(text: str) -> List[str]:
    """Every distinct ``repro.*`` dotted name, with trailing
    sentence punctuation already excluded by the regex."""
    return sorted(set(_SYMBOL.findall(text)))


def resolve_symbol(dotted: str) -> Tuple[bool, str]:
    """Import the longest module prefix, then walk attributes."""
    parts = dotted.split(".")
    module = None
    consumed = 0
    for end in range(len(parts), 0, -1):
        candidate = ".".join(parts[:end])
        try:
            module = importlib.import_module(candidate)
            consumed = end
            break
        except ImportError:
            continue
        except Exception as error:  # pragma: no cover - import crash
            return False, f"importing {candidate} raised {error!r}"
    if module is None:
        return False, "no importable module prefix"
    target = module
    for attribute in parts[consumed:]:
        try:
            target = getattr(target, attribute)
        except AttributeError:
            return (
                False,
                f"{'.'.join(parts[:consumed])} has no attribute "
                f"{attribute!r}",
            )
    return True, ""


def extract_links(text: str) -> List[str]:
    return _LINK.findall(text)


def check_document(path: Path) -> List[str]:
    """Every violation in one document, as ``file: message`` lines."""
    failures: List[str] = []
    text = path.read_text(encoding="utf-8")
    for dotted in extract_symbols(text):
        ok, why = resolve_symbol(dotted)
        if not ok:
            failures.append(f"{path}: stale symbol {dotted} ({why})")
    for target in extract_links(text):
        if target.startswith(_EXTERNAL) or target.startswith("#"):
            continue
        relative = target.split("#", 1)[0]
        if not relative:
            continue
        resolved = (path.parent / relative).resolve()
        if not resolved.exists():
            failures.append(f"{path}: dead link {target}")
    return failures


def main(argv: Iterable[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("documents", nargs="+", type=Path)
    args = parser.parse_args(argv)
    _ensure_importable()
    failures: List[str] = []
    checked_symbols = 0
    checked_links = 0
    for document in args.documents:
        if not document.exists():
            failures.append(f"{document}: document does not exist")
            continue
        text = document.read_text(encoding="utf-8")
        checked_symbols += len(extract_symbols(text))
        checked_links += len(extract_links(text))
        failures.extend(check_document(document))
    if failures:
        print("documentation is stale:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(
        f"docs clean: {len(args.documents)} document(s), "
        f"{checked_symbols} symbol reference(s) import, "
        f"{checked_links} link(s) checked"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
