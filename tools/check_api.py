"""Public-API surface gate: names must neither vanish nor leak.

The intended public surface of the serving stack — the ``__all__``
exports of ``repro.cluster``, ``repro.ops``, ``repro.serve``,
``repro.shard``, ``repro.store`` and friends — is snapshotted below.  CI fails when:

* a **public name disappears** — it is in the snapshot but missing
  from the module's ``__all__`` (or no longer resolves): a breaking
  change shipped without the deliberate snapshot edit that documents
  it;
* a **private name leaks** — ``__all__`` contains a name the snapshot
  does not (new surface must be added here on purpose, in the same
  commit), an underscore-prefixed name, or a name that does not
  actually exist on the module;
* a **public-looking definition is undeclared** — a class or function
  living in the package namespace, defined under ``repro`` and not
  underscore-prefixed, is absent from ``__all__`` (exports happen on
  purpose or not at all).

Growing the API is one edit in two places (the ``__init__.py`` and
this snapshot), which is exactly the point: the diff says "this PR
changes the public surface".

Usage::

    python tools/check_api.py

Exit status 0 when clean, 1 with one line per violation.
"""

from __future__ import annotations

import importlib
import sys
import types
from pathlib import Path
from typing import Dict, List, Tuple

#: The intended public surface, module by module.  Edit deliberately.
PUBLIC_API: Dict[str, Tuple[str, ...]] = {
    "repro.cluster": (
        "BALANCE_POLICIES",
        "CONSISTENCY_LEVELS",
        "Cluster",
        "ClusterSpec",
        "QueryRequest",
        "QueryResult",
        "ReplicaAnswer",
        "ReplicaSet",
        "ReplicaSetBenchReport",
        "TOPOLOGIES",
        "run_replicaset_benchmark",
    ),
    "repro.net": (
        "BanksClient",
        "HttpServer",
        "NetBenchReport",
        "NetConfig",
        "RateLimiter",
        "RemoteReplica",
        "TokenAuth",
        "WIRE_VERSION",
        "WireQuery",
        "decode_request",
        "encode_answer",
        "encode_result",
        "run_net_benchmark",
        "serve_http",
        "sse_event",
        "tree_from_wire",
        "tree_to_wire",
    ),
    "repro.obs": (
        "EventLog",
        "Observability",
        "SearchProfile",
        "Span",
        "Trace",
        "TraceRecord",
        "TraceStore",
        "parse_sample",
        "render_trace_tree",
        "span_tree",
    ),
    "repro.ops": (
        "CHECKPOINT_STEPS",
        "CheckpointManager",
        "CheckpointRecord",
        "FaultInjected",
        "FaultInjector",
        "OpsBenchReport",
        "REBALANCE_STEPS",
        "RebalanceMove",
        "RebalancePlan",
        "drain_plan",
        "plan_rebalance",
        "run_ops_benchmark",
    ),
    "repro.ingest": (
        "CsvSource",
        "GeneratorSource",
        "INGEST_STEPS",
        "IngestBenchReport",
        "IngestJob",
        "IngestPipeline",
        "JOB_STATES",
        "JobRegistry",
        "JsonLinesSource",
        "RouterTarget",
        "Source",
        "StoreTarget",
        "dump_jsonl",
        "open_source",
        "run_ingest_benchmark",
    ),
    "repro.graph.csr": (
        "CSRDijkstra",
        "CSRGraph",
        "CSROverlayGraph",
        "dijkstra_for",
        "freeze_graph",
    ),
    "repro.serve": (
        "EngineConfig",
        "Histogram",
        "MetricsRegistry",
        "QueryEngine",
        "QueryOutcome",
        "SingleFlight",
        "Snapshot",
        "SnapshotStore",
        "WorkerPool",
        "supports_delta",
    ),
    "repro.shard": (
        "CutEdge",
        "GraphPartitioner",
        "Partition",
        "ProcessShardWorker",
        "ProcessWorkerProxy",
        "ShardAnswer",
        "ShardRouter",
        "ShardSearcher",
        "fork_available",
        "graphs_equal",
        "hash_strategy",
        "round_robin_strategy",
        "stats_of",
        "stitch_graph",
        "table_strategy",
    ),
    "repro.store": (
        "Delta",
        "DeltaLog",
        "Epoch",
        "ReplicaFollower",
        "VersionedGraph",
        "WalReader",
        "WalWriter",
        "apply_graph_delta",
        "checkpoint_floor",
        "derive_delete",
        "derive_insert",
        "derive_insert_dict",
        "derive_update",
        "fork_graph",
        "replay_delta",
    ),
}


def _ensure_importable() -> None:
    """Put the repo's ``src`` on the path, wherever we're run from."""
    src = Path(__file__).resolve().parents[1] / "src"
    if src.is_dir() and str(src) not in sys.path:
        sys.path.insert(0, str(src))


def check_module(name: str, expected: Tuple[str, ...]) -> List[str]:
    """Every surface violation in one module, as messages."""
    problems: List[str] = []
    try:
        module = importlib.import_module(name)
    except Exception as error:  # pragma: no cover - import crash
        return [f"{name}: import failed ({type(error).__name__}: {error})"]
    declared = getattr(module, "__all__", None)
    if declared is None:
        return [f"{name}: has no __all__ (the public surface is undeclared)"]
    declared_set = set(declared)

    for public in expected:
        if public not in declared_set:
            problems.append(
                f"{name}: public name {public!r} disappeared from __all__ "
                "(breaking change — update tools/check_api.py deliberately "
                "if intended)"
            )
        elif not hasattr(module, public):
            problems.append(
                f"{name}: __all__ exports {public!r} but the module does "
                "not define it"
            )
    for exported in sorted(declared_set - set(expected)):
        problems.append(
            f"{name}: {exported!r} leaked into __all__ without a "
            "tools/check_api.py snapshot update"
        )
    for exported in sorted(declared_set):
        if exported.startswith("_"):
            problems.append(
                f"{name}: private name {exported!r} is exported by __all__"
            )
        elif not hasattr(module, exported):
            problems.append(
                f"{name}: __all__ exports {exported!r} but the module does "
                "not define it"
            )

    # Public-looking definitions must be declared: a class/function in
    # the package namespace, defined under repro, not underscore-
    # prefixed, either rides __all__ or gets renamed/underscored.
    for attribute, value in vars(module).items():
        if attribute.startswith("_") or attribute in declared_set:
            continue
        if isinstance(value, types.ModuleType):
            continue  # submodules are navigation, not surface
        defined_in = getattr(value, "__module__", "")
        if isinstance(defined_in, str) and defined_in.startswith("repro"):
            if isinstance(value, type) or callable(value):
                problems.append(
                    f"{name}: {attribute!r} is public-looking "
                    f"(defined in {defined_in}) but not in __all__"
                )
    return problems


def main(argv=None) -> int:
    _ensure_importable()
    failures: List[str] = []
    for module_name, expected in sorted(PUBLIC_API.items()):
        failures.extend(check_module(module_name, expected))
    if failures:
        print("public API surface violations:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    total = sum(len(names) for names in PUBLIC_API.values())
    print(
        f"public API surface intact: {total} names across "
        f"{len(PUBLIC_API)} modules"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
