"""Scatter-gather router tests: parity, cross-shard answers, metrics."""

from __future__ import annotations

import pytest

from repro.errors import ShardError
from repro.shard import ShardRouter

#: Multi-term queries from the benchmark battery (strict-parity safe:
#: no exact-score tie straddles the top-5 boundary on the default
#: bibliography dataset — verified by benchmarks/bench_shard.py over
#: the full battery).
PARITY_QUERIES = (
    "soumen sunita",
    "query optimization",
    "index concurrency",
    "sunita mining",
)


def _signature(answers):
    ranked = sorted(
        answers, key=lambda a: (-a.relevance, repr(a.tree.root))
    )
    return [(a.tree.root, round(a.relevance, 9)) for a in ranked]


@pytest.fixture(scope="module")
def biblio_router(bibliography_session):
    database, _anecdotes = bibliography_session
    with ShardRouter(database, shards=4, backend="thread") as router:
        yield router


class TestParity:
    def test_top5_matches_single_engine(
        self, biblio_router, biblio_banks_session
    ):
        for query in PARITY_QUERIES:
            sharded = _signature(biblio_router.search(query, max_results=5))
            single = _signature(
                biblio_banks_session.search(query, max_results=5)
            )
            assert sharded == single, query

    def test_single_shard_router_matches_single_engine(
        self, bibliography_session, biblio_banks_session
    ):
        database, _ = bibliography_session
        with ShardRouter(database, shards=1, backend="thread") as router:
            query = PARITY_QUERIES[0]
            assert _signature(router.search(query, max_results=5)) == (
                _signature(biblio_banks_session.search(query, max_results=5))
            )

    def test_resolution_union_matches_unsharded(
        self, biblio_router, biblio_banks_session
    ):
        for query in PARITY_QUERIES:
            assert biblio_router.resolve(query) == (
                biblio_banks_session.resolve(query)
            )

    def test_answers_root_in_their_own_shard(self, biblio_router):
        partition = biblio_router.partition
        for answer in biblio_router.search("soumen sunita", max_results=5):
            assert partition.shard_of(answer.root) == answer.root_shard


class TestCrossShard:
    def test_planted_cross_shard_answer_scores_identically(self, figure1_db):
        """An answer tree spanning shards must surface in the global
        top-k with the same score the unsharded engine gives it."""
        from repro import BANKS

        single = BANKS(figure1_db).search("soumen sunita", max_results=5)
        assert single, "the planted Fig. 1 answer must exist unsharded"
        reference = {
            a.tree.undirected_key(): a.relevance for a in single
        }

        by_table = {"author": 0, "paper": 1, "writes": 2, "cites": 2}
        with ShardRouter(
            figure1_db,
            shards=3,
            strategy=lambda node: by_table[node[0]],
            backend="thread",
        ) as router:
            answers = router.search("soumen sunita", max_results=5)
            assert answers
            best = answers[0]
            # Root (paper), keyword authors and writes rows live on
            # three different shards by construction.
            assert best.is_cross_shard()
            assert len(best.shards()) == 3
            key = best.tree.undirected_key()
            assert key in reference
            assert best.relevance == pytest.approx(
                reference[key], abs=1e-9
            )

    def test_cross_shard_metric_counts(self, biblio_router):
        before = biblio_router.metrics.snapshot()
        biblio_router.search("soumen sunita", max_results=5)
        after = biblio_router.metrics.snapshot()
        assert after["queries_total"] == before["queries_total"] + 1
        assert (
            after["cross_shard_answers_total"]
            > before["cross_shard_answers_total"]
        )


class TestRouteDispatch:
    @pytest.fixture(scope="class")
    def route_router(self, bibliography_session):
        database, _ = bibliography_session
        with ShardRouter(
            database, shards=4, backend="thread", dispatch="route"
        ) as router:
            yield router

    def test_routed_answers_match_single_engine(
        self, route_router, biblio_banks_session
    ):
        # Relevance-sorted comparison: the stitched graph's adjacency
        # order differs from the original build's, so *emission* order
        # among exact-score ties is not preserved — roots and scores
        # of the top-5 are.
        for query in PARITY_QUERIES:
            routed = _signature(route_router.search(query, max_results=5))
            single = _signature(
                biblio_banks_session.search(query, max_results=5)
            )
            assert routed == single, query

    def test_routing_spreads_queries_across_shards(self, route_router):
        for query in PARITY_QUERIES:
            route_router.search(query, max_results=2)
        snapshot = route_router.metrics.snapshot()
        used = [
            shard_id
            for shard_id in range(4)
            if snapshot[f"shard{shard_id}_searches_total"] > 0
        ]
        assert len(used) >= 2  # hash placement, not one hot worker

    def test_repeat_queries_keep_shard_affinity(self, route_router):
        before = route_router.metrics.snapshot()
        for _ in range(3):
            route_router.search(PARITY_QUERIES[0], max_results=2)
        after = route_router.metrics.snapshot()
        touched = [
            shard_id
            for shard_id in range(4)
            if after[f"shard{shard_id}_searches_total"]
            > before[f"shard{shard_id}_searches_total"]
        ]
        assert len(touched) == 1

    def test_rejects_unknown_dispatch(self, figure1_db):
        with pytest.raises(ShardError):
            ShardRouter(figure1_db, shards=2, dispatch="broadcast")


class TestRouterMechanics:
    def test_per_shard_metrics_registered(self, biblio_router):
        snapshot = biblio_router.metrics.snapshot()
        for shard_id in range(4):
            assert f"shard{shard_id}_searches_total" in snapshot
            assert snapshot[f"shard{shard_id}_nodes"] > 0
        assert snapshot["shards"] == 4
        assert snapshot["cut_edges"] == len(
            biblio_router.partition.cut_edges
        )

    def test_describe_reports_partition_facts(self, biblio_router):
        info = biblio_router.describe()
        assert info["shards"] == 4
        assert info["strategy"] == "hash"
        assert sum(info["shard_nodes"]) == info["nodes"]
        assert 0.0 < info["cut_fraction"] < 1.0

    def test_answer_rendering_labels_nodes(self, biblio_router):
        answer = biblio_router.search("soumen sunita", max_results=1)[0]
        rendered = answer.render()
        assert "paper:" in rendered or "author:" in rendered

    def test_rejects_bad_configuration(self, figure1_db):
        with pytest.raises(ShardError):
            ShardRouter(figure1_db, shards=2, backend="carrier-pigeon")
        with pytest.raises(ShardError):
            ShardRouter(figure1_db, shards=2, overfetch=-1)

    def test_stopped_router_rejects_searches(self, figure1_db):
        router = ShardRouter(figure1_db, shards=2, backend="thread")
        router.stop()
        with pytest.raises(Exception):
            router.search("soumen", max_results=3)
