"""Forked shard-worker tests (skipped where fork is unavailable)."""

from __future__ import annotations

import pytest

from repro.errors import ShardError
from repro.shard import ShardRouter, fork_available

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="platform lacks the fork start method"
)


@pytest.fixture(scope="module")
def university_db():
    from repro.datasets import generate_university

    database, _ = generate_university()
    return database


def _signature(answers):
    ranked = sorted(
        answers, key=lambda a: (-a.relevance, repr(a.tree.root))
    )
    return [(a.tree.root, round(a.relevance, 9)) for a in ranked]


def test_process_backend_matches_thread_backend(university_db):
    queries = ("alice bob", "seminar rare")
    with ShardRouter(
        university_db, shards=3, backend="thread"
    ) as thread_router:
        expected = {
            q: _signature(thread_router.search(q, max_results=5))
            for q in queries
        }
    with ShardRouter(
        university_db, shards=3, backend="process"
    ) as process_router:
        assert process_router.backend == "process"
        for worker in process_router._workers:
            assert worker.alive
        for q in queries:
            assert _signature(
                process_router.search(q, max_results=5)
            ) == expected[q]


def test_auto_backend_prefers_processes(university_db):
    with ShardRouter(university_db, shards=2, backend="auto") as router:
        assert router.backend == "process"
        assert router.search("alice bob", max_results=3)


def test_dead_worker_raises_shard_error(university_db):
    with ShardRouter(
        university_db, shards=2, backend="process"
    ) as router:
        victim = router._workers[0]
        victim._process.terminate()
        victim._process.join(5)
        with pytest.raises(ShardError):
            router.search("alice bob", max_results=3)


def test_stop_is_idempotent_and_kills_workers(university_db):
    router = ShardRouter(university_db, shards=2, backend="process")
    workers = list(router._workers)
    router.stop()
    router.stop()
    for worker in workers:
        assert not worker.alive
