"""The stitch must reassemble the data graph losslessly."""

from __future__ import annotations

import pytest

from repro.core.model import build_data_graph
from repro.errors import ShardError
from repro.graph.digraph import DiGraph
from repro.shard import GraphPartitioner, graphs_equal, stats_of, stitch_graph


@pytest.fixture(scope="module")
def university_build():
    from repro.datasets import generate_university

    database, _ = generate_university()
    return build_data_graph(database)


@pytest.mark.parametrize("strategy", ["hash", "table", "round_robin"])
@pytest.mark.parametrize("shards", [1, 2, 5])
def test_stitch_reassembles_exactly(university_build, strategy, shards):
    graph, stats = university_build
    partition = GraphPartitioner(shards, strategy=strategy).partition(graph)
    stitched = stitch_graph(
        partition.induced_subgraphs(graph), partition.cut_links()
    )
    assert graphs_equal(stitched, graph)
    assert stats_of(stitched) == stats


def test_stitch_without_cut_links_is_lossy(university_build):
    graph, _stats = university_build
    partition = GraphPartitioner(3).partition(graph)
    assert partition.cut_edges  # hash split cuts something
    crippled = stitch_graph(partition.induced_subgraphs(graph), [])
    assert not graphs_equal(crippled, graph)
    assert crippled.num_edges == graph.num_edges - len(partition.cut_edges)


def test_overlapping_subgraphs_rejected(university_build):
    graph, _stats = university_build
    partition = GraphPartitioner(2).partition(graph)
    subgraphs = partition.induced_subgraphs(graph)
    with pytest.raises(ShardError):
        stitch_graph([subgraphs[0], subgraphs[0]], [])


def test_dangling_cut_link_rejected(university_build):
    graph, _stats = university_build
    partition = GraphPartitioner(2).partition(graph)
    subgraphs = partition.induced_subgraphs(graph)
    from repro.federate.links import TupleLink

    bogus = TupleLink(
        source_db="shard0",
        source=("ghost", 1),
        target_db="shard1",
        target=("ghost", 2),
        weight=1.0,
    )
    with pytest.raises(ShardError):
        stitch_graph(subgraphs, [bogus])


def test_duplicate_cut_links_merge_by_min():
    graph = DiGraph()
    graph.add_node(("a", 0), weight=1.0)
    graph.add_node(("b", 0), weight=1.0)
    graph.add_edge(("a", 0), ("b", 0), 3.0)
    partition = GraphPartitioner(
        2, strategy=lambda node: 0 if node[0] == "a" else 1
    ).partition(graph)
    links = partition.cut_links() + partition.cut_links()
    stitched = stitch_graph(partition.induced_subgraphs(graph), links)
    assert stitched.edge_weight(("a", 0), ("b", 0)) == 3.0
