"""Tests for the shard write path: delta routing, shard-local
republication, cut-edge maintenance, and parity with the single
engine after mutations."""

from __future__ import annotations

import pytest

from repro.core.incremental import IncrementalBANKS
from repro.errors import IntegrityError
from repro.relational import Database, execute_script
from repro.serve.snapshot import SnapshotStore
from repro.shard.partition import GraphPartitioner
from repro.shard.process import fork_available
from repro.shard.router import ShardRouter

SCHEMA = """
CREATE TABLE author (aid TEXT PRIMARY KEY, name TEXT NOT NULL);
CREATE TABLE paper (pid TEXT PRIMARY KEY, title TEXT NOT NULL);
CREATE TABLE writes (
    aid TEXT NOT NULL REFERENCES author(aid),
    pid TEXT NOT NULL REFERENCES paper(pid)
);
INSERT INTO author VALUES ('a1', 'grace hopper');
INSERT INTO author VALUES ('a2', 'barbara liskov');
INSERT INTO paper VALUES ('p1', 'compiling arithmetic expressions');
INSERT INTO paper VALUES ('p2', 'abstraction mechanisms');
INSERT INTO writes VALUES ('a1', 'p1');
INSERT INTO writes VALUES ('a2', 'p2');
"""


def make_db(name: str = "shardmut") -> Database:
    database = Database(name)
    execute_script(database, SCHEMA)
    return database


def signatures(answers):
    return [(a.tree.root, round(a.relevance, 9)) for a in answers]


MUTATIONS = (
    ("insert", "paper", ["p3", "dataflow architectures"]),
    ("insert", "writes", ["a1", "p3"]),
    ("insert", "author", ["a3", "frances allen"]),
    ("insert", "writes", ["a3", "p3"]),
    ("update", ("paper", 0), {"title": "optimizing compilers"}),
    ("delete", ("writes", 1), None),
)


def drive(target):
    """Apply the shared mutation battery to a router or a facade."""
    for kind, first, second in MUTATIONS:
        if kind == "insert":
            target.insert(first, second)
        elif kind == "update":
            target.update(first, second)
        else:
            target.delete(first)


QUERIES = (
    "dataflow",
    "frances dataflow",
    "optimizing",
    "grace",
    "abstraction",
    "barbara abstraction",
)


class TestRoutedMutations:
    def test_search_parity_after_mutations_thread_backend(self):
        router = ShardRouter(make_db(), shards=3, backend="thread")
        facade = IncrementalBANKS(make_db())
        with router:
            drive(router)
            drive(facade)
            for query in QUERIES:
                routed = signatures(router.search(query, max_results=5))
                single = signatures(facade.search(query, max_results=5))
                assert routed == single, query

    @pytest.mark.skipif(not fork_available(), reason="needs fork")
    def test_search_parity_after_mutations_process_backend(self):
        router = ShardRouter(make_db(), shards=2, backend="process")
        facade = IncrementalBANKS(make_db())
        with router:
            drive(router)
            drive(facade)
            for query in QUERIES:
                routed = signatures(router.search(query, max_results=5))
                single = signatures(facade.search(query, max_results=5))
                assert routed == single, query

    @pytest.mark.skipif(not fork_available(), reason="needs fork")
    def test_route_dispatch_serves_mutations_from_workers(self):
        """Route dispatch answers entirely inside one forked worker —
        the strongest evidence the delta really reached the workers'
        private replicas (database, full index and graph)."""
        router = ShardRouter(
            make_db(), shards=2, backend="process", dispatch="route"
        )
        facade = IncrementalBANKS(make_db())
        with router:
            drive(router)
            drive(facade)
            for query in QUERIES:
                routed = signatures(router.search(query, max_results=5))
                single = signatures(facade.search(query, max_results=5))
                assert routed == single, query

    def test_only_owning_shard_engine_republished(self):
        router = ShardRouter(make_db(), shards=3, backend="thread")
        with router:
            before = [e.snapshots.version for e in router.engines]
            rid = router.insert("paper", ["p9", "garbage collection"])
            owner = router.partition.shard_of(rid)
            after = [e.snapshots.version for e in router.engines]
            for shard_id, (was, now) in enumerate(zip(before, after)):
                if shard_id == owner:
                    assert now == was + 1
                else:
                    assert now == was
            assert router.epoch == 1
            assert router.describe()["epoch"] == 1

    def test_partition_bookkeeping_matches_fresh_partition(self):
        """After routed mutations, the live partition's assignment and
        cut-edge records equal a from-scratch partition of the mutated
        graph — the regression net for the cut-link maintenance."""
        router = ShardRouter(make_db(), shards=3, backend="thread")
        with router:
            drive(router)
            fresh = GraphPartitioner(3, "hash").partition(router.graph)
            live = router.partition
            assert live._assignment == fresh._assignment
            assert live.shard_nodes == fresh.shard_nodes
            live_cut = {
                (e.source, e.target, e.weight, e.source_shard, e.target_shard)
                for e in live.cut_edges
            }
            fresh_cut = {
                (e.source, e.target, e.weight, e.source_shard, e.target_shard)
                for e in fresh.cut_edges
            }
            assert live_cut == fresh_cut

    def test_ownership_follows_inserts_and_deletes(self):
        router = ShardRouter(make_db(), shards=3, backend="thread")
        with router:
            rid = router.insert("paper", ["p7", "speculative execution"])
            owner = router.partition.shard_of(rid)
            assert rid in router._searchers[owner].owned_nodes
            assert rid in router.partition.shard_nodes[owner]
            router.delete(rid)
            assert rid not in router._searchers[owner].owned_nodes
            with pytest.raises(Exception):
                router.partition.shard_of(rid)

    def test_referenced_delete_refused_before_any_shard_state_changes(self):
        router = ShardRouter(make_db(), shards=2, backend="thread")
        with router:
            epoch_before = router.epoch
            with pytest.raises(IntegrityError):
                router.delete(("paper", 0))  # referenced by writes
            assert router.epoch == epoch_before
            assert router.search("compiling")  # still searchable

    def test_apply_replays_a_snapshot_store_delta_log(self):
        """End-to-end marriage of repro.serve and repro.shard: mutate
        through a delta-mode SnapshotStore, feed the published epochs
        to ShardRouter.apply_epochs, and get identical answers."""
        store = SnapshotStore(IncrementalBANKS(make_db()), copy_mode="delta")
        seen = store.log.pin()
        store.mutate(lambda f: f.insert("paper", ["p3", "dataflow machines"]))
        store.mutate_batch(
            [
                lambda f: f.insert("author", ["a3", "jack dennis"]),
                lambda f: f.insert("writes", ["a3", "p3"]),
                lambda f: f.update(("paper", 1), {"title": "clu abstraction"}),
            ]
        )
        router = ShardRouter(make_db(), shards=3, backend="thread")
        with router:
            applied = router.apply_epochs(store.log.entries_since(seen))
            store.log.release(seen)
            assert applied == 4
            assert router.epoch == 4
            facade = store.current().facade
            for query in ("dataflow", "jack dataflow", "clu"):
                assert signatures(
                    router.search(query, max_results=5)
                ) == signatures(facade.search(query, max_results=5)), query

    def test_concurrent_searches_and_mutations_thread_backend(self):
        """The router's search gate: thread-backed searchers share one
        stitched graph, so routed mutations must never overlap an
        in-flight search (dict-changed-during-iteration, half-applied
        deltas).  Hammer both paths concurrently and require zero
        errors plus a consistent end state."""
        import threading

        router = ShardRouter(make_db(), shards=3, backend="thread")
        errors = []
        with router:

            def searcher():
                for _ in range(30):
                    try:
                        router.search("grace", max_results=3)
                        router.search("abstraction", max_results=3)
                    except Exception as error:  # noqa: BLE001 - recorded
                        errors.append(error)
                        return

            def writer():
                for step in range(10):
                    try:
                        rid = router.insert(
                            "paper", [f"cc{step}", f"concurrent study {step}"]
                        )
                        router.update(rid, {"title": f"revised study {step}"})
                        router.delete(rid)
                    except Exception as error:  # noqa: BLE001 - recorded
                        errors.append(error)
                        return

            threads = [threading.Thread(target=searcher) for _ in range(3)]
            threads.append(threading.Thread(target=writer))
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert errors == []
            assert router.epoch == 30
            # The partition survived intact: every insert was deleted.
            fresh = GraphPartitioner(3, "hash").partition(router.graph)
            assert router.partition._assignment == fresh._assignment

    def test_insert_with_bad_strategy_fails_before_any_state_change(self):
        """Placement is validated before derivation: a broken strategy
        must not leave the database/index mutated but unrouted."""
        from repro.errors import ShardError

        calls = {"n": 0}

        def strategy(node):
            calls["n"] += 1
            return 99 if node == ("paper", 2) else 0

        router = ShardRouter(
            make_db(), shards=2, strategy=strategy, backend="thread"
        )
        with router:
            papers_before = len(router.database.table("paper"))
            with pytest.raises(ShardError):
                router.insert("paper", ["p-bad", "misplaced row"])
            assert len(router.database.table("paper")) == papers_before
            assert router.full_index.lookup_nodes("misplaced") == set()
            assert router.epoch == 0

    def test_resolve_covers_new_rows_exactly_once(self):
        router = ShardRouter(make_db(), shards=3, backend="thread")
        with router:
            rid = router.insert("paper", ["p8", "tail recursion"])
            node_sets = router.resolve("recursion")
            assert node_sets == [{rid}]
