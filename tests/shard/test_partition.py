"""Tests for the graph partitioner and placement strategies."""

from __future__ import annotations

import pytest

from repro.core.model import build_data_graph
from repro.errors import ShardError
from repro.shard import (
    GraphPartitioner,
    hash_strategy,
    round_robin_strategy,
    table_strategy,
)


@pytest.fixture(scope="module")
def university_graph():
    from repro.datasets import generate_university

    database, _ = generate_university()
    graph, _stats = build_data_graph(database)
    return graph


class TestStrategies:
    def test_hash_strategy_is_deterministic_and_in_range(self):
        place = hash_strategy(4)
        for node in [("paper", 0), ("paper", 1), ("author", 0)]:
            shard = place(node)
            assert 0 <= shard < 4
            assert place(node) == shard  # stable across calls

    def test_hash_strategy_does_not_use_builtin_hash(self):
        # CRC32 of "table:rid" — a fixed value, immune to PYTHONHASHSEED.
        assert hash_strategy(1000)(("paper", 7)) == 508
        assert hash_strategy(1000)(("author", 7)) == 222

    def test_table_strategy_colocates_rows(self):
        place = table_strategy(3)
        shards = {place(("paper", rid)) for rid in range(50)}
        assert len(shards) == 1

    def test_round_robin_stripes_rows(self):
        place = round_robin_strategy(3)
        assert [place(("t", rid)) for rid in range(6)] == [0, 1, 2, 0, 1, 2]


class TestPartitioner:
    def test_partition_covers_all_nodes_disjointly(self, university_graph):
        partition = GraphPartitioner(3).partition(university_graph)
        union = set()
        total = 0
        for nodes in partition.shard_nodes:
            total += len(nodes)
            union.update(nodes)
        assert union == set(university_graph.nodes())
        assert total == university_graph.num_nodes  # disjoint

    def test_cut_edges_are_exactly_the_crossing_edges(self, university_graph):
        partition = GraphPartitioner(3).partition(university_graph)
        expected = set()
        for source, target, weight in university_graph.edges():
            if partition.shard_of(source) != partition.shard_of(target):
                expected.add((source, target, weight))
        recorded = {
            (edge.source, edge.target, edge.weight)
            for edge in partition.cut_edges
        }
        assert recorded == expected
        for edge in partition.cut_edges:
            assert partition.shard_of(edge.source) == edge.source_shard
            assert partition.shard_of(edge.target) == edge.target_shard
            assert edge.source_shard != edge.target_shard

    def test_cut_links_use_federation_records(self, university_graph):
        partition = GraphPartitioner(2).partition(university_graph)
        links = partition.cut_links()
        assert len(links) == len(partition.cut_edges)
        for link, edge in zip(links, partition.cut_edges):
            assert link.source_db == f"shard{edge.source_shard}"
            assert link.target_db == f"shard{edge.target_shard}"
            assert link.source == edge.source
            assert link.target == edge.target
            assert link.weight == edge.weight

    def test_single_shard_has_no_cut_edges(self, university_graph):
        partition = GraphPartitioner(1).partition(university_graph)
        assert partition.cut_edges == []
        assert partition.shard_nodes[0] == frozenset(university_graph.nodes())

    def test_balance_and_cut_fraction(self, university_graph):
        partition = GraphPartitioner(4).partition(university_graph)
        assert partition.balance() >= 1.0
        assert 0.0 < partition.cut_fraction(university_graph) < 1.0

    def test_shard_of_unknown_node_raises(self, university_graph):
        partition = GraphPartitioner(2).partition(university_graph)
        with pytest.raises(ShardError):
            partition.shard_of(("nope", 999))

    def test_custom_strategy_callable(self, university_graph):
        partition = GraphPartitioner(
            2, strategy=lambda node: 0
        ).partition(university_graph)
        assert partition.shard_nodes[1] == frozenset()
        assert partition.cut_edges == []

    def test_rejects_bad_configuration(self, university_graph):
        with pytest.raises(ShardError):
            GraphPartitioner(0)
        with pytest.raises(ShardError):
            GraphPartitioner(2, strategy="sorcery")
        out_of_range = GraphPartitioner(2, strategy=lambda node: 7)
        with pytest.raises(ShardError):
            out_of_range.partition(university_graph)
