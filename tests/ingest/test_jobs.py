"""Job registry: durable cursors, atomic writes, state discipline."""

from __future__ import annotations

import json
import os

import pytest

from repro.errors import IngestError
from repro.ingest import JOB_STATES, IngestJob, JobRegistry


def make_job(job_id="j1", **kwargs):
    defaults = dict(source="synth:10:7", database="synth:0", chunk_size=5)
    defaults.update(kwargs)
    return IngestJob(job_id, **defaults)


def test_create_save_load_roundtrip(tmp_path):
    registry = JobRegistry(str(tmp_path), clock=lambda: 123.5)
    job = registry.create(make_job())
    assert job.created_at == 123.5
    job.state = "running"
    job.chunks_committed = 3
    job.records_committed = 15
    registry.save(job)
    loaded = registry.load("j1")
    assert loaded == job
    assert loaded.updated_at == 123.5


def test_create_refuses_existing_id(tmp_path):
    registry = JobRegistry(str(tmp_path))
    registry.create(make_job())
    with pytest.raises(IngestError, match="already exists"):
        registry.create(make_job())


def test_load_unknown_job(tmp_path):
    with pytest.raises(IngestError, match="no job"):
        JobRegistry(str(tmp_path)).load("ghost")
    assert JobRegistry(str(tmp_path)).try_load("ghost") is None


def test_save_is_atomic_no_tmp_leftover(tmp_path):
    registry = JobRegistry(str(tmp_path))
    registry.create(make_job())
    assert os.listdir(str(tmp_path)) == ["j1.json"]


def test_jobs_listing_ignores_tmp_orphans(tmp_path):
    registry = JobRegistry(str(tmp_path))
    registry.create(make_job("b-job"))
    registry.create(make_job("a-job"))
    # A crash mid-save leaves a .tmp orphan; the listing must not care.
    with open(os.path.join(str(tmp_path), "torn.json.tmp"), "w") as fh:
        fh.write('{"half')
    ids = [job.job_id for job in registry.jobs()]
    assert ids == ["a-job", "b-job"]


def test_corrupt_job_file_is_reported(tmp_path):
    registry = JobRegistry(str(tmp_path))
    with open(registry.path_of("bad"), "w") as fh:
        fh.write("{not json")
    with pytest.raises(IngestError, match="unreadable"):
        registry.load("bad")


def test_unknown_fields_rejected(tmp_path):
    registry = JobRegistry(str(tmp_path))
    with open(registry.path_of("future"), "w") as fh:
        json.dump({"job_id": "future", "surprise": 1}, fh)
    with pytest.raises(IngestError, match="unknown fields"):
        registry.load("future")


def test_job_validation():
    with pytest.raises(IngestError, match="filesystem-safe"):
        make_job("../escape")
    with pytest.raises(IngestError, match="chunk size"):
        make_job(chunk_size=0)
    with pytest.raises(IngestError, match="unknown job state"):
        make_job(state="zombie")
    assert set(JOB_STATES) == {
        "pending", "running", "paused", "failed", "done",
    }
