"""Batch publish x checkpoint cadence x WAL retention, pinned down.

``SnapshotStore.mutate_batch`` publishes one epoch per batch, so every
downstream epoch-denominated knob counts *chunks* during a bulk
ingest.  These tests pin the three interactions the docstring
promises:

1. ``CheckpointManager(every=E)`` checkpoints every E chunks;
2. a bounded WAL ``retain`` window cannot prune epochs the newest
   checkpoint has not covered (the checkpoint-floor clamp), so a long
   ingest can never starve its own recovery;
3. recovery from the newest checkpoint plus the WAL tail reproduces
   the live ingested state exactly, even with the WAL pruned below
   the checkpoint.
"""

from __future__ import annotations

import os

import pytest

from repro.core.incremental import IncrementalBANKS
from repro.datasets import (
    DEMO_QUERY_SETS,
    synth_bibliography_base,
    synth_bibliography_records,
)
from repro.ingest import (
    GeneratorSource,
    IngestJob,
    IngestPipeline,
    JobRegistry,
    StoreTarget,
)
from repro.ops.checkpoint import CheckpointManager
from repro.serve.snapshot import SnapshotStore
from repro.store.wal import WalReader, WalWriter

N_PAPERS = 70
SEED = 3
CHUNK = 30
EVERY = 4


def make_source():
    return GeneratorSource(
        lambda: synth_bibliography_records(N_PAPERS, seed=SEED),
        name=f"synth:{N_PAPERS}:{SEED}",
    )


def ingest_with_checkpoints(workdir, retain=None):
    wal_dir = os.path.join(workdir, "wal")
    checkpoint_dir = os.path.join(workdir, "checkpoints")
    manager = CheckpointManager(checkpoint_dir, every=EVERY)
    # Tiny segments so each epoch rotates into its own file — the WAL
    # prunes whole segments, so retention is only observable when the
    # ingest spans several of them.
    wal = WalWriter(
        wal_dir,
        segment_bytes=1,
        retain=retain,
        checkpoint_path=checkpoint_dir,
    )
    store = SnapshotStore(
        IncrementalBANKS(synth_bibliography_base(), freeze=False),
        copy_mode="delta",
        wal=wal,
        checkpoints=manager,
    )
    registry = JobRegistry(os.path.join(workdir, "jobs"))
    job = registry.create(
        IngestJob("ckpt", "synth", "synth:0", chunk_size=CHUNK)
    )
    IngestPipeline(registry, StoreTarget(store)).run(job, make_source())
    return store, manager, wal_dir, job


def test_checkpoint_cadence_counts_chunks_not_records(tmp_path):
    store, manager, _wal_dir, job = ingest_with_checkpoints(str(tmp_path))
    # One epoch per chunk; cadence every=E fires every E chunks.
    assert store.epoch == job.chunks_committed
    expected = [
        epoch
        for epoch in range(1, job.chunks_committed + 1)
        if epoch % EVERY == 0
    ]
    kept = sorted(manager.checkpoint_epochs())
    # The manager prunes old checkpoints; whatever is kept must be a
    # suffix of the cadence epochs, ending at the newest one.
    assert kept == expected[-len(kept):]
    assert manager.manifest_epoch() == expected[-1]


def test_retention_clamped_to_checkpoint_floor(tmp_path):
    # retain=2 would keep only 2 epochs; the clamp must keep every
    # epoch after the newest checkpoint so recovery stays possible.
    with pytest.warns(RuntimeWarning, match="clamping"):
        store, manager, wal_dir, _job = ingest_with_checkpoints(
            str(tmp_path), retain=2
        )
    store.wal.close()
    floor = manager.manifest_epoch()
    first_retained = WalReader(wal_dir).first_epoch()
    assert first_retained <= floor + 1
    # And pruning did happen (the clamp bounds it, not disables it).
    assert first_retained > 1


def test_recovery_from_checkpoint_plus_tail_matches_live(tmp_path):
    store, manager, wal_dir, _job = ingest_with_checkpoints(
        str(tmp_path), retain=2
    )
    store.wal.close()
    live = store.current().facade
    recovered = IncrementalBANKS.recover(
        synth_bibliography_base, wal_dir, checkpoints=manager, freeze=False
    )
    assert recovered.applied_epoch == store.epoch
    queries = DEMO_QUERY_SETS["synth_bibliography"][:3]
    for query in queries:
        assert [
            (a.tree.root, round(a.relevance, 9))
            for a in recovered.search(query, max_results=5)
        ] == [
            (a.tree.root, round(a.relevance, 9))
            for a in live.search(query, max_results=5)
        ], query
