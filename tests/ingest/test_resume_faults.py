"""Crash-point proofs: kill at every protocol step, resume, parity.

The discipline of PR 4 (WAL byte-fuzz) and PR 8 (checkpoint/rebalance
step kills), applied to the ingest protocol: a kill is injected at
every named step in :data:`~repro.ingest.pipeline.INGEST_STEPS`, at
an early, middle and late chunk, the "process" state is thrown away,
the facade is rebuilt from the WAL, and the job is resumed from the
registry cursor.  The resumed store must answer every probe query
**exactly** like an uninterrupted ingest of the same stream — a crash
is observationally free.
"""

from __future__ import annotations

import os

import pytest

from repro.core.incremental import IncrementalBANKS
from repro.datasets import (
    DEMO_QUERY_SETS,
    synth_bibliography_base,
    synth_bibliography_records,
)
from repro.ingest import (
    INGEST_STEPS,
    GeneratorSource,
    IngestJob,
    IngestPipeline,
    JobRegistry,
    StoreTarget,
)
from repro.ops.faults import FaultInjected, FaultInjector
from repro.serve.snapshot import SnapshotStore

N_PAPERS = 60
SEED = 5
CHUNK = 40
QUERIES = DEMO_QUERY_SETS["synth_bibliography"][:4]


def make_source():
    return GeneratorSource(
        lambda: synth_bibliography_records(N_PAPERS, seed=SEED),
        name=f"synth:{N_PAPERS}:{SEED}",
    )


def top5(facade):
    return [
        [
            (a.tree.root, round(a.relevance, 9))
            for a in facade.search(query, max_results=5)
        ]
        for query in QUERIES
    ]


@pytest.fixture(scope="module")
def reference():
    """The uninterrupted ingest: answers plus chunk count."""
    store = SnapshotStore(
        IncrementalBANKS(synth_bibliography_base(), freeze=False),
        copy_mode="delta",
    )
    import tempfile

    with tempfile.TemporaryDirectory() as work:
        registry = JobRegistry(work)
        job = registry.create(
            IngestJob("ref", "synth", "synth:0", chunk_size=CHUNK)
        )
        IngestPipeline(registry, StoreTarget(store)).run(job, make_source())
    return top5(store.current().facade), job.chunks_committed, (
        job.records_committed
    )


def crash_recover_resume(tmp_path, step, occurrence):
    """Kill at ``step`` x ``occurrence``; recover + resume; return the
    resumed store's answers and the final job."""
    wal_dir = os.path.join(str(tmp_path), "wal")
    registry = JobRegistry(os.path.join(str(tmp_path), "jobs"))
    store = SnapshotStore(
        IncrementalBANKS(synth_bibliography_base(), freeze=False),
        copy_mode="delta",
        wal=wal_dir,
    )
    job = registry.create(
        IngestJob("killed", "synth", "synth:0", chunk_size=CHUNK)
    )
    faults = FaultInjector().kill_at(step, occurrence=occurrence)
    with pytest.raises(FaultInjected):
        IngestPipeline(registry, StoreTarget(store), faults=faults).run(
            job, make_source()
        )
    store.wal.close()
    del store  # the crash: all in-memory state is gone

    recovered = IncrementalBANKS.recover(
        synth_bibliography_base, wal_dir, freeze=False
    )
    resumed_store = SnapshotStore(recovered, copy_mode="delta", wal=wal_dir)
    resumed = registry.load("killed")
    assert resumed.state == "running"  # the stale claim of a dead process
    IngestPipeline(registry, StoreTarget(resumed_store)).run(
        resumed, make_source(), resume=True
    )
    return top5(resumed_store.current().facade), resumed


@pytest.mark.parametrize("step", INGEST_STEPS[:-1])
@pytest.mark.parametrize("when", ("early", "middle", "late"))
def test_kill_at_every_step_resume_parity(tmp_path, reference, step, when):
    answers, chunks, records = reference
    occurrence = {
        "early": 1,
        "middle": max(1, chunks // 2),
        "late": chunks,  # the final chunk's visit of the step
    }[when]
    resumed_answers, job = crash_recover_resume(tmp_path, step, occurrence)
    assert job.state == "done"
    assert job.records_committed == records
    assert job.chunks_committed == chunks
    assert resumed_answers == answers, (step, when)


def test_kill_at_finish_resume_is_noop(tmp_path, reference):
    """A crash after the job is marked done leaves nothing to redo."""
    answers, chunks, records = reference
    resumed_answers, job = crash_recover_resume_finish(tmp_path)
    assert job.state == "done"
    assert job.records_committed == records
    assert resumed_answers == answers


def crash_recover_resume_finish(tmp_path):
    wal_dir = os.path.join(str(tmp_path), "wal")
    registry = JobRegistry(os.path.join(str(tmp_path), "jobs"))
    store = SnapshotStore(
        IncrementalBANKS(synth_bibliography_base(), freeze=False),
        copy_mode="delta",
        wal=wal_dir,
    )
    job = registry.create(
        IngestJob("killed", "synth", "synth:0", chunk_size=CHUNK)
    )
    faults = FaultInjector().kill_at("ingest.finish")
    with pytest.raises(FaultInjected):
        IngestPipeline(registry, StoreTarget(store), faults=faults).run(
            job, make_source()
        )
    store.wal.close()
    del store

    recovered = IncrementalBANKS.recover(
        synth_bibliography_base, wal_dir, freeze=False
    )
    resumed_store = SnapshotStore(recovered, copy_mode="delta", wal=wal_dir)
    resumed = registry.load("killed")
    assert resumed.state == "done"  # the cursor save beat the crash
    epoch = resumed_store.epoch
    IngestPipeline(registry, StoreTarget(resumed_store)).run(
        resumed, make_source(), resume=True
    )
    assert resumed_store.epoch == epoch  # nothing re-published
    return top5(resumed_store.current().facade), resumed


def test_double_crash_then_resume(tmp_path, reference):
    """Crash, resume, crash the resume, resume again — the cursor
    protocol is idempotent across repeated failures."""
    answers, chunks, records = reference
    wal_dir = os.path.join(str(tmp_path), "wal")
    registry = JobRegistry(os.path.join(str(tmp_path), "jobs"))
    store = SnapshotStore(
        IncrementalBANKS(synth_bibliography_base(), freeze=False),
        copy_mode="delta",
        wal=wal_dir,
    )
    job = registry.create(
        IngestJob("killed", "synth", "synth:0", chunk_size=CHUNK)
    )
    faults = FaultInjector().kill_at("ingest.chunk_commit", occurrence=1)
    with pytest.raises(FaultInjected):
        IngestPipeline(registry, StoreTarget(store), faults=faults).run(
            job, make_source()
        )
    store.wal.close()
    del store

    # First resume crashes too (one chunk later).
    recovered = IncrementalBANKS.recover(
        synth_bibliography_base, wal_dir, freeze=False
    )
    resumed_store = SnapshotStore(recovered, copy_mode="delta", wal=wal_dir)
    resumed = registry.load("killed")
    faults = FaultInjector().kill_at("ingest.cursor_save", occurrence=2)
    with pytest.raises(FaultInjected):
        IngestPipeline(
            registry, StoreTarget(resumed_store), faults=faults
        ).run(resumed, make_source(), resume=True)
    resumed_store.wal.close()
    del resumed_store

    recovered = IncrementalBANKS.recover(
        synth_bibliography_base, wal_dir, freeze=False
    )
    final_store = SnapshotStore(recovered, copy_mode="delta", wal=wal_dir)
    final = registry.load("killed")
    IngestPipeline(registry, StoreTarget(final_store)).run(
        final, make_source(), resume=True
    )
    assert final.state == "done"
    assert final.records_committed == records
    assert top5(final_store.current().facade) == answers
