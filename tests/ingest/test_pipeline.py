"""Pipeline behaviour: parity, metrics, tracing, retries, failure."""

from __future__ import annotations

import pytest

from repro.core.incremental import IncrementalBANKS
from repro.datasets import (
    DEMO_QUERY_SETS,
    synth_bibliography,
    synth_bibliography_base,
    synth_bibliography_records,
)
from repro.errors import IngestError
from repro.ingest import (
    GeneratorSource,
    IngestJob,
    IngestPipeline,
    JobRegistry,
    RouterTarget,
    StoreTarget,
)
from repro.obs import Trace
from repro.serve.metrics import MetricsRegistry
from repro.serve.snapshot import SnapshotStore

N_PAPERS = 80
SEED = 11
QUERIES = DEMO_QUERY_SETS["synth_bibliography"]


def make_source(n_papers=N_PAPERS, seed=SEED):
    return GeneratorSource(
        lambda: synth_bibliography_records(n_papers, seed=seed),
        name=f"synth:{n_papers}:{seed}",
    )


def make_store():
    return SnapshotStore(
        IncrementalBANKS(synth_bibliography_base(), freeze=False),
        copy_mode="delta",
    )


def make_job(registry, job_id="job", chunk_size=37):
    return registry.create(
        IngestJob(job_id, "synth", "synth:0", chunk_size=chunk_size)
    )


def top5(facade, queries=QUERIES):
    return [
        [
            (a.tree.root, round(a.relevance, 9))
            for a in facade.search(query, max_results=5)
        ]
        for query in queries
    ]


def test_ingest_matches_direct_build(tmp_path):
    store = make_store()
    registry = JobRegistry(str(tmp_path))
    job = make_job(registry)
    IngestPipeline(registry, StoreTarget(store)).run(job, make_source())

    direct_db, n_records = synth_bibliography(N_PAPERS, seed=SEED)
    assert job.state == "done"
    assert job.records_committed == n_records
    # One epoch per chunk, cursor and epoch spine in lockstep.
    assert store.epoch == job.chunks_committed
    assert job.chunks_committed == -(-n_records // job.chunk_size)

    ingested = store.current().facade
    direct = IncrementalBANKS(direct_db, freeze=False)
    assert top5(ingested) == top5(direct)
    for table in ("author", "paper", "writes", "cites"):
        assert len(ingested.database.table(table)) == len(
            direct_db.table(table)
        )


def test_metrics_and_trace_published(tmp_path):
    store = make_store()
    registry = JobRegistry(str(tmp_path))
    job = make_job(registry, chunk_size=50)
    metrics = MetricsRegistry()
    trace = Trace()
    IngestPipeline(
        registry, StoreTarget(store), metrics=metrics, trace=trace
    ).run(job, make_source())

    snap = metrics.snapshot()
    assert snap["ingest_records_total"] == job.records_committed
    assert snap["ingest_chunks_total"] == job.chunks_committed
    # done = index 4 in JOB_STATES, labelled per job.
    assert snap['ingest_job_state{job="job"}'] == 4.0

    spans = trace.export()
    names = [span["name"] for span in spans]
    assert names.count("ingest.run") == 1
    assert names.count("ingest.chunk") == job.chunks_committed
    root = next(s for s in spans if s["name"] == "ingest.run")
    chunk_spans = [s for s in spans if s["name"] == "ingest.chunk"]
    assert all(s["parent_id"] == root["span_id"] for s in chunk_spans)
    assert sum(s["attrs"]["records"] for s in chunk_spans) == (
        job.records_committed
    )


class FlakyTarget(StoreTarget):
    """Fail the Nth commit a fixed number of times, then recover."""

    def __init__(self, store, fail_chunk, failures):
        super().__init__(store)
        self.fail_chunk = fail_chunk
        self.failures = failures
        self.commits = 0

    def commit(self, chunk):
        self.commits += 1
        if self.commits >= self.fail_chunk and self.failures > 0:
            self.failures -= 1
            raise OSError("disk hiccup")
        super().commit(chunk)


def test_transient_failures_retry_with_backoff(tmp_path):
    store = make_store()
    registry = JobRegistry(str(tmp_path))
    job = make_job(registry, chunk_size=100)
    target = FlakyTarget(store, fail_chunk=2, failures=2)
    sleeps = []
    metrics = MetricsRegistry()
    pipeline = IngestPipeline(
        registry,
        target,
        metrics=metrics,
        max_retries=3,
        backoff_base=0.01,
        sleeper=sleeps.append,
    )
    pipeline.run(job, make_source())
    assert job.state == "done"
    assert job.retries == 2
    # Exponential: base, then double.
    assert sleeps == [0.01, 0.02]
    assert metrics.snapshot()["ingest_retries_total"] == 2


def test_retry_budget_exhausted_marks_failed(tmp_path):
    store = make_store()
    registry = JobRegistry(str(tmp_path))
    job = make_job(registry, chunk_size=100)
    target = FlakyTarget(store, fail_chunk=2, failures=99)
    sleeps = []
    pipeline = IngestPipeline(
        registry, target, max_retries=2, sleeper=sleeps.append
    )
    with pytest.raises(IngestError, match="after 2 retries"):
        pipeline.run(job, make_source())
    saved = registry.load("job")
    assert saved.state == "failed"
    assert "disk hiccup" in saved.error
    # The failed chunk was rolled back: only chunk 1 is published.
    assert store.epoch == 1
    assert saved.chunks_committed == 1


def test_resume_after_failure_completes(tmp_path):
    store = make_store()
    registry = JobRegistry(str(tmp_path))
    job = make_job(registry, chunk_size=100)
    flaky = FlakyTarget(store, fail_chunk=2, failures=99)
    with pytest.raises(IngestError):
        IngestPipeline(registry, flaky, max_retries=1, sleeper=lambda s: None).run(
            job, make_source()
        )
    # Operator fixed the cause; resume the failed job on a healthy target.
    resumed = registry.load("job")
    IngestPipeline(registry, StoreTarget(store)).run(
        resumed, make_source(), resume=True
    )
    assert resumed.state == "done"
    direct = IncrementalBANKS(synth_bibliography(N_PAPERS, seed=SEED)[0])
    assert top5(store.current().facade) == top5(direct)


def test_state_discipline(tmp_path):
    store = make_store()
    registry = JobRegistry(str(tmp_path))
    pipeline = IngestPipeline(registry, StoreTarget(store))
    # Resume needs a crashed/paused/failed (or done) job, not a fresh one.
    pending = make_job(registry, job_id="pending-job")
    with pytest.raises(IngestError, match="not resumable"):
        pipeline.run(pending, make_source(n_papers=5), resume=True)
    # A fresh run needs a pending job.
    with pytest.raises(IngestError, match="needs a pending job"):
        pipeline.run(
            IngestJob("already", "s", "d", state="running"),
            make_source(n_papers=5),
        )


def test_resume_done_job_is_noop(tmp_path):
    store = make_store()
    registry = JobRegistry(str(tmp_path))
    job = make_job(registry)
    pipeline = IngestPipeline(registry, StoreTarget(store))
    pipeline.run(job, make_source(n_papers=10))
    epoch = store.epoch
    done = registry.load("job")
    pipeline.run(done, make_source(n_papers=10), resume=True)
    assert store.epoch == epoch  # nothing re-published


def test_irreconcilable_cursor_rejected(tmp_path):
    store = make_store()
    registry = JobRegistry(str(tmp_path))
    job = make_job(registry)
    pipeline = IngestPipeline(registry, StoreTarget(store))
    pipeline.run(job, make_source(n_papers=10))
    # Claim a cursor far behind the epoch spine: must refuse, the
    # protocol can only ever trail by one chunk.
    broken = registry.load("job")
    broken.state = "failed"
    broken.chunks_committed -= 2
    registry.save(broken)
    with pytest.raises(IngestError, match="does not reconcile"):
        pipeline.run(broken, make_source(n_papers=10), resume=True)


def test_router_target_ingests_in_lockstep(tmp_path):
    from repro.shard.router import ShardRouter

    store = make_store()
    registry = JobRegistry(str(tmp_path))
    job = make_job(registry, chunk_size=60)
    router = ShardRouter(
        synth_bibliography_base(), shards=2, backend="thread"
    )
    with router:
        IngestPipeline(registry, RouterTarget(router, store)).run(
            job, make_source()
        )
        facade = store.current().facade
        # Structural lockstep: every chunk's deltas reached the router,
        # so its replica database and stitched graph match the store's
        # exactly.  (Scatter-gather answer parity is the shard layer's
        # own guarantee, proven in tests/shard on its workloads.)
        for table in ("author", "paper", "writes", "cites"):
            assert len(router.database.table(table)) == len(
                facade.database.table(table)
            )
        assert router.graph.num_nodes == facade.graph.num_nodes
        assert router.graph.num_edges == facade.graph.num_edges
        for query in QUERIES[:2]:
            assert router.search(query, max_results=5), query
