"""Property: resume parity holds for *any* chunk size and kill point.

Hypothesis drives the same crash-recover-resume cycle as
``test_resume_faults`` over randomized chunk sizes (including 1 and
sizes that don't divide the stream), kill steps and kill occurrences.
The invariant: the resumed database holds exactly the rows a direct
build holds, and the job accounting reconciles to the record count.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.incremental import IncrementalBANKS
from repro.datasets import synth_bibliography, synth_bibliography_base
from repro.ingest import (
    INGEST_STEPS,
    GeneratorSource,
    IngestJob,
    IngestPipeline,
    JobRegistry,
    StoreTarget,
)
from repro.ops.faults import FaultInjected, FaultInjector
from repro.serve.snapshot import SnapshotStore

N_PAPERS = 25
SEED = 13

# Computed once: the stream the direct build and every ingest replay.
DIRECT_DB, N_RECORDS = synth_bibliography(N_PAPERS, seed=SEED)
DIRECT_FACADE = IncrementalBANKS(DIRECT_DB, freeze=False)
PROBE = "mining discovery"
PROBE_ANSWERS = [
    (a.tree.root, round(a.relevance, 9))
    for a in DIRECT_FACADE.search(PROBE, max_results=5)
]


def make_source():
    from repro.datasets import synth_bibliography_records

    return GeneratorSource(
        lambda: synth_bibliography_records(N_PAPERS, seed=SEED),
        name=f"synth:{N_PAPERS}:{SEED}",
    )


def table_counts(database):
    return {
        name: len(database.table(name))
        for name in ("author", "paper", "writes", "cites")
    }


EXPECTED_COUNTS = table_counts(DIRECT_DB)


@settings(max_examples=20, deadline=None)
@given(
    chunk_size=st.integers(min_value=1, max_value=60),
    step=st.sampled_from(INGEST_STEPS[:-1]),
    kill_fraction=st.floats(min_value=0.0, max_value=1.0),
)
def test_any_chunking_any_kill_point_resumes_exactly(
    tmp_path_factory, chunk_size, step, kill_fraction
):
    work = str(tmp_path_factory.mktemp("prop"))
    wal_dir = os.path.join(work, "wal")
    registry = JobRegistry(os.path.join(work, "jobs"))
    store = SnapshotStore(
        IncrementalBANKS(synth_bibliography_base(), freeze=False),
        copy_mode="delta",
        wal=wal_dir,
    )
    job = registry.create(
        IngestJob("prop", "synth", "synth:0", chunk_size=chunk_size)
    )
    total_chunks = -(-N_RECORDS // chunk_size)
    occurrence = max(1, min(total_chunks, int(total_chunks * kill_fraction)))
    faults = FaultInjector().kill_at(step, occurrence=occurrence)
    with pytest.raises(FaultInjected):
        IngestPipeline(registry, StoreTarget(store), faults=faults).run(
            job, make_source()
        )
    store.wal.close()
    del store

    recovered = IncrementalBANKS.recover(
        synth_bibliography_base, wal_dir, freeze=False
    )
    resumed_store = SnapshotStore(recovered, copy_mode="delta", wal=wal_dir)
    resumed = registry.load("prop")
    IngestPipeline(registry, StoreTarget(resumed_store)).run(
        resumed, make_source(), resume=True
    )

    assert resumed.state == "done"
    assert resumed.records_committed == N_RECORDS
    assert resumed.chunks_committed == total_chunks
    facade = resumed_store.current().facade
    assert table_counts(facade.database) == EXPECTED_COUNTS
    assert facade.graph.num_nodes == sum(EXPECTED_COUNTS.values())
    assert [
        (a.tree.root, round(a.relevance, 9))
        for a in facade.search(PROBE, max_results=5)
    ] == PROBE_ANSWERS
