"""Sources: restartable iteration, skip cursors, specifier parsing."""

from __future__ import annotations

import pytest

from repro.datasets import synth_bibliography_records
from repro.errors import IngestError
from repro.ingest import (
    CsvSource,
    GeneratorSource,
    JsonLinesSource,
    dump_jsonl,
    open_source,
)

RECORDS = [
    ("author", ["a1", "Grace Hopper"]),
    ("paper", ["p1", "Compiling Arithmetic Expressions"]),
    ("writes", ["a1", "p1"]),
]


def test_jsonl_roundtrip(tmp_path):
    path = str(tmp_path / "records.jsonl")
    assert dump_jsonl(RECORDS, path) == 3
    source = JsonLinesSource(path)
    assert list(source.records()) == RECORDS
    # Restartable: a second iteration yields the same stream.
    assert list(source.records()) == RECORDS


def test_jsonl_skip_is_the_resume_cursor(tmp_path):
    path = str(tmp_path / "records.jsonl")
    dump_jsonl(RECORDS, path)
    source = JsonLinesSource(path)
    assert list(source.records(skip=2)) == RECORDS[2:]
    assert list(source.records(skip=3)) == []
    with pytest.raises(IngestError, match="cannot skip"):
        list(source.records(skip=4))


def test_jsonl_rejects_bad_lines(tmp_path):
    path = str(tmp_path / "bad.jsonl")
    with open(path, "w") as fh:
        fh.write('["author", ["a1", "x"]]\n')
        fh.write("{oops\n")
    with pytest.raises(IngestError, match="bad JSON"):
        list(JsonLinesSource(path).records())
    with open(path, "w") as fh:
        fh.write('{"table": "author"}\n')
    with pytest.raises(IngestError, match="expected"):
        list(JsonLinesSource(path).records())


def test_csv_source(tmp_path):
    path = str(tmp_path / "records.csv")
    with open(path, "w") as fh:
        fh.write("author,a1,Grace Hopper\n")
        fh.write("paper,p1,Compiling Arithmetic Expressions\n")
        fh.write("\n")
        fh.write("writes,a1,p1\n")
    assert list(CsvSource(path).records()) == RECORDS
    with open(path, "a") as fh:
        fh.write("lonely\n")
    with pytest.raises(IngestError, match="expected"):
        list(CsvSource(path).records())


def test_generator_source_restarts_via_factory():
    source = GeneratorSource(lambda: iter(RECORDS), name="fixed")
    assert list(source.records()) == RECORDS
    assert list(source.records(skip=1)) == RECORDS[1:]


def test_negative_skip_rejected():
    with pytest.raises(IngestError, match="skip"):
        GeneratorSource(lambda: iter(RECORDS)).records(skip=-1)


def test_open_source_specs(tmp_path):
    path = str(tmp_path / "r.jsonl")
    dump_jsonl(RECORDS, path)
    assert list(open_source(f"jsonl:{path}").records()) == RECORDS

    synth = open_source("synth:12:3")
    expected = list(synth_bibliography_records(12, seed=3))
    assert list(synth.records()) == expected
    assert synth.name == "synth:12:3"
    # Default seed fills in.
    assert open_source("synth:12").name == "synth:12:7"

    for bad in ("synth:twelve", "ftp:somewhere", "jsonl:", "synth:"):
        with pytest.raises(IngestError):
            open_source(bad)
