"""Concurrency tests for the result cache.

The serving engine hits one :class:`CachedBanks` from a whole worker
pool, so the cache must keep its LRU order and stats coherent under
contention, compose with single-flight dedup (no duplicate
computation), and survive ``clear()`` racing in-flight queries.
"""

from __future__ import annotations

import copy
import threading

from repro.core.cache import CachedBanks, ResultCache
from repro.relational import Database, execute_script
from repro.serve import EngineConfig, QueryEngine

SCHEMA = """
CREATE TABLE author (aid TEXT PRIMARY KEY, name TEXT NOT NULL);
CREATE TABLE paper (pid TEXT PRIMARY KEY, title TEXT NOT NULL);
CREATE TABLE writes (
    aid TEXT NOT NULL REFERENCES author(aid),
    pid TEXT NOT NULL REFERENCES paper(pid)
);
INSERT INTO author VALUES ('a1', 'ada lovelace');
INSERT INTO paper VALUES ('p1', 'analytical engines');
INSERT INTO writes VALUES ('a1', 'p1');
"""


def make_database() -> Database:
    database = Database("cache-conc")
    execute_script(database, SCHEMA)
    return database


def make_cached_banks(**kwargs) -> CachedBanks:
    return CachedBanks(make_database(), **kwargs)


class CountingBanks(CachedBanks):
    """CachedBanks that counts actual (non-cached) search computations."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.computations = 0
        self._count_lock = threading.Lock()
        self.compute_gate = None

    # BANKS.search is what CachedBanks calls on a cache miss; wrapping
    # here counts exactly the cache-missing computations.
    def _compute(self):
        with self._count_lock:
            self.computations += 1
        if self.compute_gate is not None:
            assert self.compute_gate.wait(timeout=5)

    def search(self, query, **kwargs):
        # Intercept at the CachedBanks layer: a hit returns before the
        # marker runs, so only real computations count.
        cached_before = self.cache.stats.hits
        result = super().search(query, **kwargs)
        if self.cache.stats.hits == cached_before:
            self._compute()
        return result


class TestResultCacheUnderThreads:
    def test_stats_stay_consistent(self):
        """hits+misses must equal total gets even under contention."""
        cache = ResultCache(capacity=64)
        threads_n, ops = 8, 500

        def hammer(seed: int):
            for i in range(ops):
                key = (seed * i) % 96  # mixes hits, misses, evictions
                if cache.get(key) is None:
                    cache.put(key, key)

        threads = [
            threading.Thread(target=hammer, args=(s,))
            for s in range(1, threads_n + 1)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert cache.stats.requests == threads_n * ops
        assert cache.stats.hits + cache.stats.misses == cache.stats.requests
        assert len(cache) <= 64

    def test_eviction_counter_matches_bound(self):
        cache = ResultCache(capacity=4)

        def fill(base: int):
            for i in range(100):
                cache.put((base, i), i)

        threads = [
            threading.Thread(target=fill, args=(b,)) for b in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # 400 puts of distinct keys into capacity 4: all but 4 evicted.
        assert cache.stats.evictions == 400 - 4
        assert len(cache) == 4

    def test_clear_races_with_put_and_get(self):
        cache = ResultCache(capacity=32)
        stop = threading.Event()
        errors = []

        def churn():
            try:
                i = 0
                while not stop.is_set():
                    cache.put(i % 50, i)
                    cache.get((i + 25) % 50)
                    i += 1
            except BaseException as error:  # noqa: BLE001 - reported
                errors.append(error)

        def clearer():
            try:
                while not stop.is_set():
                    cache.clear()
            except BaseException as error:  # noqa: BLE001 - reported
                errors.append(error)

        threads = [threading.Thread(target=churn) for _ in range(4)] + [
            threading.Thread(target=clearer) for _ in range(2)
        ]
        for thread in threads:
            thread.start()
        stop_timer = threading.Timer(0.3, stop.set)
        stop_timer.start()
        for thread in threads:
            thread.join(timeout=10)
        stop_timer.cancel()
        assert not errors
        assert len(cache) <= 32

    def test_deepcopy_is_fresh_and_unlocked(self):
        cache = ResultCache(capacity=16)
        cache.put("k", "v")
        cache.get("k")
        clone = copy.deepcopy(cache)
        assert len(clone) == 0
        assert clone.capacity == 16
        assert clone.stats.requests == 0
        clone.put("k2", "v2")  # the fresh lock works
        assert clone.get("k2") == "v2"


class TestSingleFlightPlusCache:
    def test_no_duplicate_computation_for_concurrent_identical_queries(self):
        """N identical queries racing through the engine compute once:
        single-flight collapses the in-flight window the cache cannot."""
        counting = CountingBanks(make_database())
        counting.compute_gate = threading.Event()

        with QueryEngine(counting, EngineConfig(workers=4)) as engine:
            futures = [engine.submit("ada engines") for _ in range(12)]
            counting.compute_gate.set()
            results = [f.result(timeout=5) for f in futures]
            assert counting.computations == 1
            assert all(r is results[0] for r in results)

    def test_cache_clear_during_inflight_query_is_safe(self):
        facade = make_cached_banks()
        with QueryEngine(facade, EngineConfig(workers=4)) as engine:
            stop = threading.Event()
            errors = []

            def clearer():
                try:
                    while not stop.is_set():
                        facade.cache.clear()
                except BaseException as error:  # noqa: BLE001 - reported
                    errors.append(error)

            thread = threading.Thread(target=clearer)
            thread.start()
            try:
                for _ in range(50):
                    answers = engine.search("ada engines", timeout=5)
                    assert answers
            finally:
                stop.set()
                thread.join(timeout=10)
            assert not errors

    def test_concurrent_distinct_queries_fill_cache_consistently(self):
        facade = make_cached_banks(cache_capacity=32)
        queries = ["ada", "engines", "analytical", "lovelace",
                   "ada engines", "analytical lovelace"]
        with QueryEngine(facade, EngineConfig(workers=4)) as engine:
            futures = [
                engine.submit(query)
                for _ in range(10)
                for query in queries
            ]
            for future in futures:
                future.result(timeout=10)
        stats = facade.cache.stats
        assert stats.requests == stats.hits + stats.misses
        # Every distinct query is cached at most once (single-flight
        # prevents duplicate misses from racing computations).
        assert len(facade.cache) == len(queries)
