"""Tests for user-feedback authority transfer (spreading activation)."""

from __future__ import annotations

import pytest

from repro.core.feedback import FeedbackBanks, FeedbackStore, spreading_activation
from repro.core.scoring import ScoringConfig
from repro.errors import QueryError
from repro.relational import Database, execute_script


def make_db() -> Database:
    """Two papers with identical structure; feedback must break the tie."""
    database = Database("fb")
    execute_script(
        database,
        """
        CREATE TABLE author (aid TEXT PRIMARY KEY, name TEXT NOT NULL);
        CREATE TABLE paper (pid TEXT PRIMARY KEY, title TEXT NOT NULL);
        CREATE TABLE writes (
            aid TEXT NOT NULL REFERENCES author(aid),
            pid TEXT NOT NULL REFERENCES paper(pid)
        );
        INSERT INTO author VALUES ('a1', 'grace hopper');
        INSERT INTO author VALUES ('a2', 'alan kay');
        INSERT INTO paper VALUES ('p1', 'compiler construction basics');
        INSERT INTO paper VALUES ('p2', 'compiler optimization basics');
        INSERT INTO writes VALUES ('a1', 'p1');
        INSERT INTO writes VALUES ('a2', 'p2');
        """,
    )
    return database


class TestFeedbackStore:
    def test_click_accumulates(self):
        store = FeedbackStore()
        store.record_click(("paper", 0))
        store.record_click(("paper", 0), weight=2.0)
        assert store.mass(("paper", 0)) == 3.0

    def test_clear(self):
        store = FeedbackStore()
        store.record_click(("paper", 0))
        store.clear()
        assert len(store) == 0
        assert store.mass(("paper", 0)) == 0.0

    def test_nonpositive_weight_rejected(self):
        store = FeedbackStore()
        with pytest.raises(QueryError):
            store.record_click(("paper", 0), weight=0.0)

    def test_bad_leaf_share_rejected(self):
        with pytest.raises(QueryError):
            FeedbackStore(leaf_share=2.0)

    def test_answer_click_endorses_root_and_leaves(self):
        banks = FeedbackBanks(make_db())
        answer = banks.search("hopper compiler")[0]
        store = FeedbackStore(leaf_share=0.5)
        store.record_click(answer)
        # The root gets 1.0, plus 0.5 per keyword term it matches itself.
        root_matches = sum(
            1 for node in answer.tree.keyword_nodes if node == answer.tree.root
        )
        assert store.mass(answer.tree.root) == 1.0 + 0.5 * root_matches
        for keyword_node in answer.tree.keyword_nodes:
            if keyword_node != answer.tree.root:
                assert store.mass(keyword_node) == 0.5


class TestSpreadingActivation:
    def test_seed_keeps_its_mass(self):
        database = make_db()
        activation = spreading_activation(database, {("writes", 0): 1.0})
        assert activation[("writes", 0)] == 1.0

    def test_mass_flows_along_references(self):
        """writes(a1,p1) references author a1 and paper p1: both gain."""
        database = make_db()
        activation = spreading_activation(
            database, {("writes", 0): 1.0}, damping=0.5, rounds=1
        )
        # Two out-references split the damped mass equally.
        assert activation[("author", 0)] == pytest.approx(0.25)
        assert activation[("paper", 0)] == pytest.approx(0.25)

    def test_no_flow_from_leaf_tuples(self):
        """Papers reference nothing: their mass stays put."""
        database = make_db()
        activation = spreading_activation(
            database, {("paper", 0): 2.0}, rounds=3
        )
        assert activation == {("paper", 0): 2.0}

    def test_rounds_bound_radius(self):
        database = make_db()
        zero_rounds = spreading_activation(
            database, {("writes", 0): 1.0}, rounds=0
        )
        assert zero_rounds == {("writes", 0): 1.0}

    def test_damping_validation(self):
        database = make_db()
        with pytest.raises(QueryError):
            spreading_activation(database, {}, damping=1.0)
        with pytest.raises(QueryError):
            spreading_activation(database, {}, rounds=-1)

    def test_deleted_tuple_mass_is_inert(self):
        database = make_db()
        execute_script(database, "DELETE FROM writes WHERE aid = 'a1'")
        activation = spreading_activation(
            database, {("writes", 0): 1.0}, rounds=2
        )
        # The seed is remembered but nothing flows out of a dead tuple.
        assert activation == {("writes", 0): 1.0}


class TestFeedbackBanks:
    def test_feedback_breaks_tie(self):
        """Both 'compiler' papers tie structurally; clicking p2 must
        promote it under prestige-aware scoring."""
        banks = FeedbackBanks(
            make_db(),
            scoring=ScoringConfig(lambda_weight=0.5, edge_log=True),
        )
        p2 = ("paper", 1)
        banks.record_click(p2, weight=3.0)
        banks.apply_feedback()
        answers = banks.search("compiler")
        roots = [answer.tree.root for answer in answers]
        assert roots[0] == p2

    def test_without_apply_no_change(self):
        banks = FeedbackBanks(make_db())
        before = banks.graph.node_weight(("paper", 1))
        banks.record_click(("paper", 1))
        assert banks.graph.node_weight(("paper", 1)) == before

    def test_reset_restores_base_ranking(self):
        banks = FeedbackBanks(
            make_db(),
            scoring=ScoringConfig(lambda_weight=0.5, edge_log=True),
        )
        base_weights = {
            node: banks.graph.node_weight(node) for node in banks.graph.nodes()
        }
        banks.record_click(("paper", 1), weight=5.0)
        banks.apply_feedback()
        assert banks.graph.node_weight(("paper", 1)) != base_weights[
            ("paper", 1)
        ]
        banks.reset_feedback()
        for node, weight in base_weights.items():
            assert banks.graph.node_weight(node) == weight

    def test_activation_spreads_to_referenced_tuples(self):
        """Clicking a writes tuple makes its author heavier too."""
        banks = FeedbackBanks(make_db(), damping=0.5, rounds=2)
        author = ("author", 0)
        before = banks.graph.node_weight(author)
        banks.record_click(("writes", 0), weight=4.0)
        activation = banks.apply_feedback()
        assert activation[author] > 0
        assert banks.graph.node_weight(author) > before

    def test_stats_normaliser_follows_feedback(self):
        banks = FeedbackBanks(make_db())
        banks.record_click(("paper", 0), weight=50.0)
        banks.apply_feedback()
        assert banks.stats.max_node_weight >= 50.0

    def test_negative_scale_rejected(self):
        with pytest.raises(QueryError):
            FeedbackBanks(make_db(), feedback_scale=-1.0)
