"""Tests for answer trees: construction, invariants, dedup keys."""

import pytest

from repro.core.answer import AnswerTree
from repro.errors import GraphError
from repro.graph.digraph import DiGraph


@pytest.fixture
def diamond():
    """root -> {x, y} -> leaf plus a side chain."""
    graph = DiGraph()
    graph.add_edge("root", "x", 1.0)
    graph.add_edge("root", "y", 2.0)
    graph.add_edge("x", "k1", 1.0)
    graph.add_edge("y", "k2", 1.0)
    graph.add_edge("x", "k2", 5.0)
    return graph


class TestFromPaths:
    def test_two_paths(self, diamond):
        tree = AnswerTree.from_paths(
            diamond,
            "root",
            [["root", "x", "k1"], ["root", "y", "k2"]],
        )
        tree.validate()
        assert tree.root == "root"
        assert tree.size() == 5
        assert tree.weight == 5.0
        assert tree.root_child_count() == 2
        assert tree.keyword_nodes == ("k1", "k2")

    def test_shared_prefix_grafts(self, diamond):
        tree = AnswerTree.from_paths(
            diamond,
            "root",
            [["root", "x", "k1"], ["root", "x", "k2"]],
        )
        tree.validate()
        # Edge root->x counted once.
        assert tree.weight == 1.0 + 1.0 + 5.0
        assert tree.root_child_count() == 1

    def test_single_node_tree(self, diamond):
        tree = AnswerTree.from_paths(diamond, "k1", [["k1"]])
        tree.validate()
        assert tree.size() == 1
        assert tree.weight == 0.0
        assert tree.root_child_count() == 0

    def test_partial_coverage(self, diamond):
        tree = AnswerTree.from_paths(
            diamond, "root", [["root", "x", "k1"], None]
        )
        assert tree.covered_terms() == 1
        assert tree.keyword_nodes == ("k1", None)

    def test_path_must_start_at_root(self, diamond):
        with pytest.raises(GraphError):
            AnswerTree.from_paths(diamond, "root", [["x", "k1"]])

    def test_missing_edge_rejected(self, diamond):
        with pytest.raises(GraphError):
            AnswerTree.from_paths(diamond, "root", [["root", "k1"]])


class TestStructure:
    def test_nodes_edges_children(self, diamond):
        tree = AnswerTree.from_paths(
            diamond,
            "root",
            [["root", "x", "k1"], ["root", "y", "k2"]],
        )
        assert tree.nodes == {"root", "x", "y", "k1", "k2"}
        assert ("root", "x") in tree.edges
        assert tree.children("root") == sorted(["x", "y"]) or set(
            tree.children("root")
        ) == {"x", "y"}
        assert tree.children("k1") == []

    def test_edge_weight_lookup(self, diamond):
        tree = AnswerTree.from_paths(diamond, "root", [["root", "y", "k2"]])
        assert tree.edge_weight("root", "y") == 2.0

    def test_render_marks_keywords(self, diamond):
        tree = AnswerTree.from_paths(
            diamond, "root", [["root", "x", "k1"], ["root", "y", "k2"]]
        )
        text = tree.render_indented()
        assert "* 'k1'" in text
        assert text.splitlines()[0].strip().endswith("'root'")


class TestDuplicateKeys:
    def test_same_undirected_edges_same_key(self, diamond):
        tree_a = AnswerTree.from_paths(
            diamond, "root", [["root", "x", "k1"], ["root", "y", "k2"]]
        )
        # A different rooting of the same undirected structure: build it
        # manually from the reversed paths.
        graph2 = DiGraph()
        for source, target, weight in diamond.edges():
            graph2.add_edge(source, target, weight)
            graph2.add_edge(target, source, weight)
        tree_b = AnswerTree.from_paths(
            graph2,
            "k1",
            [["k1"], ["k1", "x", "root", "y", "k2"]],
        )
        assert tree_a.undirected_key() == tree_b.undirected_key()

    def test_different_structures_different_keys(self, diamond):
        tree_a = AnswerTree.from_paths(
            diamond, "root", [["root", "x", "k1"], ["root", "y", "k2"]]
        )
        tree_b = AnswerTree.from_paths(
            diamond, "root", [["root", "x", "k1"], ["root", "x", "k2"]]
        )
        assert tree_a.undirected_key() != tree_b.undirected_key()

    def test_single_node_keys_distinct(self, diamond):
        tree_a = AnswerTree.from_paths(diamond, "k1", [["k1"]])
        tree_b = AnswerTree.from_paths(diamond, "k2", [["k2"]])
        assert tree_a.undirected_key() != tree_b.undirected_key()


class TestValidate:
    def test_detects_orphan_parent_chain(self, diamond):
        tree = AnswerTree.from_paths(
            diamond, "root", [["root", "x", "k1"]]
        )
        # Corrupt: point x's parent at a node outside the tree.
        tree.parent["x"] = "nowhere"
        with pytest.raises(GraphError):
            tree.validate()

    def test_detects_cycle(self, diamond):
        tree = AnswerTree.from_paths(diamond, "root", [["root", "x", "k1"]])
        tree.parent["x"] = "k1"
        tree.parent["k1"] = "x"
        with pytest.raises(GraphError):
            tree.validate()
