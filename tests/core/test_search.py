"""Tests for the backward expanding search (Sec. 3, Fig. 3)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.model import GraphStats
from repro.core.scoring import Scorer, ScoringConfig
from repro.core.search import SearchConfig, backward_expanding_search
from repro.errors import EmptyQueryError, QueryError
from repro.graph.digraph import DiGraph
from repro.graph.steiner import steiner_tree


def make_scorer(graph: DiGraph) -> Scorer:
    stats = GraphStats(
        min_edge_weight=(
            graph.min_edge_weight() if graph.num_edges else 1.0
        ),
        max_node_weight=max(graph.max_node_weight(), 1e-12),
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
    )
    return Scorer(stats, ScoringConfig())


def run_search(graph, groups, **config_kwargs):
    config = SearchConfig(**config_kwargs) if config_kwargs else SearchConfig()
    return list(
        backward_expanding_search(graph, groups, make_scorer(graph), config)
    )


def bidirected(edges):
    """Build a graph with forward weight-1 and backward weight-1 edges."""
    graph = DiGraph()
    for source, target in edges:
        graph.add_edge(source, target, 1.0)
        graph.add_edge(target, source, 1.0)
    return graph


class TestBasicAnswers:
    def test_single_keyword_single_node_answers(self):
        graph = bidirected([("a", "b"), ("b", "c")])
        answers = run_search(graph, [{"a", "c"}])
        trees = {answer.tree.root for answer in answers}
        assert trees == {"a", "c"}
        assert all(answer.tree.size() == 1 for answer in answers)

    def test_two_keywords_connected_by_middle_node(self):
        graph = bidirected([("k1", "m"), ("m", "k2")])
        answers = run_search(graph, [{"k1"}, {"k2"}])
        assert answers
        best = answers[0].tree
        assert best.nodes == {"k1", "m", "k2"}
        best.validate()

    def test_no_common_vertex_no_answers(self):
        graph = DiGraph()
        graph.add_node("k1")
        graph.add_node("k2")
        assert run_search(graph, [{"k1"}, {"k2"}]) == []

    def test_keyword_matching_nothing_no_answers(self):
        graph = bidirected([("a", "b")])
        assert run_search(graph, [{"a"}, set()]) == []

    def test_unknown_nodes_filtered(self):
        graph = bidirected([("a", "b")])
        answers = run_search(graph, [{"a", "ghost"}, {"b"}])
        assert answers  # ghost ignored, a-b answer found

    def test_empty_query_rejected(self):
        graph = bidirected([("a", "b")])
        with pytest.raises(EmptyQueryError):
            run_search(graph, [])

    def test_bad_config_rejected(self):
        with pytest.raises(QueryError):
            SearchConfig(max_results=0)
        with pytest.raises(QueryError):
            SearchConfig(output_heap_size=0)

    def test_single_node_covering_all_keywords(self):
        graph = bidirected([("x", "y")])
        answers = run_search(graph, [{"x"}, {"x"}])
        assert answers[0].tree.size() == 1
        assert answers[0].tree.keyword_nodes == ("x", "x")


class TestFigure3Rules:
    def test_single_child_root_discarded(self):
        # chain k1 - a - b - k2: candidate roots a and b each have one
        # child; only one undirected structure remains.
        graph = bidirected([("k1", "a"), ("a", "b"), ("b", "k2")])
        answers = run_search(graph, [{"k1"}, {"k2"}])
        assert len(answers) == 1
        assert answers[0].tree.nodes == {"k1", "a", "b", "k2"}

    def test_keyword_root_exempt_from_discard(self):
        # k1 itself must be able to root a one-child tree.
        graph = bidirected([("k1", "k2")])
        answers = run_search(graph, [{"k1"}, {"k2"}])
        assert len(answers) == 1
        assert answers[0].tree.nodes == {"k1", "k2"}

    def test_duplicates_modulo_direction_collapse(self):
        # Star: m connects k1 and k2; rooting at m / k1 / k2 gives the
        # same undirected tree; exactly one answer must emerge.
        graph = bidirected([("m", "k1"), ("m", "k2")])
        answers = run_search(graph, [{"k1"}, {"k2"}])
        assert len(answers) == 1

    def test_excluded_root_tables(self):
        graph = DiGraph()
        for source, target in [
            (("link", 0), ("a", 0)),
            (("link", 0), ("b", 0)),
        ]:
            graph.add_edge(source, target, 1.0)
            graph.add_edge(target, source, 1.0)
        groups = [{("a", 0)}, {("b", 0)}]
        with_link_root = run_search(graph, groups)
        assert any(
            answer.tree.root[0] == "link" for answer in with_link_root
        )
        without = run_search(
            graph, groups, excluded_root_tables=frozenset({"link"})
        )
        assert all(answer.tree.root[0] != "link" for answer in without)

    def test_results_approximately_best_first(self):
        # Two connections of different weight: light one must come first
        # given a heap large enough to order exactly.
        graph = DiGraph()
        for s, t, w in [
            ("k1", "cheap", 1.0), ("cheap", "k2", 1.0),
            ("k1", "dear", 5.0), ("dear", "k2", 5.0),
        ]:
            graph.add_edge(s, t, w)
            graph.add_edge(t, s, w)
        answers = run_search(graph, [{"k1"}, {"k2"}], output_heap_size=100)
        assert "cheap" in answers[0].tree.nodes
        relevances = [answer.relevance for answer in answers]
        assert relevances == sorted(relevances, reverse=True)

    def test_max_results_truncates(self):
        graph = bidirected(
            [("k1", f"m{i}") for i in range(6)]
            + [(f"m{i}", "k2") for i in range(6)]
        )
        answers = run_search(graph, [{"k1"}, {"k2"}], max_results=3)
        assert len(answers) == 3

    def test_max_visited_budget_stops_early(self):
        graph = bidirected([(f"n{i}", f"n{i+1}") for i in range(50)])
        answers = run_search(
            graph, [{"n0"}, {"n50"}], max_visited=5
        )
        assert answers == []  # budget too small to meet in the middle

    def test_max_distance_prunes(self):
        graph = bidirected([("k1", "m"), ("m", "k2")])
        assert run_search(graph, [{"k1"}, {"k2"}], max_distance=0.5) == []
        assert run_search(graph, [{"k1"}, {"k2"}], max_distance=2.0)


class TestPartialAnswers:
    def test_partial_disabled_by_default(self):
        graph = bidirected([("k1", "m")])
        graph.add_node("k2island")
        assert run_search(graph, [{"k1"}, {"k2island"}]) == []

    def test_partial_answers_when_allowed(self):
        graph = bidirected([("k1", "m")])
        graph.add_node("k2island")
        answers = run_search(
            graph,
            [{"k1"}, {"k2island"}],
            require_all_keywords=False,
        )
        assert answers
        covered = {a.tree.covered_terms() for a in answers}
        assert 1 in covered

    def test_complete_answers_outrank_partial(self):
        graph = bidirected([("k1", "m"), ("m", "k2")])
        answers = run_search(
            graph, [{"k1"}, {"k2"}], require_all_keywords=False,
            output_heap_size=100,
        )
        assert answers[0].tree.covered_terms() == 2


class TestAnswerInvariants:
    @settings(max_examples=30, deadline=None)
    @given(
        edge_specs=st.lists(
            st.tuples(st.integers(0, 9), st.integers(0, 9)),
            min_size=3,
            max_size=30,
        ),
        group_seeds=st.lists(st.integers(0, 9), min_size=1, max_size=3),
    )
    def test_answers_are_valid_trees_covering_all_keywords(
        self, edge_specs, group_seeds
    ):
        """Property: on random graphs, every emitted answer is a valid
        rooted tree containing >= 1 node from every keyword group, with
        no duplicate undirected structures across the result list."""
        graph = DiGraph()
        for node in range(10):
            graph.add_node(node, float(node % 3))
        for source, target in edge_specs:
            if source != target:
                graph.add_edge(source, target, 1.0 + (source + target) % 3)
        groups = [{seed} for seed in group_seeds]
        answers = run_search(graph, groups, max_results=20)
        seen_keys = set()
        for answer in answers:
            tree = answer.tree
            tree.validate()
            assert 0.0 <= answer.relevance <= 1.0
            for group, matched in zip(groups, tree.keyword_nodes):
                assert matched in group
            key = tree.undirected_key()
            assert key not in seen_keys
            seen_keys.add(key)

    @settings(max_examples=25, deadline=None)
    @given(
        edge_specs=st.lists(
            st.tuples(st.integers(0, 7), st.integers(0, 7)),
            min_size=4,
            max_size=25,
        ),
        seeds=st.tuples(st.integers(0, 7), st.integers(0, 7)),
    )
    def test_best_answer_weight_bounded_by_steiner_oracle(
        self, edge_specs, seeds
    ):
        """Property: the heuristic's best tree weighs at least the exact
        group-Steiner optimum, and the optimum is found whenever the
        search finds anything at all on these tiny graphs."""
        graph = DiGraph()
        for node in range(8):
            graph.add_node(node)
        for source, target in edge_specs:
            if source != target:
                graph.add_edge(source, target, 1.0)
                graph.add_edge(target, source, 1.0)
        groups = [{seeds[0]}, {seeds[1]}]
        answers = run_search(graph, groups, max_results=50,
                             output_heap_size=500)
        exact = steiner_tree(graph, [set(g) for g in groups])
        if exact is None:
            assert answers == []
            return
        assert answers, "oracle found a tree but the search did not"
        best_weight = min(answer.tree.weight for answer in answers)
        assert best_weight >= exact.weight - 1e-9
        # With unit weights and a generous budget the heuristic attains
        # the optimum.
        assert best_weight == pytest.approx(exact.weight)
