"""Tests for the fixed-size output heap and its duplicate handling.

These exercise the Sec. 3 duplicate rules in isolation: "When a new
result is generated, if a duplicate is in the heap, and its relevance is
smaller than that of the new result, we remove the duplicate from the
heap and insert the new result. ... a duplicate of the result might have
already been output; in that case we discard the new result even if its
relevance is higher."
"""

import pytest

from repro.core.model import GraphStats
from repro.core.scoring import Scorer, ScoringConfig
from repro.core.search import (
    SearchConfig,
    _OutputHeap,
    backward_expanding_search,
)
from repro.graph.digraph import DiGraph


class TestOutputHeap:
    def test_pop_best_orders_by_relevance(self):
        heap = _OutputHeap(capacity=10)
        heap.add("k1", "tree1", 0.3)
        heap.add("k2", "tree2", 0.9)
        heap.add("k3", "tree3", 0.6)
        popped = [heap.pop_best()[2] for _ in range(3)]
        assert popped == [0.9, 0.6, 0.3]

    def test_full_flag(self):
        heap = _OutputHeap(capacity=2)
        heap.add("a", None, 0.1)
        assert not heap.full
        heap.add("b", None, 0.2)
        assert heap.full

    def test_remove_is_lazy_but_consistent(self):
        heap = _OutputHeap(capacity=5)
        heap.add("a", "ta", 0.5)
        heap.add("b", "tb", 0.9)
        heap.remove("b")
        assert len(heap) == 1
        assert heap.get_relevance("b") is None
        key, _tree, relevance = heap.pop_best()
        assert key == "a" and relevance == 0.5

    def test_replace_duplicate_with_better(self):
        heap = _OutputHeap(capacity=5)
        heap.add("dup", "worse", 0.4)
        assert heap.get_relevance("dup") == 0.4
        heap.remove("dup")
        heap.add("dup", "better", 0.7)
        assert heap.get_relevance("dup") == 0.7
        assert len(heap) == 1

    def test_pop_empty_raises(self):
        with pytest.raises(KeyError):
            _OutputHeap(capacity=1).pop_best()

    def test_tie_breaking_is_fifo(self):
        heap = _OutputHeap(capacity=5)
        heap.add("first", "t1", 0.5)
        heap.add("second", "t2", 0.5)
        assert heap.pop_best()[0] == "first"


class TestEmittedDuplicateRule:
    def test_duplicate_of_emitted_answer_discarded(self):
        """Force a tiny output heap so the first rooting of a structure
        is emitted before its better-rooted duplicate is generated; the
        late duplicate must be dropped (list stays duplicate-free)."""
        graph = DiGraph()
        # Many parallel 2-hop connections so the heap overflows early.
        for i in range(8):
            for source, target in [("k1", f"m{i}"), (f"m{i}", "k2")]:
                graph.add_edge(source, target, 1.0 + i * 0.5)
                graph.add_edge(target, source, 1.0 + i * 0.5)
        stats = GraphStats(
            min_edge_weight=1.0, max_node_weight=1.0,
            num_nodes=graph.num_nodes, num_edges=graph.num_edges,
        )
        scorer = Scorer(stats, ScoringConfig())
        answers = list(
            backward_expanding_search(
                graph,
                [{"k1"}, {"k2"}],
                scorer,
                SearchConfig(max_results=20, output_heap_size=2),
            )
        )
        keys = [answer.tree.undirected_key() for answer in answers]
        assert len(keys) == len(set(keys))
        assert len(answers) == 8  # one per middle node, no duplicates
