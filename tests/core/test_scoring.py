"""Tests for the scoring model (Sec. 2.3), incl. range properties."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.answer import AnswerTree
from repro.core.model import GraphStats
from repro.core.scoring import Scorer, ScoringConfig
from repro.errors import QueryError
from repro.graph.digraph import DiGraph


def make_stats(min_edge=1.0, max_node=10.0):
    return GraphStats(
        min_edge_weight=min_edge,
        max_node_weight=max_node,
        num_nodes=10,
        num_edges=20,
    )


def two_leaf_tree(edge_weight_left=1.0, edge_weight_right=1.0):
    graph = DiGraph()
    graph.add_node("root", 10.0)
    graph.add_node("k1", 5.0)
    graph.add_node("k2", 0.0)
    graph.add_edge("root", "k1", edge_weight_left)
    graph.add_edge("root", "k2", edge_weight_right)
    tree = AnswerTree.from_paths(
        graph, "root", [["root", "k1"], ["root", "k2"]]
    )
    return graph, tree


class TestConfig:
    def test_lambda_range_enforced(self):
        with pytest.raises(QueryError):
            ScoringConfig(lambda_weight=1.5)

    def test_combination_validated(self):
        with pytest.raises(QueryError):
            ScoringConfig(combination="averaged")

    def test_paper_grid_has_five_entries(self):
        grid = ScoringConfig.paper_grid()
        assert len(grid) == 5
        multiplicative = [g for g in grid if g.combination == "multiplicative"]
        # Only the no-log multiplicative combo is retained.
        assert len(multiplicative) == 1
        assert not multiplicative[0].edge_log
        assert not multiplicative[0].node_log


class TestEdgeScore:
    def test_single_node_tree_scores_one(self):
        graph = DiGraph()
        graph.add_node("only", 3.0)
        tree = AnswerTree.from_paths(graph, "only", [["only"]])
        scorer = Scorer(make_stats(), ScoringConfig())
        assert scorer.edge_score(tree) == 1.0

    def test_no_log_normalisation(self):
        graph, tree = two_leaf_tree(2.0, 3.0)
        scorer = Scorer(make_stats(min_edge=1.0), ScoringConfig(edge_log=False))
        assert scorer.edge_score(tree) == pytest.approx(1.0 / (1.0 + 5.0))

    def test_log_scaling(self):
        graph, tree = two_leaf_tree(1.0, 3.0)
        scorer = Scorer(make_stats(), ScoringConfig(edge_log=True))
        expected = 1.0 / (1.0 + math.log2(2.0) + math.log2(4.0))
        assert scorer.edge_score(tree) == pytest.approx(expected)

    def test_heavier_trees_score_lower(self):
        _g1, light = two_leaf_tree(1.0, 1.0)
        _g2, heavy = two_leaf_tree(5.0, 5.0)
        scorer = Scorer(make_stats(), ScoringConfig())
        assert scorer.edge_score(light) > scorer.edge_score(heavy)

    def test_min_edge_weight_must_be_positive(self):
        with pytest.raises(QueryError):
            Scorer(make_stats(min_edge=0.0), ScoringConfig())


class TestNodeScore:
    def test_average_over_root_and_leaves(self):
        graph, tree = two_leaf_tree()
        scorer = Scorer(make_stats(max_node=10.0), ScoringConfig())
        # root 10/10, k1 5/10, k2 0/10 -> mean of (1, .5, 0).
        assert scorer.node_score(tree, graph) == pytest.approx(0.5)

    def test_multi_term_node_counted_per_term(self):
        graph = DiGraph()
        graph.add_node("root", 10.0)
        graph.add_node("k", 5.0)
        graph.add_edge("root", "k", 1.0)
        tree = AnswerTree.from_paths(
            graph, "root", [["root", "k"], ["root", "k"]]
        )
        scorer = Scorer(make_stats(max_node=10.0), ScoringConfig())
        # (1 + .5 + .5) / 3.
        assert scorer.node_score(tree, graph) == pytest.approx(2.0 / 3.0)

    def test_uncovered_term_scores_zero(self):
        graph, _tree = two_leaf_tree()
        partial = AnswerTree.from_paths(graph, "root", [["root", "k1"], None])
        scorer = Scorer(make_stats(max_node=10.0), ScoringConfig())
        assert scorer.node_score(partial, graph) == pytest.approx(0.5)

    def test_node_log_scaling(self):
        graph, tree = two_leaf_tree()
        scorer = Scorer(make_stats(max_node=10.0), ScoringConfig(node_log=True))
        expected = (
            math.log2(2.0) + math.log2(1.5) + math.log2(1.0)
        ) / 3.0
        assert scorer.node_score(tree, graph) == pytest.approx(expected)


class TestCombination:
    def test_lambda_zero_is_pure_edge_score(self):
        graph, tree = two_leaf_tree()
        scorer = Scorer(make_stats(), ScoringConfig(lambda_weight=0.0))
        assert scorer.relevance(tree, graph) == pytest.approx(
            scorer.edge_score(tree)
        )

    def test_lambda_one_is_pure_node_score(self):
        graph, tree = two_leaf_tree()
        scorer = Scorer(make_stats(), ScoringConfig(lambda_weight=1.0))
        assert scorer.relevance(tree, graph) == pytest.approx(
            scorer.node_score(tree, graph)
        )

    def test_multiplicative_endpoints_match_additive_semantics(self):
        graph, tree = two_leaf_tree()
        for lam in (0.0, 1.0):
            additive = Scorer(
                make_stats(),
                ScoringConfig(lambda_weight=lam, combination="additive"),
            ).relevance(tree, graph)
            multiplicative = Scorer(
                make_stats(),
                ScoringConfig(lambda_weight=lam, combination="multiplicative"),
            ).relevance(tree, graph)
            assert multiplicative == pytest.approx(additive)

    def test_multiplicative_zero_node_score(self):
        graph = DiGraph()
        graph.add_node("a", 0.0)
        graph.add_node("b", 0.0)
        graph.add_edge("a", "b", 1.0)
        tree = AnswerTree.from_paths(graph, "a", [["a", "b"]])
        scorer = Scorer(
            make_stats(),
            ScoringConfig(lambda_weight=0.5, combination="multiplicative"),
        )
        assert scorer.relevance(tree, graph) == 0.0

    @settings(max_examples=60, deadline=None)
    @given(
        lam=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        edge_log=st.booleans(),
        node_log=st.booleans(),
        combination=st.sampled_from(["additive", "multiplicative"]),
        left=st.floats(min_value=1.0, max_value=50.0, allow_nan=False),
        right=st.floats(min_value=1.0, max_value=50.0, allow_nan=False),
    )
    def test_relevance_always_in_unit_interval(
        self, lam, edge_log, node_log, combination, left, right
    ):
        """Property: relevance is in [0, 1] for every configuration."""
        graph, tree = two_leaf_tree(left, right)
        scorer = Scorer(
            make_stats(),
            ScoringConfig(
                lambda_weight=lam,
                edge_log=edge_log,
                node_log=node_log,
                combination=combination,
            ),
        )
        relevance = scorer.relevance(tree, graph)
        assert 0.0 <= relevance <= 1.0
