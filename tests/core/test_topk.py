"""Tests for the global top-k merge of per-shard answer streams."""

from __future__ import annotations

from repro.core.answer import AnswerTree
from repro.core.search import ScoredAnswer
from repro.core.topk import merge_scored_answers
from repro.graph.digraph import DiGraph


def _graph():
    graph = DiGraph()
    for name in ("a", "b", "c", "d"):
        graph.add_node((name, 0), weight=1.0)
    graph.add_edge(("a", 0), ("b", 0), 1.0)
    graph.add_edge(("b", 0), ("a", 0), 1.0)
    graph.add_edge(("b", 0), ("c", 0), 1.0)
    graph.add_edge(("c", 0), ("b", 0), 1.0)
    graph.add_edge(("c", 0), ("d", 0), 1.0)
    return graph


def _tree(graph, root, path):
    return AnswerTree.from_paths(graph, root, [path])


def test_merge_ranks_by_relevance_across_streams():
    graph = _graph()
    low = ScoredAnswer(_tree(graph, ("a", 0), [("a", 0)]), 0.2, 0)
    mid = ScoredAnswer(_tree(graph, ("b", 0), [("b", 0)]), 0.5, 0)
    high = ScoredAnswer(_tree(graph, ("c", 0), [("c", 0)]), 0.9, 0)
    merged = merge_scored_answers([[low], [mid, high]], 10)
    assert [a.relevance for a in merged] == [0.9, 0.5, 0.2]
    assert [a.order for a in merged] == [0, 1, 2]


def test_merge_deduplicates_rerootings_keeping_best():
    graph = _graph()
    # The same undirected a-b tree, rooted at a (one shard) and at b
    # (another shard): one answer, best rooting wins.
    rooted_a = ScoredAnswer(
        _tree(graph, ("a", 0), [("a", 0), ("b", 0)]), 0.4, 0
    )
    rooted_b = ScoredAnswer(
        _tree(graph, ("b", 0), [("b", 0), ("a", 0)]), 0.6, 0
    )
    assert (
        rooted_a.tree.undirected_key() == rooted_b.tree.undirected_key()
    )
    merged = merge_scored_answers([[rooted_a], [rooted_b]], 10)
    assert len(merged) == 1
    assert merged[0].tree.root == ("b", 0)
    assert merged[0].relevance == 0.6


def test_merge_truncates_to_max_results():
    graph = _graph()
    answers = [
        ScoredAnswer(_tree(graph, (n, 0), [(n, 0)]), score, 0)
        for n, score in (("a", 0.1), ("b", 0.9), ("c", 0.5), ("d", 0.7))
    ]
    merged = merge_scored_answers([answers], 2)
    assert [a.relevance for a in merged] == [0.9, 0.7]
    assert merge_scored_answers([answers], 0) == []


def test_merge_breaks_score_ties_deterministically():
    graph = _graph()
    tied = [
        ScoredAnswer(_tree(graph, (n, 0), [(n, 0)]), 0.5, 0)
        for n in ("d", "b", "c", "a")
    ]
    merged = merge_scored_answers([tied], 10)
    roots = [a.tree.root for a in merged]
    assert roots == sorted(roots, key=repr)
