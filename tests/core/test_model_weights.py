"""Tests for graph construction (Sec. 2.2) and the weight policy."""

import pytest

from repro.core.model import build_data_graph, link_tables
from repro.core.weights import WeightPolicy
from repro.errors import GraphError
from repro.relational import Database, execute_script


class TestWeightPolicy:
    def test_defaults(self):
        policy = WeightPolicy()
        assert policy.forward_similarity("writes", "author") == 1.0
        assert policy.backward_weight("writes", "author", 5) == 5.0

    def test_custom_similarities(self):
        policy = WeightPolicy(similarities={("cites", "paper"): 2.0})
        assert policy.forward_similarity("cites", "paper") == 2.0
        assert policy.forward_similarity("writes", "paper") == 1.0

    def test_backward_indegree_floor_is_one(self):
        policy = WeightPolicy()
        assert policy.backward_weight("a", "b", 0) == 1.0

    def test_backward_scaling_disabled(self):
        policy = WeightPolicy(backward_indegree_scaling=False)
        assert policy.backward_weight("a", "b", 100) == 1.0

    def test_merge_min(self):
        assert WeightPolicy().merge(2.0, 5.0) == 2.0

    def test_merge_parallel(self):
        policy = WeightPolicy(merge_rule="parallel")
        assert policy.merge(2.0, 2.0) == pytest.approx(1.0)
        assert policy.merge(1.0, 0.0) == 0.0

    def test_bad_options_rejected(self):
        with pytest.raises(GraphError):
            WeightPolicy(merge_rule="sum")
        with pytest.raises(GraphError):
            WeightPolicy(prestige="fame")
        with pytest.raises(GraphError):
            WeightPolicy(default_similarity=0.0)


class TestBuildDataGraph:
    def test_every_tuple_is_a_node(self, figure1_db):
        graph, stats = build_data_graph(figure1_db)
        assert stats.num_nodes == figure1_db.total_rows()

    def test_forward_and_backward_edges(self, figure1_db):
        graph, _stats = build_data_graph(figure1_db)
        writes0 = ("writes", 0)
        author0 = ("author", 0)
        # Forward: writes -> author at similarity 1.
        assert graph.edge_weight(writes0, author0) == 1.0
        # Backward: author -> writes at IN_writes(author) = 1.
        assert graph.edge_weight(author0, writes0) == 1.0

    def test_backward_weight_counts_per_relation_indegree(self, figure1_db):
        graph, _stats = build_data_graph(figure1_db)
        paper0 = ("paper", 0)
        # Three writes tuples reference the paper.
        for writes_rid in range(3):
            assert graph.edge_weight(paper0, ("writes", writes_rid)) == 3.0

    def test_indegree_prestige(self, figure1_db):
        graph, _stats = build_data_graph(figure1_db)
        assert graph.node_weight(("paper", 0)) == 3.0
        assert graph.node_weight(("author", 0)) == 1.0
        assert graph.node_weight(("writes", 0)) == 0.0

    def test_prestige_none(self, figure1_db):
        graph, _stats = build_data_graph(
            figure1_db, WeightPolicy(prestige="none")
        )
        assert graph.node_weight(("paper", 0)) == 1.0
        assert graph.node_weight(("writes", 0)) == 1.0

    def test_prestige_pagerank(self, figure1_db):
        graph, _stats = build_data_graph(
            figure1_db, WeightPolicy(prestige="pagerank")
        )
        # The paper is referenced by all three writes tuples: highest.
        weights = {node: graph.node_weight(node) for node in graph.nodes()}
        assert max(weights, key=weights.get) == ("paper", 0)

    def test_stats_normalisers(self, figure1_db):
        _graph, stats = build_data_graph(figure1_db)
        assert stats.min_edge_weight == 1.0
        assert stats.max_node_weight == 3.0

    def test_custom_similarity_applied(self, figure1_db):
        policy = WeightPolicy(similarities={("writes", "paper"): 0.5})
        graph, stats = build_data_graph(figure1_db, policy)
        assert graph.edge_weight(("writes", 0), ("paper", 0)) == 0.5
        assert stats.min_edge_weight == 0.5

    def test_self_referencing_tuple_makes_no_edge(self):
        database = Database("selfref")
        execute_script(
            database,
            """
            CREATE TABLE emp (
                id TEXT PRIMARY KEY,
                boss TEXT REFERENCES emp(id)
            );
            INSERT INTO emp VALUES ('ceo', 'ceo');
            """,
        )
        graph, stats = build_data_graph(database)
        assert stats.num_edges == 0

    def test_mutually_referencing_tuples_merge_by_min(self):
        database = Database("mutual", deferred_fk_check=True)
        execute_script(
            database,
            """
            CREATE TABLE person (
                id TEXT PRIMARY KEY,
                spouse TEXT REFERENCES person(id)
            );
            INSERT INTO person VALUES ('a', 'b');
            INSERT INTO person VALUES ('b', 'a');
            """,
        )
        database.check_integrity()
        graph, _stats = build_data_graph(database)
        # Each direction gets candidates: forward 1.0 and backward 1.0
        # (indegree 1); Eq. 1 takes the min -> 1.0.
        assert graph.edge_weight(("person", 0), ("person", 1)) == 1.0
        assert graph.edge_weight(("person", 1), ("person", 0)) == 1.0

    def test_isolated_tuples_still_searchable_nodes(self):
        database = Database("iso")
        execute_script(
            database,
            "CREATE TABLE note (id TEXT PRIMARY KEY, body TEXT);"
            "INSERT INTO note VALUES ('n1', 'standalone text');",
        )
        graph, stats = build_data_graph(database)
        assert graph.has_node(("note", 0))
        assert stats.num_edges == 0
        assert stats.min_edge_weight == 1.0  # safe default


class TestLinkTables:
    def test_pure_link_tables_detected(self, figure1_db):
        assert link_tables(figure1_db) == frozenset({"writes", "cites"})

    def test_tables_with_own_columns_not_links(self):
        database = Database("mix")
        execute_script(
            database,
            """
            CREATE TABLE a (id TEXT PRIMARY KEY);
            CREATE TABLE b (
                id TEXT PRIMARY KEY,
                a_id TEXT REFERENCES a(id)
            );
            """,
        )
        assert link_tables(database) == frozenset()
