"""Integration tests for the BANKS facade (and bidirectional search)."""

import pytest

from repro import BANKS, ScoringConfig, SearchConfig
from repro.core.bidirectional import bidirectional_search
from repro.errors import EmptyQueryError


class TestFacade:
    def test_figure2_answer(self, figure1_banks):
        answers = figure1_banks.search("soumen sunita")
        assert answers, "no answers for the paper's flagship query"
        top = answers[0].tree
        assert top.root == ("paper", 0)
        assert ("author", 0) in top.nodes
        assert ("author", 1) in top.nodes
        assert top.size() == 5

    def test_ranks_are_sequential(self, figure1_banks):
        answers = figure1_banks.search("soumen sunita byron")
        assert [a.rank for a in answers] == list(range(len(answers)))

    def test_link_tables_excluded_as_roots_by_default(self, figure1_banks):
        assert figure1_banks.search_config.excluded_root_tables == frozenset(
            {"writes", "cites"}
        )

    def test_auto_exclusion_can_be_disabled(self, figure1_db):
        banks = BANKS(figure1_db, auto_exclude_link_roots=False)
        assert banks.search_config.excluded_root_tables == frozenset()

    def test_render_contains_labels(self, figure1_banks):
        answers = figure1_banks.search("soumen sunita")
        rendered = answers[0].render()
        assert "Soumen Chakrabarti" in rendered
        assert "Mining Surprising Patterns" in rendered
        assert rendered.count("*") == 2  # the two keyword leaves

    def test_unknown_keyword_returns_empty(self, figure1_banks):
        assert figure1_banks.search("xylophone") == []

    def test_empty_query_raises(self, figure1_banks):
        with pytest.raises(EmptyQueryError):
            figure1_banks.search("   ")

    def test_scoring_override_per_query(self, figure1_banks):
        default = figure1_banks.search("soumen sunita")
        prestige_only = figure1_banks.search(
            "soumen sunita", scoring=ScoringConfig(lambda_weight=1.0)
        )
        assert default and prestige_only
        assert default[0].relevance != prestige_only[0].relevance

    def test_config_override_kwargs(self, figure1_banks):
        answers = figure1_banks.search("soumen sunita byron", max_results=1)
        assert len(answers) == 1

    def test_metadata_query(self, figure1_banks):
        answers = figure1_banks.search("author sunita")
        assert answers
        # Sunita's author node covers both terms -> single-node answer.
        assert answers[0].tree.size() == 1
        assert answers[0].tree.root == ("author", 1)

    def test_search_summarized_groups(self, figure1_banks):
        grouped = figure1_banks.search_summarized("soumen sunita")
        assert len(grouped) >= 1
        for signature, group in grouped.items():
            assert "paper" in signature
            assert all(hasattr(a, "relevance") for a in group)

    def test_node_label_fallbacks(self, figure1_banks):
        # writes tuples have no non-key text: label falls back to keys.
        label = figure1_banks.node_label(("writes", 0))
        assert label.startswith("writes:")

    def test_approx_query_end_to_end(self, figure1_db):
        figure1_db.insert("paper", ["P88", "Concurrency in 1988"])
        banks = BANKS(figure1_db)
        answers = banks.search("concurrency approx(1988)")
        assert answers
        assert answers[0].tree.root == ("paper", 1)


class TestBidirectional:
    def test_agrees_with_backward_on_selective_queries(self, figure1_banks):
        # All-selective queries fall back to backward search.
        backward = figure1_banks.search("soumen sunita")
        bidirectional = figure1_banks.search(
            "soumen sunita", bidirectional=True
        )
        assert backward[0].tree.undirected_key() == (
            bidirectional[0].tree.undirected_key()
        )

    def test_metadata_query_bidirectional(self, biblio_banks_session,
                                          bibliography_session):
        _db, anecdotes = bibliography_session
        answers = biblio_banks_session.search(
            "author sudarshan", bidirectional=True
        )
        assert answers
        assert answers[0].tree.root == anecdotes.sudarshan

    def test_answers_valid_trees(self, biblio_banks_session):
        answers = biblio_banks_session.search(
            "mohan recovery", bidirectional=True, max_results=5
        )
        for answer in answers:
            answer.tree.validate()
            assert 0.0 <= answer.relevance <= 1.0

    def test_empty_groups_return_no_answers(self, biblio_banks_session):
        sets_ = biblio_banks_session.resolve("xylophone mohan")
        result = bidirectional_search(
            biblio_banks_session.graph,
            sets_,
            biblio_banks_session.scorer,
            SearchConfig(),
        )
        assert result == []
