"""Tests for answer summarisation by tree structure (Sec. 7)."""

from repro.core.answer import AnswerTree
from repro.core.search import ScoredAnswer
from repro.core.summarize import structure_signature, summarize_answers
from repro.graph.digraph import DiGraph


def data_graph():
    graph = DiGraph()
    edges = [
        (("paper", 0), ("writes", 0)), (("writes", 0), ("author", 0)),
        (("paper", 0), ("writes", 1)), (("writes", 1), ("author", 1)),
        (("paper", 1), ("writes", 2)), (("writes", 2), ("author", 2)),
        (("paper", 1), ("writes", 3)), (("writes", 3), ("author", 3)),
    ]
    for source, target in edges:
        graph.add_edge(source, target, 1.0)
    return graph


def star(graph, paper, writes_pair, authors_pair):
    return AnswerTree.from_paths(
        graph,
        ("paper", paper),
        [
            [("paper", paper), ("writes", writes_pair[0]),
             ("author", authors_pair[0])],
            [("paper", paper), ("writes", writes_pair[1]),
             ("author", authors_pair[1])],
        ],
    )


class TestSignature:
    def test_same_shape_same_signature(self):
        graph = data_graph()
        tree_a = star(graph, 0, (0, 1), (0, 1))
        tree_b = star(graph, 1, (2, 3), (2, 3))
        assert structure_signature(tree_a) == structure_signature(tree_b)

    def test_sibling_order_invariant(self):
        graph = data_graph()
        tree_a = star(graph, 0, (0, 1), (0, 1))
        tree_b = star(graph, 0, (1, 0), (1, 0))
        assert structure_signature(tree_a) == structure_signature(tree_b)

    def test_different_shapes_differ(self):
        graph = data_graph()
        two_leaf = star(graph, 0, (0, 1), (0, 1))
        single = AnswerTree.from_paths(
            graph,
            ("paper", 0),
            [[("paper", 0), ("writes", 0), ("author", 0)]],
        )
        assert structure_signature(two_leaf) != structure_signature(single)

    def test_signature_readable(self):
        graph = data_graph()
        tree = star(graph, 0, (0, 1), (0, 1))
        assert structure_signature(tree) == (
            "paper(writes(author),writes(author))"
        )


class TestGrouping:
    def test_groups_preserve_order(self):
        graph = data_graph()
        answers = [
            ScoredAnswer(star(graph, 0, (0, 1), (0, 1)), 0.9, 0),
            ScoredAnswer(
                AnswerTree.from_paths(
                    graph,
                    ("paper", 1),
                    [[("paper", 1), ("writes", 2), ("author", 2)]],
                ),
                0.8,
                1,
            ),
            ScoredAnswer(star(graph, 1, (2, 3), (2, 3)), 0.7, 2),
        ]
        grouped = summarize_answers(answers)
        signatures = list(grouped)
        assert len(signatures) == 2
        # First group is the one whose best answer came first.
        assert grouped[signatures[0]][0].order == 0
        assert [a.order for a in grouped[signatures[0]]] == [0, 2]

    def test_empty_input(self):
        assert summarize_answers([]) == {}
