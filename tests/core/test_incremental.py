"""Tests for IncrementalBANKS: per-delta behaviour, the rebuild
equivalence property over random mutation sequences, and the
three-path write equivalence (direct mutation vs the delta-log
snapshot path vs the deep-copy snapshot path)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.incremental import IncrementalBANKS
from repro.core.model import build_data_graph
from repro.core.weights import WeightPolicy
from repro.errors import BatchMutationError, GraphError, IntegrityError
from repro.relational import Database, execute_script


def make_db() -> Database:
    database = Database("inc")
    execute_script(
        database,
        """
        CREATE TABLE author (aid TEXT PRIMARY KEY, name TEXT NOT NULL);
        CREATE TABLE paper (pid TEXT PRIMARY KEY, title TEXT NOT NULL);
        CREATE TABLE writes (
            aid TEXT NOT NULL REFERENCES author(aid),
            pid TEXT NOT NULL REFERENCES paper(pid)
        );
        INSERT INTO author VALUES ('a1', 'ada lovelace');
        INSERT INTO author VALUES ('a2', 'alan turing');
        INSERT INTO paper VALUES ('p1', 'computing machinery');
        INSERT INTO writes VALUES ('a1', 'p1');
        """,
    )
    return database


def graph_snapshot(graph):
    nodes = {node: graph.node_weight(node) for node in graph.nodes()}
    edges = {
        (source, target): weight for source, target, weight in graph.edges()
    }
    return nodes, edges


def assert_matches_rebuild(incremental: IncrementalBANKS) -> None:
    """The incremental graph must equal a from-scratch construction."""
    fresh_graph, fresh_stats = build_data_graph(
        incremental.database, incremental.weight_policy
    )
    inc_nodes, inc_edges = graph_snapshot(incremental.graph)
    fresh_nodes, fresh_edges = graph_snapshot(fresh_graph)
    assert inc_nodes == fresh_nodes
    assert inc_edges == fresh_edges
    incremental._refresh_stats()
    assert incremental.stats == fresh_stats


class TestInsert:
    def test_insert_adds_node_and_edges(self):
        banks = IncrementalBANKS(make_db())
        rid = banks.insert("writes", ["a2", "p1"])
        assert banks.graph.has_node(rid)
        assert banks.graph.has_edge(rid, ("author", 1))
        assert banks.graph.has_edge(rid, ("paper", 0))
        assert_matches_rebuild(banks)

    def test_insert_reweights_sibling_back_edges(self):
        """A second writes tuple for p1 doubles the paper's back-edge
        weight to the first writes tuple (IN_writes(p1) went 1 -> 2)."""
        banks = IncrementalBANKS(make_db())
        paper = ("paper", 0)
        first_writes = ("writes", 0)
        assert banks.graph.edge_weight(paper, first_writes) == 1.0
        banks.insert("writes", ["a2", "p1"])
        assert banks.graph.edge_weight(paper, first_writes) == 2.0
        assert_matches_rebuild(banks)

    def test_insert_updates_prestige(self):
        banks = IncrementalBANKS(make_db())
        paper = ("paper", 0)
        before = banks.graph.node_weight(paper)
        banks.insert("writes", ["a2", "p1"])
        assert banks.graph.node_weight(paper) == before + 1

    def test_insert_indexes_text(self):
        banks = IncrementalBANKS(make_db())
        rid = banks.insert("paper", ["p2", "symbolic reasoning"])
        assert rid in banks.index.lookup_nodes("symbolic")
        answers = banks.search("symbolic")
        assert answers and answers[0].tree.root == rid

    def test_insert_dict(self):
        banks = IncrementalBANKS(make_db())
        rid = banks.insert_dict("paper", {"pid": "p9", "title": "lambda calculus"})
        assert banks.search("lambda")[0].tree.root == rid
        assert_matches_rebuild(banks)

    def test_insert_invalid_fk_leaves_graph_untouched(self):
        banks = IncrementalBANKS(make_db())
        nodes_before, edges_before = graph_snapshot(banks.graph)
        with pytest.raises(IntegrityError):
            banks.insert("writes", ["ghost", "p1"])
        assert graph_snapshot(banks.graph) == (nodes_before, edges_before)


class TestDelete:
    def test_delete_removes_node_and_edges(self):
        banks = IncrementalBANKS(make_db())
        writes = ("writes", 0)
        banks.delete(writes)
        assert not banks.graph.has_node(writes)
        assert_matches_rebuild(banks)

    def test_delete_reweights_remaining_back_edges(self):
        banks = IncrementalBANKS(make_db())
        second = banks.insert("writes", ["a2", "p1"])
        paper = ("paper", 0)
        assert banks.graph.edge_weight(paper, second) == 2.0
        banks.delete(("writes", 0))
        assert banks.graph.edge_weight(paper, second) == 1.0
        assert_matches_rebuild(banks)

    def test_delete_referenced_tuple_refused_graph_intact(self):
        banks = IncrementalBANKS(make_db())
        snapshot = graph_snapshot(banks.graph)
        with pytest.raises(IntegrityError):
            banks.delete(("paper", 0))
        assert graph_snapshot(banks.graph) == snapshot
        # The index must also still find the paper.
        assert banks.search("computing")

    def test_deleted_text_no_longer_searchable(self):
        banks = IncrementalBANKS(make_db())
        banks.delete(("writes", 0))
        banks.delete(("paper", 0))
        assert banks.search("computing") == []


class TestUpdate:
    def test_update_moves_reference(self):
        banks = IncrementalBANKS(make_db())
        banks.insert("paper", ["p2", "symbolic reasoning"])
        writes = ("writes", 0)
        banks.update(writes, {"pid": "p2"})
        assert banks.graph.has_edge(writes, ("paper", 1))
        assert not banks.graph.has_edge(writes, ("paper", 0))
        assert_matches_rebuild(banks)

    def test_update_text_reindexes(self):
        banks = IncrementalBANKS(make_db())
        banks.update(("paper", 0), {"title": "deep learning"})
        assert banks.search("computing") == []
        answers = banks.search("deep")
        assert answers and answers[0].tree.root == ("paper", 0)
        assert_matches_rebuild(banks)

    def test_update_prestige_follows(self):
        banks = IncrementalBANKS(make_db())
        banks.insert("paper", ["p2", "symbolic reasoning"])
        banks.update(("writes", 0), {"pid": "p2"})
        assert banks.graph.node_weight(("paper", 0)) == 0.0
        assert banks.graph.node_weight(("paper", 1)) == 1.0

    def test_failed_update_leaves_everything_intact(self):
        banks = IncrementalBANKS(make_db())
        snapshot = graph_snapshot(banks.graph)
        with pytest.raises(IntegrityError):
            banks.update(("writes", 0), {"pid": "ghost"})
        assert graph_snapshot(banks.graph) == snapshot
        assert banks.search("computing")


class TestConfiguration:
    def test_pagerank_prestige_refused(self):
        with pytest.raises(GraphError):
            IncrementalBANKS(
                make_db(), weight_policy=WeightPolicy(prestige="pagerank")
            )

    def test_none_prestige_supported(self):
        banks = IncrementalBANKS(
            make_db(), weight_policy=WeightPolicy(prestige="none")
        )
        banks.insert("writes", ["a2", "p1"])
        assert_matches_rebuild(banks)

    def test_parallel_merge_rule_supported(self):
        banks = IncrementalBANKS(
            make_db(), weight_policy=WeightPolicy(merge_rule="parallel")
        )
        banks.insert("writes", ["a2", "p1"])
        assert_matches_rebuild(banks)

    def test_stats_refresh_after_mutation(self):
        banks = IncrementalBANKS(make_db())
        banks.insert("writes", ["a2", "p1"])
        banks._refresh_stats()
        fresh_graph, fresh_stats = build_data_graph(
            banks.database, banks.weight_policy
        )
        assert banks.stats == fresh_stats


# -- property: any mutation sequence matches a rebuild ---------------------------

_operations = st.lists(
    st.tuples(
        st.sampled_from(["insert_paper", "insert_writes", "delete", "update_title"]),
        st.integers(0, 9),
    ),
    min_size=1,
    max_size=12,
)


def _run_operation(banks: IncrementalBANKS, op: str, argument: int, paper_count: int):
    """Apply one random operation to a facade; returns the new paper
    count (insert decisions must be identical across the three write
    paths, so everything derives from the *facade's* current state)."""
    if op == "insert_paper":
        paper_count += 1
        banks.insert("paper", [f"p{paper_count}", f"title word{argument}"])
    elif op == "insert_writes":
        authors = list(banks.database.table("author").rids())
        papers = list(banks.database.table("paper").rids())
        if authors and papers:
            author_row = banks.database.table("author").row(
                authors[argument % len(authors)]
            )
            paper_row = banks.database.table("paper").row(
                papers[argument % len(papers)]
            )
            banks.insert("writes", [author_row["aid"], paper_row["pid"]])
    elif op == "delete":
        writes = list(banks.database.table("writes").rids())
        if writes:
            banks.delete(("writes", writes[argument % len(writes)]))
    elif op == "update_title":
        papers = list(banks.database.table("paper").rids())
        if papers:
            banks.update(
                ("paper", papers[argument % len(papers)]),
                {"title": f"renamed word{argument}"},
            )
    return paper_count


@settings(deadline=None, max_examples=40)
@given(operations=_operations)
def test_property_mutations_match_rebuild(operations):
    banks = IncrementalBANKS(make_db())
    paper_count = 1
    for op, argument in operations:
        try:
            paper_count = _run_operation(banks, op, argument, paper_count)
        except IntegrityError:
            pass  # legitimately refused mutations leave state consistent
    assert_matches_rebuild(banks)
    # The index must agree with a fresh one on every vocabulary term.
    from repro.text.inverted_index import InvertedIndex

    fresh_index = InvertedIndex(banks.database)
    assert set(banks.index.vocabulary()) == set(fresh_index.vocabulary())
    for term in fresh_index.vocabulary():
        assert set(p.node for p in banks.index.lookup(term)) == set(
            p.node for p in fresh_index.lookup(term)
        )


# -- property: delta-log, deep-copy and direct paths are one write path ----------


@settings(deadline=None, max_examples=25)
@given(operations=_operations)
def test_property_delta_log_deep_copy_and_rebuild_agree(operations):
    """Drive the same random mutation sequence through (a) direct
    in-place mutation, (b) a delta-mode SnapshotStore and (c) a
    deep-mode SnapshotStore; all three must converge to identical node
    sets, edge sets, weights, prestige and top-k answers — and match a
    full rebuild."""
    from repro.serve.snapshot import SnapshotStore
    from repro.shard.stitch import graphs_equal

    direct = IncrementalBANKS(make_db())
    delta_store = SnapshotStore(IncrementalBANKS(make_db()), copy_mode="delta")
    deep_store = SnapshotStore(IncrementalBANKS(make_db()), copy_mode="deep")

    direct_papers = 1
    for op, argument in operations:
        try:
            direct_papers = _run_operation(direct, op, argument, direct_papers)
        except IntegrityError:
            pass
        for store in (delta_store, deep_store):
            # Each store keeps its own paper counter equal to the
            # direct one by construction (same op sequence, and the
            # counter only moves on successful insert_paper ops, which
            # never fail with IntegrityError on this schema).
            try:
                store.mutate(
                    lambda facade, op=op, argument=argument: _run_operation(
                        facade, op, argument, direct_papers - 1
                    )
                )
            except BatchMutationError:  # pragma: no cover - defensive
                raise
            except IntegrityError:
                pass

    delta_facade = delta_store.current().facade
    deep_facade = deep_store.current().facade
    for facade in (delta_facade, deep_facade):
        assert graphs_equal(direct.graph, facade.graph)
        direct._refresh_stats()
        facade._refresh_stats()
        assert direct.stats == facade.stats
        assert set(direct.index.vocabulary()) == set(facade.index.vocabulary())
    assert_matches_rebuild(delta_facade)
    for query in ("title", "renamed word3", "ada", "computing"):
        expected = [
            (a.tree.root, round(a.relevance, 9)) for a in direct.search(query)
        ]
        for facade in (delta_facade, deep_facade):
            got = [
                (a.tree.root, round(a.relevance, 9))
                for a in facade.search(query)
            ]
            assert got == expected, query
