"""The answer-iterator protocol: streaming, early stop, observability.

``BANKS.search_iter`` is the primary streaming surface (``search`` and
the SSE tier are built on it); these tests pin the contract — same
answers as ``search`` in the same order, early termination actually
stops the expansion, and the CSR kernel keeps filling the profile
counters and trace spans the observability tier reads.
"""

from __future__ import annotations

from repro.core.banks import BANKS
from repro.core.incremental import IncrementalBANKS
from repro.graph.csr import CSROverlayGraph
from repro.obs import SearchProfile, Trace, span_tree
from repro.relational import Database, execute_script
from tests.conftest import FIGURE1_SQL


def make_db() -> Database:
    database = Database("figure1")
    execute_script(database, FIGURE1_SQL)
    return database


def make_banks(**options) -> BANKS:
    return BANKS(make_db(), **options)


class TestSearchIter:
    def test_yields_search_results_in_order(self):
        banks = make_banks()
        expected = banks.search("soumen sunita")
        streamed = list(banks.search_iter("soumen sunita"))
        assert [(a.root, a.relevance, a.rank) for a in streamed] == [
            (a.root, a.relevance, a.rank) for a in expected
        ]

    def test_frozen_facade_streams_identically_to_reference(self):
        frozen = make_banks(freeze=True)
        reference = make_banks(freeze=False)
        assert isinstance(frozen.graph, CSROverlayGraph)
        assert [
            (a.root, a.relevance)
            for a in frozen.search_iter("soumen sunita")
        ] == [
            (a.root, a.relevance)
            for a in reference.search_iter("soumen sunita")
        ]

    def test_early_termination_stops_expansion(self):
        banks = make_banks()
        full = SearchProfile()
        list(banks.search_iter("soumen sunita", profile=full))
        partial = SearchProfile()
        iterator = banks.search_iter("soumen sunita", profile=partial)
        first = next(iterator)
        iterator.close()  # abandon: the kernel generator must stop
        assert first.rank == 0
        assert 0 < partial.heap_pops <= full.heap_pops
        assert partial.expansion_seconds > 0.0

    def test_incremental_facade_refreshes_stats_before_streaming(self):
        banks = IncrementalBANKS(make_db())
        banks.insert("author", ["NewA", "Fresh Author"])
        assert banks._stats_dirty
        answers = list(banks.search_iter("soumen"))
        assert not banks._stats_dirty
        assert answers

    def test_on_answer_streams_the_returned_list(self):
        banks = make_banks()
        streamed = []
        answers = banks.search(
            "soumen sunita", on_answer=streamed.append
        )
        assert [(a.root, a.rank) for a in streamed] == [
            (a.root, a.rank) for a in answers
        ]


class TestCSRObservability:
    def test_profile_counters_populated_on_csr_kernel(self):
        banks = make_banks(freeze=True)
        profile = SearchProfile()
        answers = banks.search("soumen sunita", profile=profile)
        assert answers
        assert profile.iterators > 0
        assert profile.heap_pops > 0
        assert profile.nodes_expanded > 0
        assert profile.edges_relaxed > 0
        assert profile.trees_considered > 0
        assert profile.answers_emitted == len(answers)
        assert profile.expansion_seconds > 0.0

    def test_trace_spans_form_one_rooted_tree(self):
        banks = make_banks(freeze=True)
        trace = Trace()
        root = trace.begin("query")
        profile = SearchProfile()
        banks.search(
            "soumen sunita",
            trace=trace,
            trace_parent=root.span_id,
            profile=profile,
        )
        trace.end(root)
        roots = span_tree(trace.export())
        assert len(roots) == 1
        exported = trace.export()
        names = {span["name"] for span in exported}
        assert {"query", "search.resolve", "search.kernel"} <= names
        kernel = next(
            span for span in exported if span["name"] == "search.kernel"
        )
        assert kernel["attrs"]["answers"] > 0
        assert kernel["attrs"]["heap_pops"] == profile.heap_pops
