"""Tests for structure-constrained continuation search (Sec. 7:
"look for further answers with a particular tree structure")."""

from __future__ import annotations

import pytest

from repro import BANKS
from repro.core.summarize import structure_signature
from repro.datasets import generate_bibliography


@pytest.fixture(scope="module")
def banks():
    database, _ = generate_bibliography(papers=80, authors=50, seed=4)
    return BANKS(database)


class TestSearchStructure:
    def test_drill_into_summarized_group(self, banks):
        """Keys of search_summarized are valid drill-down signatures."""
        grouped = banks.search_summarized("soumen sunita")
        assert grouped
        signature = next(iter(grouped))
        drilled = banks.search_structure("soumen sunita", signature)
        assert drilled
        for answer in drilled:
            assert structure_signature(answer.tree) == signature

    def test_only_matching_structures_returned(self, banks):
        """The paper-rooted star: paper(writes(author),writes(author))."""
        signature = "paper(writes(author),writes(author))"
        answers = banks.search_structure("soumen sunita", signature)
        assert answers
        for answer in answers:
            assert structure_signature(answer.tree) == signature
            assert answer.tree.root[0] == "paper"

    def test_finds_more_than_plain_search(self, banks):
        """The continuation digs past the default top-10: the number of
        same-structure answers found must be >= those in the top 10."""
        signature = "paper(writes(author),writes(author))"
        plain = banks.search("soumen sunita")
        in_top = sum(
            1
            for answer in plain
            if structure_signature(answer.tree) == signature
        )
        continued = banks.search_structure(
            "soumen sunita", signature, max_results=10
        )
        assert len(continued) >= in_top

    def test_max_results_respected(self, banks):
        signature = "paper(writes(author),writes(author))"
        answers = banks.search_structure(
            "soumen sunita", signature, max_results=1
        )
        assert len(answers) == 1

    def test_ranks_are_contiguous(self, banks):
        signature = "paper(writes(author),writes(author))"
        answers = banks.search_structure("soumen sunita", signature)
        assert [answer.rank for answer in answers] == list(
            range(len(answers))
        )

    def test_unknown_structure_empty(self, banks):
        answers = banks.search_structure(
            "soumen sunita", "cites(paper,paper,paper)"
        )
        assert answers == []

    def test_trees_validate(self, banks):
        grouped = banks.search_summarized("sunita temporal")
        for signature in grouped:
            for answer in banks.search_structure(
                "sunita temporal", signature, max_results=3
            ):
                answer.tree.validate()
