"""Tests for query parsing and keyword-to-node resolution."""

import pytest

from repro.core.query import parse_query, resolve_query, resolve_term
from repro.errors import EmptyQueryError, QueryError
from repro.text.inverted_index import InvertedIndex


class TestParse:
    def test_plain_keywords(self):
        parsed = parse_query("soumen sunita")
        assert len(parsed) == 2
        assert parsed.terms[0].kind == "keyword"
        assert parsed.terms[0].term == "soumen"

    def test_case_folded(self):
        parsed = parse_query("MOHAN")
        assert parsed.terms[0].term == "mohan"

    def test_attribute_syntax(self):
        parsed = parse_query("author:Levy")
        term = parsed.terms[0]
        assert term.kind == "attribute"
        assert term.attribute == "author"
        assert term.term == "levy"

    def test_approx_syntax(self):
        parsed = parse_query("concurrency approx(1988)")
        assert parsed.terms[1].kind == "approx"
        assert parsed.terms[1].number == 1988

    def test_malformed_attribute_rejected(self):
        with pytest.raises(QueryError):
            parse_query("author: levy")  # empty keyword part

    def test_empty_query_rejected(self):
        with pytest.raises(EmptyQueryError):
            parse_query("   ")


class TestResolve:
    def test_keyword_resolution(self, figure1_db):
        index = InvertedIndex(figure1_db)
        parsed = parse_query("sunita")
        (nodes,) = resolve_query(parsed, index, figure1_db)
        assert nodes == {("author", 1)}

    def test_metadata_resolution(self, figure1_db):
        index = InvertedIndex(figure1_db)
        parsed = parse_query("author")
        (nodes,) = resolve_query(parsed, index, figure1_db)
        assert {("author", 0), ("author", 1), ("author", 2)} <= nodes

    def test_metadata_disabled(self, figure1_db):
        index = InvertedIndex(figure1_db)
        parsed = parse_query("author")
        (nodes,) = resolve_query(
            parsed, index, figure1_db, include_metadata=False
        )
        assert nodes == set()

    def test_attribute_restriction(self, figure1_db):
        index = InvertedIndex(figure1_db)
        # 'name:sunita' restricts to the author.name column.
        (nodes,) = resolve_query(
            parse_query("name:sunita"), index, figure1_db
        )
        assert nodes == {("author", 1)}
        # 'title:sunita' finds nothing.
        (nodes,) = resolve_query(
            parse_query("title:sunita"), index, figure1_db
        )
        assert nodes == set()

    def test_approx_resolution(self, figure1_db):
        figure1_db.insert("paper", ["P1987", "Concurrency results of 1987"])
        figure1_db.insert("paper", ["P1993", "Concurrency results of 1993"])
        index = InvertedIndex(figure1_db)
        (nodes,) = resolve_query(
            parse_query("approx(1988)"), index, figure1_db
        )
        assert ("paper", 1) in nodes  # 1987 within the default window
        assert ("paper", 2) not in nodes  # 1993 outside

    def test_fuzzy_fallback(self, figure1_db):
        index = InvertedIndex(figure1_db)
        term = parse_query("chakraborti").terms[0]  # misspelled
        assert resolve_term(term, index, figure1_db, fuzzy=False) == set()
        nodes = resolve_term(term, index, figure1_db, fuzzy=True)
        assert ("author", 0) in nodes

    def test_fuzzy_not_used_when_exact_hits(self, figure1_db):
        index = InvertedIndex(figure1_db)
        term = parse_query("sunita").terms[0]
        nodes = resolve_term(term, index, figure1_db, fuzzy=True)
        assert nodes == {("author", 1)}
