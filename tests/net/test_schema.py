"""The v1 wire schema: strict decoding, lossless tree round-trips."""

from __future__ import annotations

import pytest

from repro.core.banks import BANKS
from repro.errors import NetError
from repro.net.schema import (
    decode_request,
    parse_sse,
    sse_event,
    tree_from_wire,
    tree_to_wire,
)


class TestDecodeRequest:
    def test_defaults(self):
        wire = decode_request({"query": "soumen sunita"})
        assert wire.query == "soumen sunita"
        assert wire.k == 10 and wire.offset == 0
        assert wire.consistency == "eventual"
        assert wire.trace_id is None

    def test_all_fields(self):
        wire = decode_request(
            {
                "query": "mohan",
                "k": 3,
                "offset": 2,
                "consistency": "bounded_staleness",
                "staleness_bound": 1,
                "deadline": 0.5,
                "trace_id": "abc",
            }
        )
        assert (wire.k, wire.offset) == (3, 2)
        assert wire.consistency == "bounded_staleness"
        assert wire.staleness_bound == 1
        assert wire.deadline == 0.5
        assert wire.trace_id == "abc"

    def test_unknown_fields_are_refused(self):
        with pytest.raises(NetError) as caught:
            decode_request({"query": "x", "kk": 5})
        assert caught.value.status == 400
        assert "kk" in str(caught.value)

    @pytest.mark.parametrize(
        "payload",
        [
            [],
            {},
            {"query": ""},
            {"query": "   "},
            {"query": 7},
            {"query": "x", "k": 0},
            {"query": "x", "k": "many"},
            {"query": "x", "offset": -1},
            {"query": "x", "staleness_bound": "soon"},
            {"query": "x", "deadline": "never"},
            {"query": "x", "trace_id": 9},
        ],
    )
    def test_malformed_payloads_are_400(self, payload):
        with pytest.raises(NetError) as caught:
            decode_request(payload)
        assert caught.value.status == 400


class TestTreeRoundTrip:
    def test_answer_tree_survives_the_wire(self, figure1_db):
        answers = BANKS(figure1_db).search("soumen sunita", max_results=3)
        assert answers
        for answer in answers:
            tree = answer.tree
            clone = tree_from_wire(tree_to_wire(answer.tree))
            assert clone.root == tree.root
            assert clone.parent == tree.parent
            assert clone.keyword_nodes == tree.keyword_nodes
            assert clone.weight == pytest.approx(tree.weight)
            # The wire payload itself is plain JSON data.
            import json

            json.dumps(tree_to_wire(tree))

    def test_malformed_wire_trees_are_refused(self):
        with pytest.raises(NetError):
            tree_from_wire({"edges": []})
        with pytest.raises(NetError):
            tree_from_wire({"root": ["t", 0], "edges": [["bad"]]})
        with pytest.raises(NetError):
            tree_from_wire({"root": "not-a-pair"})


class TestSse:
    def test_frame_format_and_parse_inverse(self):
        frame = sse_event("answer", {"rank": 0, "relevance": 0.5})
        text = frame.decode("utf-8")
        assert text.startswith("event: answer\n")
        assert text.endswith("\n\n")
        events = parse_sse(text.splitlines())
        assert events == [("answer", {"rank": 0, "relevance": 0.5})]

    def test_parse_multiple_frames(self):
        stream = (
            sse_event("answer", {"rank": 0})
            + sse_event("answer", {"rank": 1})
            + sse_event("result", {"total": 2})
        ).decode("utf-8")
        events = parse_sse(stream.splitlines())
        assert [name for name, _ in events] == ["answer", "answer", "result"]
        assert events[-1][1] == {"total": 2}
