"""RemoteReplica: a ReplicaSet front end balancing over HTTP servers.

Topology under test: one live primary writing a WAL, two follower
clusters tailing it — each behind a real loopback HttpServer — and a
replicated front-end Cluster whose spec names the two server URLs.
The front end must balance, read epochs from ``/v1/health``, honor
per-request consistency, and fail over when a remote goes away.
"""

from __future__ import annotations

import time

import pytest

from repro.cluster import Cluster, ClusterSpec, QueryRequest
from repro.net import HttpServer, NetConfig, RemoteReplica

TOKEN = "remote-secret"


@pytest.fixture()
def remote_pair(tmp_path):
    """(primary, [servers], front) — everything torn down after."""
    wal = str(tmp_path / "wal")
    primary = Cluster(
        ClusterSpec(db="demo:university", live=True, wal_path=wal)
    )
    followers, servers = [], []
    for _ in range(2):
        follower = Cluster(
            ClusterSpec(db="demo:university", follow=True, wal_path=wal)
        ).start()
        server = HttpServer(
            follower, NetConfig(tokens=(TOKEN,))
        ).start_background()
        followers.append(follower)
        servers.append(server)
    front = Cluster(
        ClusterSpec(
            db="demo:university",
            topology="replicated",
            remote_replicas=tuple(s.url for s in servers),
            remote_token=TOKEN,
            wal_path=wal,
        )
    )
    try:
        yield primary, servers, front
    finally:
        front.close()
        for server in servers:
            server.stop()
        for follower in followers:
            follower.close()
        primary.close()


def _wait_for_epoch(front, epoch, timeout=8.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        handles = front.backend._handles
        if all(h.applied_epoch >= epoch for h in handles):
            return
        time.sleep(0.1)
    raise AssertionError(f"remote replicas never reached epoch {epoch}")


class TestRemoteReplicaSet:
    def test_backend_is_remote_and_balances(self, remote_pair):
        _primary, _servers, front = remote_pair
        assert front.backend.backend == "remote"
        served = [
            front.query(QueryRequest("alice seminar", k=2)).replica
            for _ in range(4)
        ]
        assert set(served) == {0, 1}

    def test_remote_answers_match_the_primary(self, remote_pair):
        primary, _servers, front = remote_pair
        reference = [
            (a.tree.root, round(a.relevance, 9))
            for a in primary.query(QueryRequest("alice seminar", k=3)).answers
        ]
        for _ in range(2):  # one read per remote
            result = front.query(QueryRequest("alice seminar", k=3))
            assert [
                (a.tree.root, round(a.relevance, 9)) for a in result.answers
            ] == reference

    def test_writes_flow_through_the_wal(self, remote_pair):
        primary, _servers, front = remote_pair
        planted = primary.insert(
            "student", ["S950", "Remote Freshness", "BIGDEPT"]
        )
        _wait_for_epoch(front, 1)
        result = front.query(
            QueryRequest(
                "remote freshness",
                k=3,
                consistency="bounded_staleness",
                staleness_bound=0,
            )
        )
        assert any(a.tree.root == planted for a in result.answers)
        assert result.epoch >= 1

    def test_failover_to_the_surviving_remote(self, remote_pair):
        _primary, servers, front = remote_pair
        servers[0].stop()
        for _ in range(4):
            result = front.query(QueryRequest("alice seminar", k=2))
            assert result.replica in (1, None)

    def test_monotonic_reads_over_http(self, remote_pair):
        primary, _servers, front = remote_pair
        primary.insert("student", ["S951", "Floor Remote", "BIGDEPT"])
        _wait_for_epoch(front, 1)
        floor = front.query(
            QueryRequest("alice seminar", k=2, consistency="primary")
        ).epoch
        result = front.query(
            QueryRequest("alice seminar", k=2, consistency="monotonic_reads")
        )
        assert result.epoch >= min(floor, 1)


class TestRemoteReplicaUnit:
    def test_health_backed_epoch_and_liveness(self, remote_pair):
        _primary, servers, _front = remote_pair
        replica = RemoteReplica(servers[0].url, index=0, token=TOKEN)
        assert replica.alive
        assert replica.applied_epoch == 0
        replica.kill()
        assert not replica.alive
        from repro.errors import ClusterError

        with pytest.raises(ClusterError):
            replica.search_scored("alice")

    def test_transport_failure_is_a_cluster_error(self):
        from repro.errors import ClusterError

        replica = RemoteReplica("http://127.0.0.1:9")  # discard port
        with pytest.raises(ClusterError):
            replica.search_scored("alice")
        assert not replica.alive
        assert replica.applied_epoch == 0


class TestSpecValidation:
    def test_remote_replicas_need_replicated_topology(self):
        from repro.errors import ClusterError

        with pytest.raises(ClusterError):
            ClusterSpec(
                db="demo:university",
                remote_replicas=("http://127.0.0.1:8001",),
            )

    def test_remote_replicas_conflict_with_local_replicas(self):
        from repro.errors import ClusterError

        with pytest.raises(ClusterError):
            ClusterSpec(
                db="demo:university",
                topology="replicated",
                replicas=2,
                remote_replicas=("http://127.0.0.1:8001",),
            )

    def test_remote_urls_must_be_http(self):
        from repro.errors import ClusterError

        with pytest.raises(ClusterError):
            ClusterSpec(
                db="demo:university",
                topology="replicated",
                remote_replicas=("ftp://127.0.0.1:8001",),
            )
