"""End-to-end tests of the HTTP tier over real loopback sockets.

One bibliography cluster behind one server serves the whole module;
the rate-limit test brings up its own tightly-budgeted server so the
429s never bleed into other tests' budgets.
"""

from __future__ import annotations

import json
import http.client

import pytest

from repro.cluster import Cluster, ClusterSpec, QueryRequest
from repro.datasets import DEMO_QUERY_SETS
from repro.errors import NetError
from repro.net import BanksClient, HttpServer, NetConfig

TOKEN = "test-token-1"
DEMO_QUERIES = DEMO_QUERY_SETS["bibliography"]


@pytest.fixture(scope="module")
def cluster():
    with Cluster(ClusterSpec(db="demo:bibliography")) as cluster:
        yield cluster


@pytest.fixture(scope="module")
def server(cluster):
    server = HttpServer(
        cluster, NetConfig(tokens=(TOKEN,))
    ).start_background()
    yield server
    server.stop()


@pytest.fixture(scope="module")
def client(server):
    return BanksClient(server.url, token=TOKEN)


def _signature(answers):
    return [(list(a.tree.root), round(a.relevance, 9)) for a in answers]


def _wire_signature(document):
    return [
        (list(a["root"]), round(a["relevance"], 9))
        for a in document["answers"]
    ]


class TestAuth:
    def test_missing_token_is_401(self, server):
        with pytest.raises(NetError) as caught:
            BanksClient(server.url).query("sudarshan")
        assert caught.value.status == 401

    def test_wrong_token_is_401(self, server):
        with pytest.raises(NetError) as caught:
            BanksClient(server.url, token="wrong").query("sudarshan")
        assert caught.value.status == 401

    def test_health_needs_no_token(self, server):
        health = BanksClient(server.url).health()
        assert health["status"] == "ok"
        assert health["auth"] == "token"
        assert health["version"] == "v1"

    def test_metrics_needs_token(self, server, client):
        with pytest.raises(NetError) as caught:
            BanksClient(server.url).metrics()
        assert caught.value.status == 401
        assert "banks_engine_requests_total" in client.metrics()


class TestRateLimit:
    def test_burst_exhaustion_is_429(self, cluster):
        server = HttpServer(
            cluster, NetConfig(rate=0.001, burst=2)
        ).start_background()
        try:
            limited = BanksClient(server.url)
            limited.query("sudarshan", k=1)
            limited.query("sudarshan", k=1)
            with pytest.raises(NetError) as caught:
                limited.query("sudarshan", k=1)
            assert caught.value.status == 429
            assert "rate limit" in str(caught.value)
            # Health stays reachable for load balancers mid-shed.
            assert limited.health()["status"] == "ok"
        finally:
            server.stop()


class TestQueryParity:
    def test_http_matches_in_process_on_all_demo_queries(
        self, cluster, client
    ):
        """The acceptance gate: /v1/query returns parity-identical
        roots and scores to Cluster.query for every demo query."""
        for query in DEMO_QUERIES:
            local = _signature(
                cluster.query(QueryRequest(query, k=5)).answers
            )
            wire = _wire_signature(client.query(query, k=5))
            assert wire == local, query

    def test_pagination_slices_the_same_ranking(self, client):
        query = DEMO_QUERIES[0]
        full = client.query(query, k=10)
        page = client.query(query, k=2, offset=1)
        assert page["offset"] == 1 and page["k"] == 2
        assert _wire_signature(page) == _wire_signature(full)[1:3]
        ranks = [a["rank"] for a in page["answers"]]
        assert ranks == list(range(1, 1 + len(ranks)))

    def test_get_form_matches_post(self, server, client):
        query = DEMO_QUERIES[0].replace(" ", "+")
        connection = http.client.HTTPConnection("127.0.0.1", server.port)
        posted = client.query(DEMO_QUERIES[0], k=3)
        connection.request(
            "GET",
            f"/v1/query?q={query}&k=3",
            headers={"Authorization": f"Bearer {TOKEN}"},
        )
        response = connection.getresponse()
        document = json.loads(response.read())
        connection.close()
        assert response.status == 200
        assert _wire_signature(document) == _wire_signature(posted)


class TestStreaming:
    def test_sse_delivers_answers_before_completion(self, client):
        events = list(client.query_stream(DEMO_QUERIES[0], k=5))
        kinds = [name for name, _ in events]
        assert kinds[-1] == "result"
        answer_count = kinds.count("answer")
        assert answer_count >= 1
        # Every answer frame precedes the result frame.
        assert kinds[:answer_count] == ["answer"] * answer_count

    def test_streamed_answers_match_the_result_document(self, client):
        events = list(client.query_stream(DEMO_QUERIES[1], k=5))
        answers = [data for name, data in events if name == "answer"]
        result = [data for name, data in events if name == "result"][0]
        assert [a["root"] for a in answers] == [
            a["root"] for a in result["answers"]
        ]
        assert [a["rank"] for a in answers] == list(range(len(answers)))

    def test_stream_matches_non_streamed_query(self, client):
        query = DEMO_QUERIES[2]
        events = list(client.query_stream(query, k=5))
        result = [data for name, data in events if name == "result"][0]
        assert _wire_signature(result) == _wire_signature(
            client.query(query, k=5)
        )

    def test_stream_rejects_bad_consistency_before_streaming(self, client):
        # Validation fails before SSE headers go out, so the refusal
        # is an ordinary 400 response, not an in-stream error event.
        with pytest.raises(NetError) as caught:
            list(
                client.query_stream("sudarshan", consistency="linearizable")
            )
        assert caught.value.status == 400
        assert "linearizable" in str(caught.value)


class TestTracePropagation:
    def test_trace_header_lands_in_the_store(self, cluster, client):
        trace_id = "net-e2e-trace-0001"
        document = client.query(
            DEMO_QUERIES[0], k=3, trace_id=trace_id
        )
        assert document["trace_id"] == trace_id
        record = cluster.obs.store.get(trace_id)
        assert record is not None
        assert record.trace_id == trace_id

    def test_stream_carries_the_trace_id(self, cluster, client):
        trace_id = "net-e2e-trace-0002"
        events = list(
            client.query_stream(DEMO_QUERIES[1], k=3, trace_id=trace_id)
        )
        result = [data for name, data in events if name == "result"][0]
        assert result["trace_id"] == trace_id
        assert cluster.obs.store.get(trace_id) is not None


class TestErrors:
    def test_unknown_route_is_404(self, server):
        with pytest.raises(NetError) as caught:
            BanksClient(server.url, token=TOKEN)._request(
                "GET", "/v1/nothing"
            )
        assert caught.value.status == 404

    def test_wrong_method_is_405(self, server):
        with pytest.raises(NetError) as caught:
            BanksClient(server.url, token=TOKEN)._request(
                "POST", "/v1/health", {"x": 1}
            )
        assert caught.value.status == 405

    def test_unknown_field_is_400(self, server):
        with pytest.raises(NetError) as caught:
            BanksClient(server.url, token=TOKEN)._request(
                "POST", "/v1/query", {"query": "x", "nope": 1}
            )
        assert caught.value.status == 400
        assert "nope" in str(caught.value)

    def test_bad_consistency_is_400(self, client):
        with pytest.raises(NetError) as caught:
            client.query("x", consistency="linearizable")
        assert caught.value.status == 400

    def test_malformed_json_body_is_400(self, server):
        connection = http.client.HTTPConnection("127.0.0.1", server.port)
        connection.request(
            "POST",
            "/v1/query",
            body=b"{not json",
            headers={
                "Authorization": f"Bearer {TOKEN}",
                "Content-Type": "application/json",
            },
        )
        response = connection.getresponse()
        document = json.loads(response.read())
        connection.close()
        assert response.status == 400
        assert "JSON" in document["error"]
