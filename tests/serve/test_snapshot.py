"""Tests for snapshot isolation (the MVCC store), in both copy modes."""

from __future__ import annotations

import threading

import pytest

from repro.core.incremental import IncrementalBANKS
from repro.errors import BatchMutationError, ServeError
from repro.relational import Database, execute_script
from repro.serve.snapshot import SnapshotStore, supports_delta

SCHEMA = """
CREATE TABLE author (aid TEXT PRIMARY KEY, name TEXT NOT NULL);
CREATE TABLE paper (pid TEXT PRIMARY KEY, title TEXT NOT NULL);
CREATE TABLE writes (
    aid TEXT NOT NULL REFERENCES author(aid),
    pid TEXT NOT NULL REFERENCES paper(pid)
);
INSERT INTO author VALUES ('a1', 'grace hopper');
INSERT INTO paper VALUES ('p1', 'compiling arithmetic expressions');
INSERT INTO writes VALUES ('a1', 'p1');
"""


def incremental_banks() -> IncrementalBANKS:
    database = Database("snap")
    execute_script(database, SCHEMA)
    return IncrementalBANKS(database)


class TestVersioning:
    def test_initial_version_zero(self):
        store = SnapshotStore(incremental_banks())
        assert store.version == 0
        assert store.current().version == 0

    def test_mutate_publishes_next_version(self):
        store = SnapshotStore(incremental_banks())
        store.mutate(lambda f: f.insert("paper", ["p2", "flow charts"]))
        assert store.version == 1
        store.mutate(lambda f: f.insert("paper", ["p3", "subroutines"]))
        assert store.version == 2

    def test_mutate_returns_fn_result(self):
        store = SnapshotStore(incremental_banks())
        rid = store.mutate(lambda f: f.insert("paper", ["p2", "flow charts"]))
        assert rid == ("paper", rid[1])

    def test_failed_mutation_publishes_nothing(self):
        store = SnapshotStore(incremental_banks())
        before = store.current()
        with pytest.raises(RuntimeError):
            store.mutate(self._boom)
        assert store.current() is before
        assert store.version == 0

    @staticmethod
    def _boom(facade):
        facade.insert("paper", ["px", "doomed"])
        raise RuntimeError("abort the batch")


class TestIsolation:
    def test_pinned_snapshot_unaffected_by_mutation(self):
        store = SnapshotStore(incremental_banks())
        pinned = store.current()
        store.mutate(
            lambda f: f.insert("paper", ["p2", "fresh snapshot paper"])
        )
        assert pinned.facade.search("fresh snapshot") == []
        assert len(store.current().facade.search("fresh snapshot")) == 1

    def test_mutation_batch_is_atomic(self):
        store = SnapshotStore(incremental_banks())

        def batch(facade):
            facade.insert("author", ["a2", "ada lovelace"])
            facade.insert("paper", ["p2", "notes on the analytical engine"])
            facade.insert("writes", ["a2", "p2"])

        store.mutate(batch)
        assert store.version == 1  # one publish for three mutations
        answers = store.current().facade.search("ada analytical")
        assert answers
        # The connection through `writes` exists: multi-node answer tree.
        assert len(answers[0].tree.nodes) >= 3

    def test_published_facade_needs_no_lazy_refresh(self):
        """_refresh_stats is forced at publish, so readers never write."""
        store = SnapshotStore(incremental_banks())
        store.mutate(lambda f: f.insert("paper", ["p2", "flow charts"]))
        assert store.current().facade._stats_dirty is False

    def test_original_facade_untouched(self):
        facade = incremental_banks()
        store = SnapshotStore(facade)
        store.mutate(lambda f: f.insert("paper", ["p2", "flow charts"]))
        assert len(facade.database.table("paper")) == 1
        assert len(store.current().facade.database.table("paper")) == 2

    def test_writers_serialised(self):
        store = SnapshotStore(incremental_banks())
        started = threading.Barrier(4, timeout=5)

        def writer(index: int):
            started.wait()
            store.mutate(
                lambda f: f.insert("paper", [f"pw{index}", f"study {index}"])
            )

        threads = [
            threading.Thread(target=writer, args=(i,)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert store.version == 4
        assert len(store.current().facade.database.table("paper")) == 5


class TestBatchMutation:
    def test_empty_batch_skips_the_copy_entirely(self):
        store = SnapshotStore(incremental_banks())
        before = store.current()
        assert store.mutate_batch([]) == []
        assert store.current() is before  # no copy, no publish
        assert store.version == 0
        assert store.copies == 0
        assert store.copy_seconds == 0.0

    def test_batch_pays_one_copy_for_many_operations(self):
        store = SnapshotStore(incremental_banks())
        results = store.mutate_batch(
            [
                lambda f: f.insert("paper", ["p2", "flow charts"]),
                lambda f: f.insert("paper", ["p3", "subroutines"]),
            ]
        )
        assert [rid[0] for rid in results] == ["paper", "paper"]
        assert store.version == 1  # one publish for the whole batch
        assert store.copies == 1
        assert store.copy_seconds > 0.0
        assert len(store.current().facade.database.table("paper")) == 3

    def test_mutate_meters_every_copy(self):
        store = SnapshotStore(incremental_banks())
        store.mutate(lambda f: f.insert("paper", ["p2", "flow charts"]))
        store.mutate(lambda f: f.insert("paper", ["p3", "subroutines"]))
        assert store.copies == 2
        assert store.copy_seconds > 0.0

    def test_failed_batch_rolls_back_and_names_the_failing_index(self):
        """Partial-failure semantics: operation k fails -> operations
        0..k-1 are rolled back with the discarded private version,
        nothing is published, and the error carries the index."""
        store = SnapshotStore(incremental_banks())

        def boom(facade):
            raise RuntimeError("doomed")

        before = store.current()
        with pytest.raises(BatchMutationError) as caught:
            store.mutate_batch(
                [lambda f: f.insert("paper", ["p2", "x"]), boom]
            )
        assert caught.value.index == 1
        assert isinstance(caught.value.cause, RuntimeError)
        assert isinstance(caught.value.__cause__, RuntimeError)
        assert store.current() is before
        assert store.version == 0
        # The rolled-back insert of operation 0 is invisible everywhere.
        assert store.current().facade.search("x") == []
        assert len(store.current().facade.database.table("paper")) == 1


class TestCopyModes:
    def test_auto_picks_delta_for_incremental_banks(self):
        store = SnapshotStore(incremental_banks())
        assert store.copy_mode == "delta"
        assert store.log is not None

    def test_auto_falls_back_to_deep_for_plain_objects(self):
        store = SnapshotStore(object())
        assert store.copy_mode == "deep"
        assert store.log is None

    def test_delta_mode_refuses_incapable_facade(self):
        with pytest.raises(ServeError):
            SnapshotStore(object(), copy_mode="delta")

    def test_unknown_mode_refused(self):
        with pytest.raises(ServeError):
            SnapshotStore(incremental_banks(), copy_mode="shallow")

    def test_supports_delta_protocol(self):
        assert supports_delta(incremental_banks())
        assert not supports_delta(object())

    def test_deep_and_delta_publish_identical_states(self):
        """The deep path is the reference; the delta path must match
        it node-for-node, edge-for-edge, answer-for-answer."""
        from repro.shard.stitch import graphs_equal

        operations = [
            lambda f: f.insert("paper", ["p2", "structural sharing"]),
            lambda f: f.insert("author", ["a2", "barbara liskov"]),
            lambda f: f.insert("writes", ["a2", "p2"]),
            lambda f: f.update(("paper", 0), {"title": "revised title"}),
            lambda f: f.delete(("writes", 0)),
        ]
        deep = SnapshotStore(incremental_banks(), copy_mode="deep")
        delta = SnapshotStore(incremental_banks(), copy_mode="delta")
        for operation in operations:
            deep.mutate(operation)
            delta.mutate(operation)
        deep_facade = deep.current().facade
        delta_facade = delta.current().facade
        assert graphs_equal(deep_facade.graph, delta_facade.graph)
        assert deep_facade.stats == delta_facade.stats
        assert set(deep_facade.index.vocabulary()) == set(
            delta_facade.index.vocabulary()
        )
        for query in ("structural", "barbara", "revised"):
            assert [
                (a.tree.root, round(a.relevance, 12))
                for a in deep_facade.search(query)
            ] == [
                (a.tree.root, round(a.relevance, 12))
                for a in delta_facade.search(query)
            ]

    def test_delta_mode_publishes_epochs_with_deltas(self):
        store = SnapshotStore(incremental_banks(), copy_mode="delta")
        store.mutate(lambda f: f.insert("paper", ["p2", "flow charts"]))
        store.mutate_batch(
            [
                lambda f: f.insert("paper", ["p3", "subroutines"]),
                lambda f: f.insert("paper", ["p4", "linkers"]),
            ]
        )
        assert store.epoch == 2
        entries = store.log.entries_since(0)
        assert [e.number for e in entries] == [1, 2]
        assert len(entries[0].deltas) == 1
        assert len(entries[1].deltas) == 2
        assert entries[1].deltas[0].kind == "insert"
        assert store.deltas_published == 3

    def test_republish_bumps_version_without_copy(self):
        store = SnapshotStore(incremental_banks(), copy_mode="delta")
        facade = store.current().facade
        store.republish()
        assert store.version == 1
        assert store.epoch == 1
        assert store.current().facade is facade
        assert store.copies == 0

    def test_pinned_reader_isolated_under_delta_mode(self):
        """The fork must copy-on-write *everything* a search touches:
        graph adjacency, postings, table heaps, reverse references."""
        store = SnapshotStore(incremental_banks(), copy_mode="delta")
        pinned = store.current()
        store.mutate_batch(
            [
                lambda f: f.insert("author", ["a9", "edsger dijkstra"]),
                lambda f: f.insert("paper", ["p9", "structured programming"]),
                lambda f: f.insert("writes", ["a9", "p9"]),
                lambda f: f.update(
                    ("paper", 0), {"title": "renamed expressions"}
                ),
            ]
        )
        # The pinned version still answers from the old world.
        assert pinned.facade.search("structured") == []
        assert pinned.facade.search("compiling")
        assert len(pinned.facade.database.table("paper")) == 1
        # The new version answers from the new world.
        fresh = store.current().facade
        assert fresh.search("structured")
        assert fresh.search("compiling") == []
        answers = fresh.search("edsger structured")
        assert answers and len(answers[0].tree.nodes) >= 3


class TestEngineCopyMetrics:
    def test_engine_exposes_snapshot_copy_cost(self):
        from repro.serve import EngineConfig, QueryEngine

        with QueryEngine(incremental_banks(), EngineConfig(workers=1)) as engine:
            snapshot = engine.metrics.snapshot()
            assert snapshot["snapshot_copies_total"] == 0
            assert snapshot["snapshot_copy_seconds_total"] == 0.0

            engine.mutate_batch([])  # free: no copy, no mutation count
            snapshot = engine.metrics.snapshot()
            assert snapshot["snapshot_copies_total"] == 0
            assert snapshot["mutations_total"] == 0

            engine.mutate_batch(
                [lambda f: f.insert("paper", ["p2", "flow charts"])]
            )
            snapshot = engine.metrics.snapshot()
            assert snapshot["snapshot_copies_total"] == 1
            assert snapshot["snapshot_copy_seconds_total"] > 0.0
            assert snapshot["mutations_total"] == 1
            assert snapshot["snapshot_version"] == 1
