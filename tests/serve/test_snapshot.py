"""Tests for snapshot isolation (the MVCC store)."""

from __future__ import annotations

import threading

import pytest

from repro.core.incremental import IncrementalBANKS
from repro.relational import Database, execute_script
from repro.serve.snapshot import SnapshotStore

SCHEMA = """
CREATE TABLE author (aid TEXT PRIMARY KEY, name TEXT NOT NULL);
CREATE TABLE paper (pid TEXT PRIMARY KEY, title TEXT NOT NULL);
CREATE TABLE writes (
    aid TEXT NOT NULL REFERENCES author(aid),
    pid TEXT NOT NULL REFERENCES paper(pid)
);
INSERT INTO author VALUES ('a1', 'grace hopper');
INSERT INTO paper VALUES ('p1', 'compiling arithmetic expressions');
INSERT INTO writes VALUES ('a1', 'p1');
"""


def incremental_banks() -> IncrementalBANKS:
    database = Database("snap")
    execute_script(database, SCHEMA)
    return IncrementalBANKS(database)


class TestVersioning:
    def test_initial_version_zero(self):
        store = SnapshotStore(incremental_banks())
        assert store.version == 0
        assert store.current().version == 0

    def test_mutate_publishes_next_version(self):
        store = SnapshotStore(incremental_banks())
        store.mutate(lambda f: f.insert("paper", ["p2", "flow charts"]))
        assert store.version == 1
        store.mutate(lambda f: f.insert("paper", ["p3", "subroutines"]))
        assert store.version == 2

    def test_mutate_returns_fn_result(self):
        store = SnapshotStore(incremental_banks())
        rid = store.mutate(lambda f: f.insert("paper", ["p2", "flow charts"]))
        assert rid == ("paper", rid[1])

    def test_failed_mutation_publishes_nothing(self):
        store = SnapshotStore(incremental_banks())
        before = store.current()
        with pytest.raises(RuntimeError):
            store.mutate(self._boom)
        assert store.current() is before
        assert store.version == 0

    @staticmethod
    def _boom(facade):
        facade.insert("paper", ["px", "doomed"])
        raise RuntimeError("abort the batch")


class TestIsolation:
    def test_pinned_snapshot_unaffected_by_mutation(self):
        store = SnapshotStore(incremental_banks())
        pinned = store.current()
        store.mutate(
            lambda f: f.insert("paper", ["p2", "fresh snapshot paper"])
        )
        assert pinned.facade.search("fresh snapshot") == []
        assert len(store.current().facade.search("fresh snapshot")) == 1

    def test_mutation_batch_is_atomic(self):
        store = SnapshotStore(incremental_banks())

        def batch(facade):
            facade.insert("author", ["a2", "ada lovelace"])
            facade.insert("paper", ["p2", "notes on the analytical engine"])
            facade.insert("writes", ["a2", "p2"])

        store.mutate(batch)
        assert store.version == 1  # one publish for three mutations
        answers = store.current().facade.search("ada analytical")
        assert answers
        # The connection through `writes` exists: multi-node answer tree.
        assert len(answers[0].tree.nodes) >= 3

    def test_published_facade_needs_no_lazy_refresh(self):
        """_refresh_stats is forced at publish, so readers never write."""
        store = SnapshotStore(incremental_banks())
        store.mutate(lambda f: f.insert("paper", ["p2", "flow charts"]))
        assert store.current().facade._stats_dirty is False

    def test_original_facade_untouched(self):
        facade = incremental_banks()
        store = SnapshotStore(facade)
        store.mutate(lambda f: f.insert("paper", ["p2", "flow charts"]))
        assert len(facade.database.table("paper")) == 1
        assert len(store.current().facade.database.table("paper")) == 2

    def test_writers_serialised(self):
        store = SnapshotStore(incremental_banks())
        started = threading.Barrier(4, timeout=5)

        def writer(index: int):
            started.wait()
            store.mutate(
                lambda f: f.insert("paper", [f"pw{index}", f"study {index}"])
            )

        threads = [
            threading.Thread(target=writer, args=(i,)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert store.version == 4
        assert len(store.current().facade.database.table("paper")) == 5


class TestBatchMutation:
    def test_empty_batch_skips_the_copy_entirely(self):
        store = SnapshotStore(incremental_banks())
        before = store.current()
        assert store.mutate_batch([]) == []
        assert store.current() is before  # no copy, no publish
        assert store.version == 0
        assert store.copies == 0
        assert store.copy_seconds == 0.0

    def test_batch_pays_one_copy_for_many_operations(self):
        store = SnapshotStore(incremental_banks())
        results = store.mutate_batch(
            [
                lambda f: f.insert("paper", ["p2", "flow charts"]),
                lambda f: f.insert("paper", ["p3", "subroutines"]),
            ]
        )
        assert [rid[0] for rid in results] == ["paper", "paper"]
        assert store.version == 1  # one publish for the whole batch
        assert store.copies == 1
        assert store.copy_seconds > 0.0
        assert len(store.current().facade.database.table("paper")) == 3

    def test_mutate_meters_every_copy(self):
        store = SnapshotStore(incremental_banks())
        store.mutate(lambda f: f.insert("paper", ["p2", "flow charts"]))
        store.mutate(lambda f: f.insert("paper", ["p3", "subroutines"]))
        assert store.copies == 2
        assert store.copy_seconds > 0.0

    def test_failed_batch_publishes_nothing(self):
        store = SnapshotStore(incremental_banks())

        def boom(facade):
            raise RuntimeError("doomed")

        before = store.current()
        with pytest.raises(RuntimeError):
            store.mutate_batch(
                [lambda f: f.insert("paper", ["p2", "x"]), boom]
            )
        assert store.current() is before
        assert store.version == 0


class TestEngineCopyMetrics:
    def test_engine_exposes_snapshot_copy_cost(self):
        from repro.serve import EngineConfig, QueryEngine

        with QueryEngine(incremental_banks(), EngineConfig(workers=1)) as engine:
            snapshot = engine.metrics.snapshot()
            assert snapshot["snapshot_copies_total"] == 0
            assert snapshot["snapshot_copy_seconds_total"] == 0.0

            engine.mutate_batch([])  # free: no copy, no mutation count
            snapshot = engine.metrics.snapshot()
            assert snapshot["snapshot_copies_total"] == 0
            assert snapshot["mutations_total"] == 0

            engine.mutate_batch(
                [lambda f: f.insert("paper", ["p2", "flow charts"])]
            )
            snapshot = engine.metrics.snapshot()
            assert snapshot["snapshot_copies_total"] == 1
            assert snapshot["snapshot_copy_seconds_total"] > 0.0
            assert snapshot["mutations_total"] == 1
            assert snapshot["snapshot_version"] == 1
