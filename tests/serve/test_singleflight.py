"""Tests for single-flight deduplication."""

from __future__ import annotations

import threading

from repro.serve.singleflight import SingleFlight


class TestJoin:
    def test_first_joiner_leads(self):
        flights = SingleFlight()
        future, leader = flights.join("k")
        assert leader
        assert len(flights) == 1

    def test_second_joiner_follows_same_future(self):
        flights = SingleFlight()
        first, _ = flights.join("k")
        second, leader = flights.join("k")
        assert not leader
        assert second is first

    def test_distinct_keys_distinct_flights(self):
        flights = SingleFlight()
        first, _ = flights.join("a")
        second, leader = flights.join("b")
        assert leader
        assert second is not first

    def test_none_key_never_dedups(self):
        flights = SingleFlight()
        first, leader_a = flights.join(None)
        second, leader_b = flights.join(None)
        assert leader_a and leader_b
        assert second is not first
        assert len(flights) == 0

    def test_forget_starts_fresh_flight(self):
        flights = SingleFlight()
        first, _ = flights.join("k")
        flights.forget("k")
        second, leader = flights.join("k")
        assert leader
        assert second is not first

    def test_forget_unknown_key_is_noop(self):
        flights = SingleFlight()
        flights.forget("ghost")
        flights.forget(None)


class TestConcurrency:
    def test_exactly_one_leader_under_contention(self):
        flights = SingleFlight()
        leaders = []
        futures = []
        barrier = threading.Barrier(16, timeout=5)
        lock = threading.Lock()

        def join():
            barrier.wait()
            future, leader = flights.join("hot")
            with lock:
                futures.append(future)
                if leader:
                    leaders.append(future)

        threads = [threading.Thread(target=join) for _ in range(16)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(leaders) == 1
        assert all(future is futures[0] for future in futures)

    def test_followers_receive_leader_result(self):
        flights = SingleFlight()
        future, _ = flights.join("k")
        follower, leader = flights.join("k")
        assert not leader
        flights.forget("k")
        future.set_result("answer")
        assert follower.result(timeout=1) == "answer"
