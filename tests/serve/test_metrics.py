"""Tests for the metrics registry and its plaintext exposition."""

from __future__ import annotations

import threading

from repro.serve.metrics import (
    Counter,
    Gauge,
    LatencyWindow,
    MetricsRegistry,
)


class TestCounter:
    def test_monotone(self):
        counter = Counter("events_total")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_thread_safe(self):
        counter = Counter("events_total")

        def hammer():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 8000


class TestGauge:
    def test_set_and_read(self):
        gauge = Gauge("depth")
        gauge.set(7)
        assert gauge.value == 7.0

    def test_computed_on_read(self):
        state = {"depth": 3}
        gauge = Gauge("depth", fn=lambda: state["depth"])
        assert gauge.value == 3.0
        state["depth"] = 9
        assert gauge.value == 9.0


class TestLatencyWindow:
    def test_quantiles(self):
        clock = lambda: 100.0  # frozen: everything inside the window
        window = LatencyWindow("latency_seconds", clock=clock)
        for ms in range(1, 101):  # 1ms..100ms
            window.observe(ms / 1000)
        assert abs(window.quantile(0.5) - 0.051) < 0.005
        assert abs(window.quantile(0.95) - 0.096) < 0.005

    def test_empty_window(self):
        window = LatencyWindow("latency_seconds")
        assert window.quantile(0.5) == 0.0
        assert window.qps() == 0.0

    def test_old_samples_age_out(self):
        now = {"t": 0.0}
        window = LatencyWindow(
            "latency_seconds", window_seconds=10.0, clock=lambda: now["t"]
        )
        window.observe(0.5)
        now["t"] = 5.0
        window.observe(0.7)
        assert window.count == 2
        now["t"] = 12.0  # first sample (t=0) now outside the window
        assert window.count == 1
        assert window.quantile(0.5) == 0.7

    def test_qps_is_count_over_elapsed(self):
        now = {"t": 0.0}
        window = LatencyWindow(
            "latency_seconds", window_seconds=10.0, clock=lambda: now["t"]
        )
        for _ in range(20):
            window.observe(0.001)
        now["t"] = 5.0  # warm-up: only half the window has elapsed
        assert window.qps() == 4.0
        now["t"] = 10.0  # full window elapsed, samples still inside it
        assert window.qps() == 2.0


class TestRegistry:
    def test_idempotent_registration(self):
        registry = MetricsRegistry()
        first = registry.counter("requests_total")
        second = registry.counter("requests_total")
        assert first is second

    def test_snapshot_flattens_everything(self):
        registry = MetricsRegistry()
        registry.counter("requests_total").inc(3)
        registry.gauge("queue_depth").set(2)
        registry.latency("latency_seconds").observe(0.01)
        snapshot = registry.snapshot()
        assert snapshot["requests_total"] == 3
        assert snapshot["queue_depth"] == 2.0
        assert snapshot["latency_seconds_p50"] > 0
        assert snapshot["latency_seconds_qps"] > 0

    def test_render_text_format(self):
        registry = MetricsRegistry(prefix="banks_engine")
        registry.counter("requests_total", "requests seen").inc(2)
        registry.gauge("queue_depth", "queued requests").set(1)
        registry.latency("latency_seconds").observe(0.25)
        text = registry.render_text()
        assert "# TYPE banks_engine_requests_total counter" in text
        assert "banks_engine_requests_total 2" in text
        assert "# HELP banks_engine_requests_total requests seen" in text
        assert "banks_engine_queue_depth 1" in text
        assert 'banks_engine_latency_seconds{quantile="0.5"} 0.25' in text
        assert text.endswith("\n")

    def test_conflicting_computed_gauge_rejected(self):
        import pytest

        from repro.errors import ServeError

        registry = MetricsRegistry()
        registry.gauge("queue_depth", fn=lambda: 1)
        with pytest.raises(ServeError):
            registry.gauge("queue_depth", fn=lambda: 2)

    def test_sharing_registry_across_engines_fails_loudly(self):
        import pytest

        from repro.errors import ServeError
        from repro.relational import Database, execute_script
        from repro.serve import QueryEngine

        database = Database("m")
        execute_script(
            database,
            """
            CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT);
            INSERT INTO t VALUES (1, 'x');
            """,
        )
        from repro.core.banks import BANKS

        with QueryEngine(BANKS(database)) as first:
            with pytest.raises(ServeError):
                QueryEngine(BANKS(database), metrics=first.metrics)

    def test_render_without_prefix(self):
        registry = MetricsRegistry(prefix="")
        registry.counter("hits_total").inc()
        assert "\nhits_total 1" in "\n" + registry.render_text()
