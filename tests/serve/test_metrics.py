"""Tests for the metrics registry and its plaintext exposition."""

from __future__ import annotations

import threading

import pytest

from repro.serve.metrics import (
    Counter,
    Gauge,
    LatencyWindow,
    MetricsRegistry,
)


class TestCounter:
    def test_monotone(self):
        counter = Counter("events_total")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_thread_safe(self):
        counter = Counter("events_total")

        def hammer():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 8000


class TestGauge:
    def test_set_and_read(self):
        gauge = Gauge("depth")
        gauge.set(7)
        assert gauge.value == 7.0

    def test_computed_on_read(self):
        state = {"depth": 3}
        gauge = Gauge("depth", fn=lambda: state["depth"])
        assert gauge.value == 3.0
        state["depth"] = 9
        assert gauge.value == 9.0


class TestLatencyWindow:
    def test_quantiles(self):
        clock = lambda: 100.0  # frozen: everything inside the window
        window = LatencyWindow("latency_seconds", clock=clock)
        for ms in range(1, 101):  # 1ms..100ms
            window.observe(ms / 1000)
        assert abs(window.quantile(0.5) - 0.051) < 0.005
        assert abs(window.quantile(0.95) - 0.096) < 0.005

    def test_empty_window(self):
        window = LatencyWindow("latency_seconds")
        assert window.quantile(0.5) == 0.0
        assert window.qps() == 0.0

    def test_old_samples_age_out(self):
        now = {"t": 0.0}
        window = LatencyWindow(
            "latency_seconds", window_seconds=10.0, clock=lambda: now["t"]
        )
        window.observe(0.5)
        now["t"] = 5.0
        window.observe(0.7)
        assert window.count == 2
        now["t"] = 12.0  # first sample (t=0) now outside the window
        assert window.count == 1
        assert window.quantile(0.5) == 0.7

    def test_qps_is_count_over_elapsed(self):
        now = {"t": 0.0}
        window = LatencyWindow(
            "latency_seconds", window_seconds=10.0, clock=lambda: now["t"]
        )
        for _ in range(20):
            window.observe(0.001)
        now["t"] = 5.0  # warm-up: only half the window has elapsed
        assert window.qps() == 4.0
        now["t"] = 10.0  # full window elapsed, samples still inside it
        assert window.qps() == 2.0


class TestRegistry:
    def test_idempotent_registration(self):
        registry = MetricsRegistry()
        first = registry.counter("requests_total")
        second = registry.counter("requests_total")
        assert first is second

    def test_snapshot_flattens_everything(self):
        registry = MetricsRegistry()
        registry.counter("requests_total").inc(3)
        registry.gauge("queue_depth").set(2)
        registry.latency("latency_seconds").observe(0.01)
        snapshot = registry.snapshot()
        assert snapshot["requests_total"] == 3
        assert snapshot["queue_depth"] == 2.0
        assert snapshot["latency_seconds_p50"] > 0
        assert snapshot["latency_seconds_qps"] > 0

    def test_render_text_format(self):
        registry = MetricsRegistry(prefix="banks_engine")
        registry.counter("requests_total", "requests seen").inc(2)
        registry.gauge("queue_depth", "queued requests").set(1)
        registry.latency("latency_seconds").observe(0.25)
        text = registry.render_text()
        assert "# TYPE banks_engine_requests_total counter" in text
        assert "banks_engine_requests_total 2" in text
        assert "# HELP banks_engine_requests_total requests seen" in text
        assert "banks_engine_queue_depth 1" in text
        assert 'banks_engine_latency_seconds{quantile="0.5"} 0.25' in text
        assert text.endswith("\n")

    def test_conflicting_computed_gauge_rejected(self):
        import pytest

        from repro.errors import ServeError

        registry = MetricsRegistry()
        registry.gauge("queue_depth", fn=lambda: 1)
        with pytest.raises(ServeError):
            registry.gauge("queue_depth", fn=lambda: 2)

    def test_sharing_registry_across_engines_fails_loudly(self):
        import pytest

        from repro.errors import ServeError
        from repro.relational import Database, execute_script
        from repro.serve import QueryEngine

        database = Database("m")
        execute_script(
            database,
            """
            CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT);
            INSERT INTO t VALUES (1, 'x');
            """,
        )
        from repro.core.banks import BANKS

        with QueryEngine(BANKS(database)) as first:
            with pytest.raises(ServeError):
                QueryEngine(BANKS(database), metrics=first.metrics)

    def test_render_without_prefix(self):
        registry = MetricsRegistry(prefix="")
        registry.counter("hits_total").inc()
        assert "\nhits_total 1" in "\n" + registry.render_text()


class TestHistogram:
    def test_cumulative_buckets(self):
        from repro.serve.metrics import Histogram

        histogram = Histogram("lat", buckets=(0.01, 0.1, 1.0))
        for value in (0.005, 0.05, 0.5, 5.0):
            histogram.observe(value)
        buckets, total, count = histogram.summary()
        assert buckets == [(0.01, 1), (0.1, 2), (1.0, 3)]
        assert count == 4
        assert total == pytest.approx(5.555)

    def test_bad_buckets_rejected(self):
        from repro.errors import ServeError
        from repro.serve.metrics import Histogram

        with pytest.raises(ServeError):
            Histogram("h", buckets=())
        with pytest.raises(ServeError):
            Histogram("h", buckets=(1.0, 0.5))

    def test_registry_exposition_format(self):
        from repro.serve.metrics import MetricsRegistry

        registry = MetricsRegistry(prefix="t")
        histogram = registry.histogram(
            "copy_seconds", "copy cost", buckets=(0.1, 1.0)
        )
        histogram.observe(0.05)
        histogram.observe(2.0)
        text = registry.render_text()
        assert "# TYPE t_copy_seconds histogram" in text
        assert 't_copy_seconds_bucket{le="0.1"} 1' in text
        assert 't_copy_seconds_bucket{le="+Inf"} 2' in text
        assert "t_copy_seconds_count 2" in text
        snapshot = registry.snapshot()
        assert snapshot["copy_seconds_count"] == 2
        assert snapshot["copy_seconds_sum"] == pytest.approx(2.05)

    def test_registry_histogram_idempotent_by_name(self):
        from repro.serve.metrics import MetricsRegistry

        registry = MetricsRegistry()
        first = registry.histogram("h")
        assert registry.histogram("h") is first

    def test_engine_exposes_latency_and_copy_histograms(self):
        from repro.core.incremental import IncrementalBANKS
        from repro.relational import Database, execute_script
        from repro.serve import EngineConfig, QueryEngine

        database = Database("hist")
        execute_script(
            database,
            "CREATE TABLE t (id TEXT PRIMARY KEY, v TEXT);"
            "INSERT INTO t VALUES ('a', 'hello world');",
        )
        with QueryEngine(
            IncrementalBANKS(database), EngineConfig(workers=1)
        ) as engine:
            engine.search("hello")
            engine.mutate(lambda f: f.insert("t", ["b", "more words"]))
            text = engine.metrics.render_text()
            assert "request_latency_seconds_bucket" in text
            assert "snapshot_copy_cost_seconds_bucket" in text
            snapshot = engine.metrics.snapshot()
            assert snapshot["request_latency_seconds_count"] == 1
            assert snapshot["snapshot_copy_cost_seconds_count"] == 1
            assert snapshot["snapshot_epoch"] == 1
            assert snapshot["snapshot_deltas_total"] == 1
