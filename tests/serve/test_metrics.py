"""Tests for the metrics registry and its plaintext exposition."""

from __future__ import annotations

import threading

import pytest

from repro.serve.metrics import (
    Counter,
    Gauge,
    LatencyWindow,
    MetricsRegistry,
)


class TestCounter:
    def test_monotone(self):
        counter = Counter("events_total")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_thread_safe(self):
        counter = Counter("events_total")

        def hammer():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 8000


class TestGauge:
    def test_set_and_read(self):
        gauge = Gauge("depth")
        gauge.set(7)
        assert gauge.value == 7.0

    def test_computed_on_read(self):
        state = {"depth": 3}
        gauge = Gauge("depth", fn=lambda: state["depth"])
        assert gauge.value == 3.0
        state["depth"] = 9
        assert gauge.value == 9.0


class TestLatencyWindow:
    def test_quantiles(self):
        clock = lambda: 100.0  # frozen: everything inside the window
        window = LatencyWindow("latency_seconds", clock=clock)
        for ms in range(1, 101):  # 1ms..100ms
            window.observe(ms / 1000)
        assert abs(window.quantile(0.5) - 0.051) < 0.005
        assert abs(window.quantile(0.95) - 0.096) < 0.005

    def test_empty_window(self):
        window = LatencyWindow("latency_seconds")
        assert window.quantile(0.5) == 0.0
        assert window.qps() == 0.0

    def test_old_samples_age_out(self):
        now = {"t": 0.0}
        window = LatencyWindow(
            "latency_seconds", window_seconds=10.0, clock=lambda: now["t"]
        )
        window.observe(0.5)
        now["t"] = 5.0
        window.observe(0.7)
        assert window.count == 2
        now["t"] = 12.0  # first sample (t=0) now outside the window
        assert window.count == 1
        assert window.quantile(0.5) == 0.7

    def test_qps_is_count_over_elapsed(self):
        now = {"t": 0.0}
        window = LatencyWindow(
            "latency_seconds", window_seconds=10.0, clock=lambda: now["t"]
        )
        for _ in range(20):
            window.observe(0.001)
        now["t"] = 5.0  # warm-up: only half the window has elapsed
        assert window.qps() == 4.0
        now["t"] = 10.0  # full window elapsed, samples still inside it
        assert window.qps() == 2.0


class TestRegistry:
    def test_idempotent_registration(self):
        registry = MetricsRegistry()
        first = registry.counter("requests_total")
        second = registry.counter("requests_total")
        assert first is second

    def test_snapshot_flattens_everything(self):
        registry = MetricsRegistry()
        registry.counter("requests_total").inc(3)
        registry.gauge("queue_depth").set(2)
        registry.latency("latency_seconds").observe(0.01)
        snapshot = registry.snapshot()
        assert snapshot["requests_total"] == 3
        assert snapshot["queue_depth"] == 2.0
        assert snapshot["latency_seconds_p50"] > 0
        assert snapshot["latency_seconds_qps"] > 0

    def test_render_text_format(self):
        registry = MetricsRegistry(prefix="banks_engine")
        registry.counter("requests_total", "requests seen").inc(2)
        registry.gauge("queue_depth", "queued requests").set(1)
        registry.latency("latency_seconds").observe(0.25)
        text = registry.render_text()
        assert "# TYPE banks_engine_requests_total counter" in text
        assert "banks_engine_requests_total 2" in text
        assert "# HELP banks_engine_requests_total requests seen" in text
        assert "banks_engine_queue_depth 1" in text
        assert 'banks_engine_latency_seconds{quantile="0.5"} 0.25' in text
        assert text.endswith("\n")

    def test_conflicting_computed_gauge_rejected(self):
        import pytest

        from repro.errors import ServeError

        registry = MetricsRegistry()
        registry.gauge("queue_depth", fn=lambda: 1)
        with pytest.raises(ServeError):
            registry.gauge("queue_depth", fn=lambda: 2)

    def test_sharing_registry_across_engines_fails_loudly(self):
        import pytest

        from repro.errors import ServeError
        from repro.relational import Database, execute_script
        from repro.serve import QueryEngine

        database = Database("m")
        execute_script(
            database,
            """
            CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT);
            INSERT INTO t VALUES (1, 'x');
            """,
        )
        from repro.core.banks import BANKS

        with QueryEngine(BANKS(database)) as first:
            with pytest.raises(ServeError):
                QueryEngine(BANKS(database), metrics=first.metrics)

    def test_render_without_prefix(self):
        registry = MetricsRegistry(prefix="")
        registry.counter("hits_total").inc()
        assert "\nhits_total 1" in "\n" + registry.render_text()


class TestHistogram:
    def test_cumulative_buckets(self):
        from repro.serve.metrics import Histogram

        histogram = Histogram("lat", buckets=(0.01, 0.1, 1.0))
        for value in (0.005, 0.05, 0.5, 5.0):
            histogram.observe(value)
        buckets, total, count = histogram.summary()
        assert buckets == [(0.01, 1), (0.1, 2), (1.0, 3)]
        assert count == 4
        assert total == pytest.approx(5.555)

    def test_bad_buckets_rejected(self):
        from repro.errors import ServeError
        from repro.serve.metrics import Histogram

        with pytest.raises(ServeError):
            Histogram("h", buckets=())
        with pytest.raises(ServeError):
            Histogram("h", buckets=(1.0, 0.5))

    def test_registry_exposition_format(self):
        from repro.serve.metrics import MetricsRegistry

        registry = MetricsRegistry(prefix="t")
        histogram = registry.histogram(
            "copy_seconds", "copy cost", buckets=(0.1, 1.0)
        )
        histogram.observe(0.05)
        histogram.observe(2.0)
        text = registry.render_text()
        assert "# TYPE t_copy_seconds histogram" in text
        assert 't_copy_seconds_bucket{le="0.1"} 1' in text
        assert 't_copy_seconds_bucket{le="+Inf"} 2' in text
        assert "t_copy_seconds_count 2" in text
        snapshot = registry.snapshot()
        assert snapshot["copy_seconds_count"] == 2
        assert snapshot["copy_seconds_sum"] == pytest.approx(2.05)

    def test_registry_histogram_idempotent_by_name(self):
        from repro.serve.metrics import MetricsRegistry

        registry = MetricsRegistry()
        first = registry.histogram("h")
        assert registry.histogram("h") is first

    def test_engine_exposes_latency_and_copy_histograms(self):
        from repro.core.incremental import IncrementalBANKS
        from repro.relational import Database, execute_script
        from repro.serve import EngineConfig, QueryEngine

        database = Database("hist")
        execute_script(
            database,
            "CREATE TABLE t (id TEXT PRIMARY KEY, v TEXT);"
            "INSERT INTO t VALUES ('a', 'hello world');",
        )
        with QueryEngine(
            IncrementalBANKS(database), EngineConfig(workers=1)
        ) as engine:
            engine.search("hello")
            engine.mutate(lambda f: f.insert("t", ["b", "more words"]))
            text = engine.metrics.render_text()
            assert "request_latency_seconds_bucket" in text
            assert "snapshot_copy_cost_seconds_bucket" in text
            snapshot = engine.metrics.snapshot()
            assert snapshot["request_latency_seconds_count"] == 1
            assert snapshot["snapshot_copy_cost_seconds_count"] == 1
            assert snapshot["snapshot_epoch"] == 1
            assert snapshot["snapshot_deltas_total"] == 1


# -- labeled series and the exposition format (ISSUE 6 satellites) -------------

import re

from repro.serve.metrics import Histogram, series_id

_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{.*\})?"
    r" (?P<value>\S+)$"
)
_LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
_KINDS = {"counter", "gauge", "summary", "histogram", "untyped"}


def check_prometheus_text(text: str):
    """A Prometheus text-format (version 0.0.4) checker.

    Verifies what a scraper relies on: every sample line parses; every
    family has exactly one ``# HELP`` and one ``# TYPE`` (before its
    samples); no duplicate series; histogram buckets are cumulative
    with ``+Inf`` equal to ``_count``.  Returns ``{family: kind}``.
    """
    assert text.endswith("\n"), "exposition must end with a newline"
    helped, typed = {}, {}
    seen_series = set()
    buckets: dict = {}
    hist_counts: dict = {}
    for line in text.splitlines():
        assert line == line.strip(), f"stray whitespace: {line!r}"
        if not line:
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, _help = rest.partition(" ")
            assert name not in helped, f"duplicate HELP for {name}"
            helped[name] = True
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            assert kind in _KINDS, f"bad TYPE {kind!r} for {name}"
            assert name not in typed, f"duplicate TYPE for {name}"
            assert name in helped, f"TYPE before HELP for {name}"
            typed[name] = kind
            continue
        assert not line.startswith("#"), f"unknown comment: {line!r}"
        match = _SAMPLE.match(line)
        assert match, f"unparseable sample line: {line!r}"
        name, labels_text = match.group("name"), match.group("labels")
        float(match.group("value"))  # must be numeric
        labels = dict(_LABEL.findall(labels_text or ""))
        if labels_text:
            rebuilt = ",".join(
                f'{k}="{v}"' for k, v in _LABEL.findall(labels_text)
            )
            assert "{" + rebuilt + "}" == labels_text, (
                f"malformed label block: {labels_text!r}"
            )
        # Resolve the family the sample belongs to.
        family = None
        for suffix in ("_bucket", "_sum", "_count"):
            base = name[: -len(suffix)] if name.endswith(suffix) else None
            if base and typed.get(base) in ("histogram", "summary"):
                family = base
                break
        if family is None:
            family = name
        assert family in typed, f"sample {name!r} precedes its TYPE"
        series = name + "|" + ",".join(sorted(f"{k}={v}" for k, v in labels.items()))
        assert series not in seen_series, f"duplicate series: {line!r}"
        seen_series.add(series)
        if typed.get(family) == "histogram" and name.endswith("_bucket"):
            le = labels.pop("le", None)
            assert le is not None, f"histogram bucket without le: {line!r}"
            key = (family, tuple(sorted(labels.items())))
            bound = float("inf") if le == "+Inf" else float(le)
            buckets.setdefault(key, []).append(
                (bound, float(match.group("value")))
            )
        elif typed.get(family) == "histogram" and name.endswith("_count"):
            key = (family, tuple(sorted(labels.items())))
            hist_counts[key] = float(match.group("value"))
    for key, pairs in buckets.items():
        ordered = sorted(pairs)
        counts = [count for _bound, count in ordered]
        assert counts == sorted(counts), f"non-cumulative buckets: {key}"
        assert ordered[-1][0] == float("inf"), f"missing +Inf bucket: {key}"
        assert ordered[-1][1] == hist_counts.get(key), (
            f"+Inf bucket != _count for {key}"
        )
    for name in typed:
        assert name in helped, f"TYPE without HELP: {name}"
    return typed


class TestLabeledSeries:
    def test_series_identity(self):
        assert series_id("lag") == "lag"
        assert series_id("lag", {"replica": "1"}) == 'lag{replica="1"}'
        # Sorted key order makes the identity canonical.
        assert series_id("m", {"b": "2", "a": "1"}) == 'm{a="1",b="2"}'

    def test_registration_idempotent_per_series(self):
        registry = MetricsRegistry()
        first = registry.counter("reads_total", labels={"replica": "0"})
        again = registry.counter("reads_total", labels={"replica": "0"})
        other = registry.counter("reads_total", labels={"replica": "1"})
        assert first is again
        assert first is not other

    def test_one_family_header_many_series(self):
        registry = MetricsRegistry(prefix="t")
        registry.gauge(
            "lag_epochs", "lag", fn=lambda: 1, labels={"replica": "0"}
        )
        registry.gauge(
            "lag_epochs", "lag", fn=lambda: 3, labels={"replica": "1"}
        )
        text = registry.render_text()
        assert text.count("# TYPE t_lag_epochs gauge") == 1
        assert 't_lag_epochs{replica="0"} 1' in text
        assert 't_lag_epochs{replica="1"} 3' in text

    def test_label_values_escaped(self):
        registry = MetricsRegistry(prefix="t")
        registry.counter(
            "odd_total", labels={"q": 'say "hi"\\now'}
        ).inc()
        text = registry.render_text()
        assert 't_odd_total{q="say \\"hi\\"\\\\now"} 1' in text
        check_prometheus_text(text)

    def test_snapshot_keys_carry_labels(self):
        registry = MetricsRegistry()
        registry.counter("reads_total", labels={"replica": "1"}).inc(4)
        histogram = registry.histogram(
            "cost_seconds", buckets=(1.0,), labels={"shard": "0"}
        )
        histogram.observe(0.5)
        snapshot = registry.snapshot()
        assert snapshot['reads_total{replica="1"}'] == 4
        assert snapshot['cost_seconds_count{shard="0"}'] == 1


class TestExpositionFormatChecker:
    def test_populated_registry_passes(self):
        registry = MetricsRegistry(prefix="banks_engine")
        registry.counter("requests_total", "requests admitted").inc(3)
        registry.counter(
            "reads_total", "reads", labels={"replica": "0"}
        ).inc()
        registry.counter(
            "reads_total", "reads", labels={"replica": "1"}
        ).inc(2)
        registry.gauge("queue_depth", "queued").set(1)
        registry.latency("latency_seconds", "latency").observe(0.02)
        registry.histogram(
            "copy_seconds", "copy cost", buckets=(0.1, 1.0)
        ).observe(0.5)
        registry.histogram(
            "shard_seconds", "per-shard", buckets=(0.1,), labels={"shard": "1"}
        ).observe(0.05)
        typed = check_prometheus_text(registry.render_text())
        assert typed["banks_engine_requests_total"] == "counter"
        assert typed["banks_engine_latency_seconds"] == "summary"
        assert typed["banks_engine_latency_seconds_qps"] == "gauge"
        assert typed["banks_engine_copy_seconds"] == "histogram"

    def test_checker_rejects_duplicates_and_torn_buckets(self):
        with pytest.raises(AssertionError):
            check_prometheus_text(
                "# HELP a a\n# TYPE a counter\na 1\na 2\n"
            )
        with pytest.raises(AssertionError):
            check_prometheus_text(
                "# HELP h h\n# TYPE h histogram\n"
                'h_bucket{le="0.1"} 5\nh_bucket{le="+Inf"} 3\nh_sum 1\n'
                "h_count 3\n"
            )
        with pytest.raises(AssertionError):
            check_prometheus_text("no_type_declared 1\n")

    def test_live_engine_metrics_pass_the_checker(self):
        from repro.core.incremental import IncrementalBANKS
        from repro.relational import Database, execute_script
        from repro.serve import EngineConfig, QueryEngine

        database = Database("expo")
        execute_script(
            database,
            "CREATE TABLE t (id TEXT PRIMARY KEY, v TEXT);"
            "INSERT INTO t VALUES ('a', 'hello world');",
        )
        with QueryEngine(
            IncrementalBANKS(database), EngineConfig(workers=1)
        ) as engine:
            engine.search("hello")
            engine.mutate(lambda f: f.insert("t", ["b", "more words"]))
            check_prometheus_text(engine.metrics.render_text())

    def test_replicaset_metrics_pass_the_checker(self, tiny_cluster_db):
        from repro.cluster import Cluster, ClusterSpec

        spec = ClusterSpec(
            topology="replicated", replicas=2, replica_backend="thread"
        )
        with Cluster(spec, database=tiny_cluster_db) as cluster:
            cluster.query("hello")
            text = cluster.metrics.render_text()
            typed = check_prometheus_text(text)
            assert typed["banks_replicaset_replica_lag_epochs"] == "gauge"
            assert 'replica_lag_epochs{replica="0"}' in text
            assert 'replica_lag_epochs{replica="1"}' in text


@pytest.fixture
def tiny_cluster_db():
    from repro.relational import Database, execute_script

    database = Database("tiny")
    execute_script(
        database,
        "CREATE TABLE t (id TEXT PRIMARY KEY, v TEXT);"
        "INSERT INTO t VALUES ('a', 'hello world');"
        "INSERT INTO t VALUES ('b', 'hello again');",
    )
    return database


class TestRemovedReplicaGaugeAliases:
    def test_only_labelled_series_remain(self, tiny_cluster_db):
        """The one-release ``replica{i}_*`` alias gauges are gone:
        snapshots carry only the labelled series, with no warnings."""
        import warnings as warnings_module

        from repro.cluster import Cluster, ClusterSpec

        spec = ClusterSpec(
            topology="replicated", replicas=2, replica_backend="thread"
        )
        with Cluster(spec, database=tiny_cluster_db) as cluster:
            with warnings_module.catch_warnings():
                warnings_module.simplefilter("error", DeprecationWarning)
                snapshot = cluster.metrics.snapshot()
            assert 'replica_lag_epochs{replica="0"}' in snapshot
            assert 'replica_served_total{replica="1"}' in snapshot
            assert "replica0_lag_epochs" not in snapshot
            assert "replica1_served_total" not in snapshot


class TestConcurrentRegistry:
    def test_hammer_while_rendering(self):
        """N writer threads vs. a render/snapshot loop: no torn reads,
        counters monotone, histogram bucket/count/sum consistent."""
        registry = MetricsRegistry(prefix="t")
        counter = registry.counter("events_total", "events")
        labeled = [
            registry.counter("work_total", "work", labels={"w": str(i)})
            for i in range(4)
        ]
        histogram = registry.histogram("cost_seconds", "cost", buckets=(1.0, 2.0))
        rounds, threads_n = 500, 4
        # Parties: the writers, the reader, and the main thread.
        start = threading.Barrier(threads_n + 2)
        stop = threading.Event()

        def writer(index):
            start.wait()
            for _ in range(rounds):
                counter.inc()
                labeled[index].inc()
                histogram.observe(0.5)
                histogram.observe(1.5)

        failures = []

        def reader():
            start.wait()
            last_total = -1
            while not stop.is_set():
                text = registry.render_text()
                try:
                    check_prometheus_text(text)
                except AssertionError as error:  # pragma: no cover
                    failures.append(str(error))
                    return
                snapshot = registry.snapshot()
                total = snapshot["events_total"]
                if total < last_total:  # pragma: no cover
                    failures.append(f"counter went backwards: {total}")
                    return
                last_total = total
                buckets, total_sum, count = histogram.summary()
                if buckets[0][1] > buckets[1][1]:  # pragma: no cover
                    failures.append("buckets not cumulative")
                    return
                if count and not (
                    0.0 < total_sum / count <= 2.0
                ):  # pragma: no cover
                    failures.append("sum/count out of range")
                    return

        workers = [
            threading.Thread(target=writer, args=(i,))
            for i in range(threads_n)
        ]
        observer = threading.Thread(target=reader)
        for thread in workers:
            thread.start()
        observer.start()
        start.wait()
        for thread in workers:
            thread.join()
        stop.set()
        observer.join()
        assert not failures, failures
        assert counter.value == rounds * threads_n
        for index, series in enumerate(labeled):
            assert series.value == rounds
        buckets, total_sum, count = histogram.summary()
        assert count == 2 * rounds * threads_n
        assert buckets[0][1] == rounds * threads_n  # <= 1.0: the 0.5s
        assert buckets[1][1] == count  # <= 2.0: everything
        assert total_sum == pytest.approx(count * 1.0)
