"""Tests for the bounded worker pool."""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import EngineStoppedError, PoolSaturatedError, ServeError
from repro.serve.pool import WorkerPool


class TestSubmission:
    def test_submit_runs_and_returns(self):
        with WorkerPool(workers=2) as pool:
            future = pool.submit(lambda x: x * 2, 21)
            assert future.result(timeout=5) == 42

    def test_map_preserves_order(self):
        with WorkerPool(workers=4) as pool:
            assert pool.map(lambda x: x * x, range(20)) == [
                x * x for x in range(20)
            ]

    def test_exceptions_travel_through_future(self):
        with WorkerPool(workers=1) as pool:
            future = pool.submit(lambda: 1 / 0)
            with pytest.raises(ZeroDivisionError):
                future.result(timeout=5)

    def test_kwargs_forwarded(self):
        with WorkerPool(workers=1) as pool:
            future = pool.submit(lambda a, b=0: a + b, 1, b=2)
            assert future.result(timeout=5) == 3

    def test_concurrent_execution(self):
        """Two workers make two blocking tasks overlap."""
        barrier = threading.Barrier(2, timeout=5)
        with WorkerPool(workers=2) as pool:
            futures = [pool.submit(barrier.wait) for _ in range(2)]
            for future in futures:
                future.result(timeout=5)  # deadlocks if serialized


class TestBoundedQueue:
    def test_try_submit_sheds_at_bound(self):
        release = threading.Event()
        with WorkerPool(workers=1, queue_bound=1) as pool:
            blocker = pool.submit(release.wait)
            # Wait until the worker holds the blocker, then fill the queue.
            while pool.depth:
                time.sleep(0.001)
            queued = pool.try_submit(lambda: "queued")
            with pytest.raises(PoolSaturatedError):
                pool.try_submit(lambda: "shed")
            release.set()
            assert queued.result(timeout=5) == "queued"
            assert blocker.result(timeout=5) is True

    def test_zero_bound_means_unbounded(self):
        with WorkerPool(workers=1, queue_bound=0) as pool:
            futures = [pool.try_submit(lambda i=i: i) for i in range(100)]
            assert [f.result(timeout=5) for f in futures] == list(range(100))

    def test_depth_reports_queued_tasks(self):
        release = threading.Event()
        with WorkerPool(workers=1, queue_bound=8) as pool:
            pool.submit(release.wait)
            while pool.depth:
                time.sleep(0.001)
            pool.submit(lambda: None)
            pool.submit(lambda: None)
            assert pool.depth == 2
            release.set()


class TestLifecycle:
    def test_stop_rejects_new_work(self):
        pool = WorkerPool(workers=1)
        pool.stop()
        with pytest.raises(EngineStoppedError):
            pool.submit(lambda: None)
        with pytest.raises(EngineStoppedError):
            pool.try_submit(lambda: None)

    def test_stop_drains_queued_work(self):
        pool = WorkerPool(workers=2)
        futures = [pool.submit(lambda i=i: i) for i in range(50)]
        pool.stop(wait=True)
        assert [f.result(timeout=0) for f in futures] == list(range(50))

    def test_stop_idempotent(self):
        pool = WorkerPool(workers=1)
        pool.stop()
        pool.stop()
        assert pool.stopped

    def test_stranded_task_behind_poison_is_failed_not_hung(self):
        """A task that races past the stopped check and lands behind the
        poison pills must have its future failed at drain time."""
        from concurrent.futures import Future

        pool = WorkerPool(workers=1)
        pool.stop(wait=True)
        stranded = Future()
        pool._queue.put((stranded, lambda: "never runs", (), {}))
        pool._drain_stranded()
        with pytest.raises(EngineStoppedError):
            stranded.result(timeout=1)

    def test_stop_twice_with_wait_still_drains(self):
        pool = WorkerPool(workers=1)
        pool.stop(wait=False)
        pool.stop(wait=True)  # second call joins and drains
        assert pool.stopped

    def test_map_from_worker_thread_runs_inline(self):
        """pool.map on the pool's own worker must not deadlock."""
        with WorkerPool(workers=1) as pool:
            future = pool.submit(lambda: pool.map(lambda x: x + 1, [1, 2, 3]))
            assert future.result(timeout=5) == [2, 3, 4]

    def test_validation(self):
        with pytest.raises(ServeError):
            WorkerPool(workers=0)
        with pytest.raises(ServeError):
            WorkerPool(queue_bound=-1)
