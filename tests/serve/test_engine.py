"""Tests for the query-serving engine: admission control, deadlines,
single-flight dedup, snapshot isolation, metrics, and the wiring into
the browse app, the CLI and the federation layer."""

from __future__ import annotations

import io
import threading
import time

import pytest

from repro.core.cache import CachedBanks
from repro.core.incremental import IncrementalBANKS
from repro.errors import (
    DeadlineExceededError,
    EngineOverloadedError,
    EngineStoppedError,
    ServeError,
)
from repro.relational import Database, execute_script
from repro.serve import EngineConfig, QueryEngine

SCHEMA = """
CREATE TABLE author (aid TEXT PRIMARY KEY, name TEXT NOT NULL);
CREATE TABLE paper (pid TEXT PRIMARY KEY, title TEXT NOT NULL);
CREATE TABLE writes (
    aid TEXT NOT NULL REFERENCES author(aid),
    pid TEXT NOT NULL REFERENCES paper(pid)
);
INSERT INTO author VALUES ('a1', 'ada lovelace');
INSERT INTO paper VALUES ('p1', 'analytical engines');
INSERT INTO writes VALUES ('a1', 'p1');
"""


def make_database() -> Database:
    database = Database("serve-test")
    execute_script(database, SCHEMA)
    return database


class GatedFacade:
    """A stand-in facade whose searches block on an event and count
    invocations — makes queue states and in-flight windows deterministic."""

    def __init__(self, gate: threading.Event = None):
        self.gate = gate
        self.calls = 0
        self.started = threading.Semaphore(0)
        self._lock = threading.Lock()
        self.tag = "v0"

    def search(self, query, **kwargs):
        with self._lock:
            self.calls += 1
        self.started.release()
        if self.gate is not None:
            assert self.gate.wait(timeout=5)
        return [(query, self.tag)]

    def __deepcopy__(self, memo):
        """Locks cannot be deep-copied; share the gate, fork the state —
        mirrors what a real facade's copy semantics must provide."""
        clone = GatedFacade(self.gate)
        clone.tag = self.tag
        return clone


class TestBasicServing:
    def test_search_matches_facade(self):
        database = make_database()
        with QueryEngine(CachedBanks(database)) as engine:
            direct = CachedBanks(database).search("ada engines")
            served = engine.search("ada engines", timeout=5)
            assert [a.tree.undirected_key() for a in served] == [
                a.tree.undirected_key() for a in direct
            ]

    def test_submit_outcome_carries_version_and_latency(self):
        with QueryEngine(CachedBanks(make_database())) as engine:
            outcome = engine.submit("ada").result(timeout=5)
            assert outcome.snapshot_version == 0
            assert outcome.latency >= 0
            assert outcome.answers

    def test_search_kwargs_forwarded(self):
        from repro.core.scoring import ScoringConfig

        with QueryEngine(CachedBanks(make_database())) as engine:
            answers = engine.search(
                "ada",
                timeout=5,
                max_results=1,
                scoring=ScoringConfig(lambda_weight=0.8),
            )
            assert len(answers) <= 1

    def test_search_errors_propagate(self):
        from repro.errors import QueryError

        with QueryEngine(CachedBanks(make_database())) as engine:
            with pytest.raises(QueryError):
                engine.search("", timeout=5)
            assert engine.metrics.snapshot()["errors_total"] == 1

    def test_config_validation(self):
        with pytest.raises(ServeError):
            EngineConfig(shed_policy="panic")
        with pytest.raises(ServeError):
            EngineConfig(default_deadline=0)


class TestAdmissionControl:
    def test_sheds_above_queue_bound(self):
        gate = threading.Event()
        facade = GatedFacade(gate)
        config = EngineConfig(workers=1, queue_bound=1, dedup=False)
        with QueryEngine(facade, config) as engine:
            running = engine.submit("alpha")
            assert facade.started.acquire(timeout=5)
            queued = engine.submit("beta")
            with pytest.raises(EngineOverloadedError):
                engine.submit("gamma")
            snapshot = engine.metrics.snapshot()
            assert snapshot["shed_total"] == 1
            assert snapshot["queue_depth"] == 1
            gate.set()
            assert running.result(timeout=5)
            assert queued.result(timeout=5)

    def test_block_policy_applies_backpressure(self):
        gate = threading.Event()
        facade = GatedFacade(gate)
        config = EngineConfig(
            workers=1, queue_bound=1, shed_policy="block", dedup=False
        )
        with QueryEngine(facade, config) as engine:
            engine.submit("alpha")
            assert facade.started.acquire(timeout=5)
            engine.submit("beta")
            unblocked = []

            def late_submit():
                unblocked.append(engine.submit("gamma"))

            submitter = threading.Thread(target=late_submit)
            submitter.start()
            time.sleep(0.05)
            assert not unblocked  # still waiting for a queue slot
            gate.set()
            submitter.join(timeout=5)
            assert unblocked and unblocked[0].result(timeout=5)
            assert engine.metrics.snapshot()["shed_total"] == 0

    def test_deadline_expired_in_queue(self):
        gate = threading.Event()
        facade = GatedFacade(gate)
        config = EngineConfig(workers=1, queue_bound=4, dedup=False)
        with QueryEngine(facade, config) as engine:
            engine.submit("alpha")
            assert facade.started.acquire(timeout=5)
            doomed = engine.submit("beta", deadline=0.01)
            time.sleep(0.05)
            gate.set()
            with pytest.raises(DeadlineExceededError):
                doomed.result(timeout=5)
            assert engine.metrics.snapshot()["deadline_expired_total"] == 1
            # The worker was not wasted on the expired request.
            assert facade.calls == 1

    def test_default_deadline_from_config(self):
        gate = threading.Event()
        facade = GatedFacade(gate)
        config = EngineConfig(
            workers=1, queue_bound=4, default_deadline=0.01, dedup=False
        )
        with QueryEngine(facade, config) as engine:
            engine.submit("alpha")
            assert facade.started.acquire(timeout=5)
            doomed = engine.submit("beta")
            time.sleep(0.05)
            gate.set()
            with pytest.raises(DeadlineExceededError):
                doomed.result(timeout=5)

    def test_stopped_engine_rejects(self):
        engine = QueryEngine(GatedFacade())
        engine.stop()
        with pytest.raises(EngineStoppedError):
            engine.submit("alpha")

    def test_shed_leader_fails_followers_instead_of_hanging(self):
        """A shed submission must resolve its single-flight future, or
        followers that joined the flight would wait forever."""
        gate = threading.Event()
        facade = GatedFacade(gate)
        config = EngineConfig(workers=1, queue_bound=1)
        with QueryEngine(facade, config) as engine:
            engine.submit("alpha")
            assert facade.started.acquire(timeout=5)
            engine.submit("beta")  # fills the queue
            outcomes = []
            lock = threading.Lock()

            def contend():
                try:
                    future = engine.submit("gamma")
                    future.result(timeout=5)
                    outcome = "completed"
                except EngineOverloadedError:
                    outcome = "overloaded"
                with lock:
                    outcomes.append(outcome)

            threads = [threading.Thread(target=contend) for _ in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=10)
            assert not any(thread.is_alive() for thread in threads)
            gate.set()
            # Every contender terminated: shed leaders raised, followers
            # (if any latched on) got the failure through the future.
            assert len(outcomes) == 4
            assert set(outcomes) <= {"overloaded", "completed"}

    def test_cancelled_queued_request_does_not_poison_the_flight(self):
        """Cancelling one caller's handle abandons that caller only; a
        retry of the same query still completes."""
        gate = threading.Event()
        facade = GatedFacade(gate)
        config = EngineConfig(workers=1, queue_bound=4)
        with QueryEngine(facade, config) as engine:
            engine.submit("alpha")
            assert facade.started.acquire(timeout=5)
            doomed = engine.submit("beta")
            assert doomed.cancel()
            retried = engine.submit("beta")  # joins the still-live flight
            assert retried is not doomed
            gate.set()
            assert retried.result(timeout=5).answers == [("beta", "v0")]


class TestSingleFlightDedup:
    def test_identical_inflight_queries_share_one_computation(self):
        gate = threading.Event()
        facade = GatedFacade(gate)
        with QueryEngine(facade, EngineConfig(workers=2)) as engine:
            leader = engine.submit("hot query")
            assert facade.started.acquire(timeout=5)
            followers = [engine.submit("hot query") for _ in range(7)]
            gate.set()
            results = [f.result(timeout=5) for f in [leader, *followers]]
            assert facade.calls == 1
            assert all(r is results[0] for r in results)
            assert engine.metrics.snapshot()["dedup_shared_total"] == 7

    def test_cancelling_one_follower_does_not_cancel_the_flight(self):
        gate = threading.Event()
        facade = GatedFacade(gate)
        with QueryEngine(facade, EngineConfig(workers=2)) as engine:
            leader = engine.submit("hot query")
            assert facade.started.acquire(timeout=5)
            follower_a = engine.submit("hot query")
            follower_b = engine.submit("hot query")
            assert follower_a.cancel()  # abandons only this caller
            gate.set()
            assert leader.result(timeout=5).answers == [("hot query", "v0")]
            assert follower_b.result(timeout=5).answers == [
                ("hot query", "v0")
            ]
            assert facade.calls == 1

    def test_different_queries_not_shared(self):
        gate = threading.Event()
        facade = GatedFacade(gate)
        with QueryEngine(facade, EngineConfig(workers=4)) as engine:
            first = engine.submit("alpha")
            second = engine.submit("beta")
            assert first is not second
            gate.set()
            first.result(timeout=5)
            second.result(timeout=5)
            assert facade.calls == 2

    def test_completed_flight_not_reused(self):
        facade = GatedFacade()
        with QueryEngine(facade, EngineConfig(workers=1)) as engine:
            engine.submit("alpha").result(timeout=5)
            engine.submit("alpha").result(timeout=5)
            assert facade.calls == 2  # no cache at this layer, by design

    def test_dedup_disabled(self):
        gate = threading.Event()
        facade = GatedFacade(gate)
        config = EngineConfig(workers=2, dedup=False)
        with QueryEngine(facade, config) as engine:
            first = engine.submit("alpha")
            second = engine.submit("alpha")
            assert first is not second
            gate.set()
            first.result(timeout=5)
            second.result(timeout=5)
            assert facade.calls == 2

    def test_dedup_keys_include_deadline(self):
        """A lenient request must not inherit a strict leader's expiry."""
        gate = threading.Event()
        facade = GatedFacade(gate)
        with QueryEngine(facade, EngineConfig(workers=2)) as engine:
            strict = engine.submit("alpha", deadline=30.0)
            lenient = engine.submit("alpha")
            gate.set()
            strict.result(timeout=5)
            lenient.result(timeout=5)
            assert facade.calls == 2  # separate flights, both computed
            assert engine.metrics.snapshot()["dedup_shared_total"] == 0

    def test_dedup_keys_include_result_count(self):
        gate = threading.Event()
        facade = GatedFacade(gate)
        with QueryEngine(facade, EngineConfig(workers=2)) as engine:
            first = engine.submit("alpha", max_results=5)
            second = engine.submit("alpha", max_results=10)
            gate.set()
            first.result(timeout=5)
            second.result(timeout=5)
            assert facade.calls == 2
            assert engine.metrics.snapshot()["dedup_shared_total"] == 0

    def test_unrecognised_kwargs_opt_out(self):
        gate = threading.Event()
        facade = GatedFacade(gate)
        with QueryEngine(facade, EngineConfig(workers=2)) as engine:
            first = engine.submit("alpha", output_heap_size=50)
            second = engine.submit("alpha", output_heap_size=50)
            assert first is not second
            gate.set()
            first.result(timeout=5)
            second.result(timeout=5)


class TestSnapshotIsolation:
    def test_mutations_publish_new_versions(self):
        facade = IncrementalBANKS(make_database())
        with QueryEngine(facade) as engine:
            before = engine.submit("ada").result(timeout=5)
            engine.mutate(
                lambda f: f.insert("paper", ["p2", "sketch of the engine"])
            )
            after = engine.submit("sketch").result(timeout=5)
            assert before.snapshot_version == 0
            assert after.snapshot_version == 1
            assert after.answers

    def test_requests_across_versions_not_deduplicated(self):
        gate = threading.Event()
        facade = GatedFacade(gate)
        with QueryEngine(facade, EngineConfig(workers=2)) as engine:
            first = engine.submit("alpha")
            assert facade.started.acquire(timeout=5)
            engine.mutate(lambda clone: setattr(clone, "tag", "v1"))
            second = engine.submit("alpha")
            assert second is not first  # version is part of the key
            gate.set()
            assert first.result(timeout=5).answers == [("alpha", "v0")]
            gate.set()
            assert second.result(timeout=5).answers == [("alpha", "v1")]

    def test_reader_admitted_before_publish_sees_old_version(self):
        gate = threading.Event()
        facade = GatedFacade(gate)
        with QueryEngine(facade, EngineConfig(workers=1)) as engine:
            pinned = engine.submit("alpha")
            assert facade.started.acquire(timeout=5)
            engine.mutate(lambda clone: setattr(clone, "tag", "v1"))
            gate.set()
            outcome = pinned.result(timeout=5)
            assert outcome.snapshot_version == 0
            assert outcome.answers == [("alpha", "v0")]


class TestMetricsIntegration:
    def test_counters_and_latency(self):
        with QueryEngine(CachedBanks(make_database())) as engine:
            for _ in range(4):
                engine.search("ada", timeout=5)
            snapshot = engine.metrics.snapshot()
            assert snapshot["requests_total"] == 4
            assert snapshot["completed_total"] == 4
            assert snapshot["latency_seconds_p50"] >= 0
            assert snapshot["cache_hit_rate"] == 0.75  # 1 miss, 3 hits

    def test_render_text_has_engine_metrics(self):
        with QueryEngine(CachedBanks(make_database())) as engine:
            engine.search("ada", timeout=5)
            text = engine.metrics.render_text()
            assert "banks_engine_requests_total 1" in text
            assert "banks_engine_snapshot_version 0" in text
            assert 'banks_engine_latency_seconds{quantile="0.95"}' in text


class TestBrowseAppIntegration:
    def make_app(self):
        from repro.browse.app import BrowseApp
        from repro.core.banks import BANKS

        database = make_database()
        engine = QueryEngine(CachedBanks(database))
        return BrowseApp(BANKS(database), engine=engine), engine

    def test_search_routes_through_engine(self):
        app, engine = self.make_app()
        with engine:
            status, html = app.handle("/search", "q=ada+engines")
            assert status == "200 OK"
            assert "relevance" in html
            assert engine.metrics.snapshot()["completed_total"] == 1

    def test_metrics_endpoint(self):
        app, engine = self.make_app()
        with engine:
            app.handle("/search", "q=ada")
            status, text = app.handle("/metrics", "")
            assert status == "200 OK"
            assert "banks_engine_completed_total 1" in text

    def test_metrics_content_type_is_plaintext(self):
        app, engine = self.make_app()
        with engine:
            seen = {}

            def start_response(status, headers):
                seen["status"] = status
                seen["headers"] = dict(headers)

            body = b"".join(
                app({"PATH_INFO": "/metrics", "QUERY_STRING": ""},
                    start_response)
            )
            assert seen["status"] == "200 OK"
            assert seen["headers"]["Content-Type"].startswith("text/plain")
            assert b"banks_engine_requests_total" in body

    def test_browse_pages_follow_published_snapshots(self):
        """Search results from a new snapshot must link to rows the
        browse side can render: browse reads the current snapshot."""
        from repro.browse.app import BrowseApp

        facade = IncrementalBANKS(make_database())
        with QueryEngine(facade) as engine:
            app = BrowseApp(facade, engine=engine)
            engine.mutate(
                lambda f: f.insert("paper", ["p2", "fresh snapshot study"])
            )
            status, html = app.handle("/search", "q=fresh+snapshot")
            assert status == "200 OK"
            assert "fresh snapshot study" in html
            # The result's row link resolves against the browse database.
            new_rid = max(
                app.database.table("paper").rids()
            )
            status, row_html = app.handle(f"/row/paper/{new_rid}", "")
            assert status == "200 OK"
            assert "fresh snapshot study" in row_html

    def test_no_engine_no_metrics_route(self):
        from repro.browse.app import BrowseApp
        from repro.core.banks import BANKS

        app = BrowseApp(BANKS(make_database()))
        status, _html = app.handle("/metrics", "")
        assert status.startswith("404")


class TestCliIntegration:
    def run_cli(self, *argv):
        from repro.cli import main

        out = io.StringIO()
        status = main(list(argv), out=out)
        return status, out.getvalue()

    def test_serve_check_with_engine(self):
        status, output = self.run_cli("serve", "demo:university", "--check")
        assert status == 0
        assert "GET / -> 200" in output
        assert "GET /metrics -> 200" in output

    def test_serve_check_without_engine(self):
        status, output = self.run_cli(
            "serve", "demo:university", "--check", "--inline"
        )
        assert status == 0
        assert "metrics" not in output

    def test_bench_serve_smoke(self):
        status, output = self.run_cli(
            "bench-serve",
            "demo:university",
            "--requests", "16",
            "--concurrency", "4",
            "--workers", "4",
        )
        assert status == 0
        assert "speedup" in output
        assert "shed              : 0" in output


class TestFederationFanout:
    def make_federation(self):
        from repro.federate import Federation

        pubs = Database("pubs")
        execute_script(
            pubs,
            """
            CREATE TABLE author (aid TEXT PRIMARY KEY, name TEXT NOT NULL);
            INSERT INTO author VALUES ('a1', 'sudarshan');
            INSERT INTO author VALUES ('a2', 'widom');
            """,
        )
        teaching = Database("teaching")
        execute_script(
            teaching,
            """
            CREATE TABLE instructor (iid TEXT PRIMARY KEY, name TEXT NOT NULL);
            INSERT INTO instructor VALUES ('i1', 'sudarshan');
            """,
        )
        fed = Federation("campus")
        fed.register("pubs", pubs)
        fed.register("teaching", teaching)
        return fed

    def test_pool_fanout_matches_serial_resolution(self):
        from repro.federate import FederatedBanks
        from repro.serve.pool import WorkerPool

        fed = self.make_federation()
        serial = FederatedBanks(fed)
        with WorkerPool(workers=4) as pool:
            fanned = FederatedBanks(fed, pool=pool)
            for query in ("sudarshan", "widom instructor"):
                assert fanned.resolve(query) == serial.resolve(query)
                assert [
                    a.tree.undirected_key() for a in fanned.search(query)
                ] == [a.tree.undirected_key() for a in serial.search(query)]

    def test_engine_pool_reusable_for_fanout(self):
        from repro.federate import FederatedBanks

        fed = self.make_federation()
        with QueryEngine(CachedBanks(make_database())) as engine:
            fanned = FederatedBanks(fed, pool=engine.pool)
            assert fanned.resolve("sudarshan") == FederatedBanks(fed).resolve(
                "sudarshan"
            )

    def test_federated_facade_served_by_its_own_pool_does_not_deadlock(self):
        """The advertised shard-router shape: the federated facade runs
        *on* the engine whose pool it fans out through.  pool.map from a
        worker must run inline, or one worker would wait on sub-tasks no
        other worker can ever pick up."""
        from repro.federate import FederatedBanks

        fed = self.make_federation()
        engine = QueryEngine(
            FederatedBanks(fed), EngineConfig(workers=1, dedup=False)
        )
        with engine:
            engine.facade.pool = engine.pool  # share the single worker
            answers = engine.search("sudarshan", timeout=10)
            assert answers
