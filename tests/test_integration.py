"""Cross-module integration tests: the full pipelines a user would run."""

import sqlite3

import pytest

from repro import BANKS, WeightPolicy
from repro.browse.app import BrowseApp
from repro.datasets import generate_tpcd, generate_university
from repro.eval.baselines import uniform_backedge_policy
from repro.relational.sqlite_adapter import load_sqlite
from repro.text.disk_index import DiskIndex
from repro.text.inverted_index import InvertedIndex


class TestSqliteToSearchPipeline:
    """sqlite file -> adapter -> graph -> keyword search -> browse."""

    @pytest.fixture
    def sqlite_banks(self):
        connection = sqlite3.connect(":memory:")
        connection.executescript(
            """
            CREATE TABLE city (id TEXT PRIMARY KEY, name TEXT NOT NULL);
            CREATE TABLE person (
                id TEXT PRIMARY KEY,
                name TEXT NOT NULL,
                city_id TEXT REFERENCES city(id)
            );
            CREATE TABLE friendship (
                a TEXT NOT NULL REFERENCES person(id),
                b TEXT NOT NULL REFERENCES person(id),
                PRIMARY KEY (a, b)
            );
            INSERT INTO city VALUES ('C1', 'Mumbai');
            INSERT INTO city VALUES ('C2', 'Pune');
            INSERT INTO person VALUES ('P1', 'Asha Kulkarni', 'C1');
            INSERT INTO person VALUES ('P2', 'Ravi Mehta', 'C2');
            INSERT INTO friendship VALUES ('P1', 'P2');
            """
        )
        database = load_sqlite(connection)
        connection.close()
        return BANKS(database)

    def test_cross_table_connection_found(self, sqlite_banks):
        answers = sqlite_banks.search("asha ravi")
        assert answers
        top = answers[0].tree
        labels = {sqlite_banks.node_label(node) for node in top.nodes}
        assert any("Asha" in label for label in labels)
        assert any("Ravi" in label for label in labels)

    def test_friendship_table_excluded_as_root(self, sqlite_banks):
        assert "friendship" in sqlite_banks.search_config.excluded_root_tables

    def test_browse_over_imported_database(self, sqlite_banks):
        app = BrowseApp(sqlite_banks)
        status, html = app.handle("/table/person", "")
        assert status == "200 OK"
        assert "Asha Kulkarni" in html


class TestDiskIndexSearchEquivalence:
    def test_search_from_disk_postings(self, figure1_db, tmp_path):
        """The disk index must resolve the same keyword nodes as the
        in-memory index (the paper's deployment configuration)."""
        memory_index = InvertedIndex(figure1_db)
        disk_index = DiskIndex.write(
            memory_index, str(tmp_path / "kw.idx")
        )
        for term in ("soumen", "sunita", "mining"):
            memory_nodes = {p.node for p in memory_index.lookup(term)}
            disk_nodes = {p.node for p in disk_index.lookup(term)}
            assert memory_nodes == disk_nodes


class TestWeightPolicyEffects:
    def test_hub_ablation_changes_top_answer_weight(self):
        database, anecdotes = generate_university(students=60, courses=8)
        scaled = BANKS(database)
        uniform = BANKS(database, weight_policy=uniform_backedge_policy())
        query = "alice bob"
        scaled_top = scaled.search(query, output_heap_size=100)[0]
        uniform_top = uniform.search(query, output_heap_size=100)[0]
        # With indegree scaling the shared-course tree is strictly the
        # best; with uniform weights hub trees tie with it.
        assert anecdotes.shared_course in scaled_top.tree.nodes
        assert scaled_top.tree.weight < database.indegree(
            anecdotes.big_department
        )
        assert uniform_top.tree.weight <= scaled_top.tree.weight

    def test_pagerank_prestige_end_to_end(self):
        database, anecdotes = generate_tpcd(orders=60)
        banks = BANKS(database, weight_policy=WeightPolicy(prestige="pagerank"))
        answers = banks.search("steel")
        assert answers[0].tree.root == anecdotes.popular_steel_part


class TestSearchConfigPlumbing:
    def test_origin_distance_scale_runs(self, figure1_banks):
        answers = figure1_banks.search(
            "soumen sunita", origin_distance_scale=2.0
        )
        assert answers  # extension path is exercised and still correct
        assert answers[0].tree.root == ("paper", 0)

    def test_parallel_merge_rule_end_to_end(self, figure1_db):
        banks = BANKS(
            figure1_db, weight_policy=WeightPolicy(merge_rule="parallel")
        )
        answers = banks.search("soumen sunita")
        assert answers
        answers[0].tree.validate()
