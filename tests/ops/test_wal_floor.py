"""Retention vs the checkpoint floor: pruning never outruns recovery.

Satellite of the checkpointing PR: a :class:`~repro.store.wal.
WalWriter` with both ``retain`` and a ``checkpoint_path`` clamps its
prune horizon to the newest *manifested* checkpoint epoch
(:func:`~repro.store.wal.checkpoint_floor`), warns once per stalled
floor value, and resumes pruning as checkpoints advance — so a
``retain`` window can no longer make the log unrecoverable while the
checkpointer lags.
"""

from __future__ import annotations

import json
import os
import warnings

import pytest

from repro.core.incremental import IncrementalBANKS
from repro.errors import StoreError
from repro.ops.checkpoint import CheckpointManager
from repro.serve.snapshot import SnapshotStore
from repro.store.wal import WalReader, WalWriter, checkpoint_floor

from tests.ops.test_checkpoint_crash import make_db, top5


def build_store(wal_dir: str, ckpt_dir: str, retain: int):
    """A delta store over a WAL that rotates every record into its own
    segment (``segment_bytes=1``), so the segment-granular pruner acts
    at epoch granularity and the clamp is observable exactly."""
    writer = WalWriter(
        wal_dir,
        fsync="never",
        segment_bytes=1,
        retain=retain,
        checkpoint_path=ckpt_dir,
    )
    store = SnapshotStore(
        IncrementalBANKS(make_db()), copy_mode="delta", wal=writer
    )
    return writer, store


def publish(store, step: int) -> None:
    store.mutate(
        lambda facade, step=step: facade.insert(
            "paper", [f"fl{step}", f"epoch study {step}"]
        )
    )


class TestFloorClampsPruning:
    def test_no_manifest_means_no_pruning_and_one_warning(self, tmp_path):
        wal_dir = str(tmp_path / "wal")
        ckpt_dir = str(tmp_path / "checkpoints")
        writer, store = build_store(wal_dir, ckpt_dir, retain=2)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            for step in range(8):
                publish(store, step)
        clamped = [w for w in caught if "clamping" in str(w.message)]
        assert len(clamped) == 1  # deduped per floor value (floor 0)
        assert writer.pruned_segments == 0
        reader = WalReader(wal_dir)
        assert reader.first_epoch() == 1  # every epoch still on disk
        assert reader.last_epoch() == 8

    def test_manifest_advances_floor_and_rearms_warning(self, tmp_path):
        wal_dir = str(tmp_path / "wal")
        ckpt_dir = str(tmp_path / "checkpoints")
        writer, store = build_store(wal_dir, ckpt_dir, retain=1)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            for step in range(4):
                publish(store, step)
            # Checkpoint epoch 4: the floor moves to 4, later appends
            # prune up to it but no further (horizon wants more), and
            # the warning fires again because the floor value changed.
            CheckpointManager(ckpt_dir).checkpoint(
                store.current().facade, store.epoch
            )
            for step in range(4, 7):
                publish(store, step)
        clamped = [w for w in caught if "clamping" in str(w.message)]
        assert len(clamped) == 2  # once at floor 0, once at floor 4
        assert WalReader(wal_dir).first_epoch() == 5
        assert writer.pruned_segments > 0

    def test_current_checkpoint_lets_retention_prune_freely(self, tmp_path):
        wal_dir = str(tmp_path / "wal")
        ckpt_dir = str(tmp_path / "checkpoints")
        writer, store = build_store(wal_dir, ckpt_dir, retain=2)
        for step in range(5):
            publish(store, step)
        CheckpointManager(ckpt_dir).checkpoint(store.current().facade, 5)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            publish(store, 5)  # horizon 6-2=4 <= floor 5: no clamp
        assert [w for w in caught if "clamping" in str(w.message)] == []
        assert WalReader(wal_dir).first_epoch() == 5

    def test_recovery_from_pruned_wal_requires_the_checkpoint(
        self, tmp_path
    ):
        wal_dir = str(tmp_path / "wal")
        ckpt_dir = str(tmp_path / "checkpoints")
        _writer, store = build_store(wal_dir, ckpt_dir, retain=1)
        for step in range(4):
            publish(store, step)
        CheckpointManager(ckpt_dir).checkpoint(
            store.current().facade, store.epoch
        )
        for step in range(4, 7):
            publish(store, step)  # prunes epochs 1..4 behind the floor
        assert WalReader(wal_dir).first_epoch() == 5
        live = top5(store.current().facade)

        # Base-snapshot replay refuses the hole; checkpointed recovery
        # starts at epoch 4 and replays only the retained tail.
        with pytest.raises(StoreError):
            IncrementalBANKS.recover(make_db, wal_dir)
        recovered = IncrementalBANKS.recover(
            make_db, wal_dir, checkpoints=ckpt_dir
        )
        assert recovered.applied_epoch == store.epoch == 7
        assert top5(recovered) == live


class TestFloorParsing:
    def test_missing_directory_and_manifest_are_floor_zero(self, tmp_path):
        assert checkpoint_floor(None) == 0
        assert checkpoint_floor(str(tmp_path / "nowhere")) == 0
        empty = tmp_path / "empty"
        empty.mkdir()
        assert checkpoint_floor(str(empty)) == 0

    @pytest.mark.parametrize(
        "payload",
        (
            b"not json at all",
            b"{}",
            b'{"checkpoint_epoch": "forty-two"}',
            b'{"checkpoint_epoch": -3}',
            b'{"checkpoint_epoch": 0}',
        ),
    )
    def test_garbage_manifest_is_floor_zero(self, tmp_path, payload):
        (tmp_path / "MANIFEST.json").write_bytes(payload)
        assert checkpoint_floor(str(tmp_path)) == 0

    def test_valid_manifest_is_its_epoch(self, tmp_path):
        (tmp_path / "MANIFEST.json").write_text(
            json.dumps({"format": 1, "checkpoint_epoch": 42})
        )
        assert checkpoint_floor(str(tmp_path)) == 42

    def test_manager_writes_the_floor_the_writer_reads(self, tmp_path):
        wal_dir = str(tmp_path / "wal")
        ckpt_dir = str(tmp_path / "checkpoints")
        _writer, store = build_store(wal_dir, ckpt_dir, retain=3)
        for step in range(3):
            publish(store, step)
        CheckpointManager(ckpt_dir).checkpoint(store.current().facade, 3)
        assert checkpoint_floor(ckpt_dir) == 3
        assert os.path.exists(os.path.join(ckpt_dir, "MANIFEST.json"))
