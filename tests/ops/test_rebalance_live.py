"""Live rebalancing: drains under query load, rollback on faults.

The serving claim of :meth:`~repro.shard.router.ShardRouter.rebalance`:
every move holds the write gate exactly like a routed mutation, so a
query admitted at any point during a drain sees a disjoint ownership
cover and a complete answer set — never a missing node, never a
double-owned one — and the post-drain answers equal the pre-drain
answers exactly.  A fault mid-move rolls that move back atomically
(proven here per :data:`~repro.ops.rebalance.REBALANCE_STEPS` step).
"""

from __future__ import annotations

import threading

import pytest

from repro.core.incremental import IncrementalBANKS
from repro.datasets import generate_bibliography
from repro.ops.faults import FaultInjected, FaultInjector
from repro.ops.rebalance import REBALANCE_STEPS, drain_plan, plan_rebalance
from repro.shard.process import fork_available
from repro.shard.router import ShardRouter
from repro.store.bench import PROBE_QUERIES

from tests.ops.test_checkpoint_crash import make_db

SHARDS = 3


def tie_signature(answers):
    ranked = sorted(answers, key=lambda a: (-a.relevance, repr(a.tree.root)))
    return [(a.tree.root, round(a.relevance, 9)) for a in ranked]


def disjoint_cover(router) -> bool:
    owned: set = set()
    total = 0
    for nodes in router.partition.shard_nodes:
        total += len(nodes)
        owned |= nodes
    return total == len(owned) and owned == set(router.graph.nodes())


class TestDrainUnderLoad:
    def test_background_queries_see_complete_undamaged_answers(self):
        """Three threads hammer the probe queries while a full shard
        drains.  Every observed answer set must be internally sound (no
        duplicated roots), at least as large as the unsharded
        reference's, and never-worse at every rank; the post-drain
        answers must equal the pre-drain ones exactly."""
        database, _anecdotes = generate_bibliography(
            papers=150, authors=80, seed=11
        )
        reference = IncrementalBANKS(database.fork())
        reference_sigs = {
            query: tie_signature(reference.search(query, max_results=5))
            for query in PROBE_QUERIES
        }
        router = ShardRouter(database.fork(), shards=SHARDS, backend="thread")
        with router:
            before = {
                query: tie_signature(router.search(query, max_results=5))
                for query in PROBE_QUERIES
            }
            observed = [[] for _ in range(3)]
            errors = []
            stop = threading.Event()

            def prober(out):
                while not stop.is_set():
                    for query in PROBE_QUERIES:
                        try:
                            out.append(
                                (
                                    query,
                                    tie_signature(
                                        router.search(query, max_results=5)
                                    ),
                                )
                            )
                        except Exception as error:  # noqa: BLE001 - recorded
                            errors.append(error)
                            return

            threads = [
                threading.Thread(target=prober, args=(out,))
                for out in observed
            ]
            for thread in threads:
                thread.start()
            try:
                outcome = router.rebalance(drain_plan(router, SHARDS - 1))
            finally:
                stop.set()
                for thread in threads:
                    thread.join()

            assert errors == []
            assert outcome["applied"] > 0 and outcome["skipped"] == 0
            assert not router.partition.shard_nodes[SHARDS - 1]
            assert disjoint_cover(router)
            after = {
                query: tie_signature(router.search(query, max_results=5))
                for query in PROBE_QUERIES
            }
            assert after == before

            probes = sum(len(out) for out in observed)
            assert probes > 0
            for out in observed:
                for query, signature in out:
                    roots = [root for root, _score in signature]
                    assert len(roots) == len(set(roots)), query
                    want = reference_sigs[query]
                    assert len(signature) >= len(want), query
                    for (_root, score), (_ref_root, ref_score) in zip(
                        signature, want
                    ):
                        assert score >= ref_score - 1e-9, query

    @pytest.mark.skipif(not fork_available(), reason="needs fork")
    def test_process_backend_drain_keeps_exact_parity(self):
        """The forked-worker move path: drain a shard, then require
        answer parity with an identically mutated single engine."""
        router = ShardRouter(make_db(), shards=2, backend="process")
        facade = IncrementalBANKS(make_db())
        with router:
            for step in range(4):
                row = [f"lv{step}", f"drain study {step}"]
                router.insert("paper", row)
                facade.insert("paper", row)
            before = {
                query: tie_signature(router.search(query, max_results=5))
                for query in ("grace", "drain study", "abstraction")
            }
            outcome = router.rebalance(drain_plan(router, 1))
            assert outcome["applied"] > 0
            assert not router.partition.shard_nodes[1]
            assert disjoint_cover(router)
            for query, want in before.items():
                assert (
                    tie_signature(router.search(query, max_results=5)) == want
                ), query
                assert (
                    tie_signature(facade.search(query, max_results=5)) == want
                ), query


class TestFaultMidDrain:
    @pytest.mark.parametrize("step", REBALANCE_STEPS)
    def test_kill_mid_move_rolls_back_atomically(self, step):
        """Kill the drain's second move at every protocol step: the
        first move sticks, the interrupted one fully reverts, and the
        router still answers exactly as before the attempt."""
        router = ShardRouter(make_db(), shards=SHARDS, backend="thread")
        with router:
            queries = ("grace", "abstraction", "compiling")
            before = {
                query: tie_signature(router.search(query, max_results=5))
                for query in queries
            }
            ownership_before = [
                set(nodes) for nodes in router.partition.shard_nodes
            ]
            plan = drain_plan(router, SHARDS - 1)
            assert len(plan.moves) >= 2
            faults = FaultInjector().kill_at(step, occurrence=2)
            with pytest.raises(FaultInjected):
                router.rebalance(plan, faults=faults)
            assert faults.fired == [(step, "kill", 2)]

            # Move 1 applied; move 2 reverted — its node is back home.
            second = plan.moves[1]
            assert router.partition.shard_of(second.node) == second.source
            assert disjoint_cover(router)
            moved = sum(
                1
                for shard, nodes in enumerate(ownership_before)
                for node in nodes
                if router.partition.shard_of(node) != shard
            )
            assert moved == 1
            for query in queries:
                assert (
                    tie_signature(router.search(query, max_results=5))
                    == before[query]
                ), query

            # The drain is resumable: re-planning finishes the job.
            router.rebalance(drain_plan(router, SHARDS - 1))
            assert not router.partition.shard_nodes[SHARDS - 1]
            assert disjoint_cover(router)

    def test_metrics_plan_is_deterministic_and_applies(self):
        router = ShardRouter(make_db(), shards=SHARDS, backend="thread")
        with router:
            plan = plan_rebalance(router, max_moves=4)
            again = plan_rebalance(router, max_moves=4)
            assert plan.moves == again.moves
            outcome = router.rebalance(plan)
            assert outcome["applied"] + outcome["skipped"] == len(plan.moves)
            assert disjoint_cover(router)
