"""Property test: random mutations interleaved with random rebalances
keep the router an exact mirror of the unsharded engine.

The searches use an exhaustive ``max_results`` (larger than any answer
set a 12-op history can produce), so parity is ownership-independent:
per-shard top-k emission cutoffs — which legitimately shuffle *deep*
ranks when ownership moves — never truncate anything, and the answer
lists must match strictly after every rebalance regardless of where
the nodes live.  Answers are compared by the engine's own duplicate
identity (:meth:`~repro.core.answer.AnswerTree.undirected_key`: node
set + undirected edges — root choice within an equal-scoring tree is
discovery-order dependent by design) plus the exact score.  Ownership
itself must stay a disjoint cover of the graph throughout.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.incremental import IncrementalBANKS
from repro.ops.rebalance import drain_plan, plan_rebalance
from repro.shard.router import ShardRouter

from tests.ops.test_checkpoint_crash import make_db

SHARDS = 3
QUERIES = ("grace", "abstraction", "property study", "compiling barbara")

#: Each op is (kind, pick); pick deterministically selects the target
#: row/shard so Hypothesis shrinks to minimal failing histories.
OPS = st.lists(
    st.tuples(
        st.sampled_from(
            ("insert_paper", "link", "rename", "unlink", "drain", "plan")
        ),
        st.integers(min_value=0, max_value=999),
    ),
    max_size=12,
)


def canonical_tree(tree):
    """The engine's undirected duplicate key, in an orderable form."""
    nodes = tuple(sorted(repr(node) for node in tree.nodes))
    edges = tuple(
        sorted(
            tuple(sorted((repr(source), repr(target))))
            for source, target in tree.edges
        )
    )
    return (nodes, edges)


def exhaustive_signature(target, query):
    entries = [
        (round(a.relevance, 9), canonical_tree(a.tree))
        for a in target.search(query, max_results=32)
    ]
    return sorted(entries, key=lambda entry: (-entry[0], entry[1]))


def assert_mirrors(router, reference):
    for query in QUERIES:
        assert exhaustive_signature(router, query) == exhaustive_signature(
            reference, query
        ), query
    owned: set = set()
    total = 0
    for nodes in router.partition.shard_nodes:
        total += len(nodes)
        owned |= nodes
    assert total == len(owned), "a node is owned by two shards"
    assert owned == set(router.graph.nodes()), "ownership is not a cover"


@settings(max_examples=25, deadline=None)
@given(ops=OPS)
def test_random_mutations_and_rebalances_mirror_the_reference(ops):
    reference = IncrementalBANKS(make_db())
    router = ShardRouter(make_db(), shards=SHARDS, backend="thread")
    with router:
        paper_rids = [("paper", 0), ("paper", 1)]
        author_ids = ["a1", "a2"]
        paper_ids = ["p1", "p2"]
        link_rids = []
        linked = {("a1", "p1"), ("a2", "p2")}
        serial = 0
        for kind, pick in ops:
            if kind == "insert_paper":
                pid = f"hp{serial}"
                title = f"property study {serial}"
                rid = router.insert("paper", [pid, title])
                assert reference.insert("paper", [pid, title]) == rid
                paper_rids.append(rid)
                paper_ids.append(pid)
                serial += 1
            elif kind == "link":
                aid = author_ids[pick % len(author_ids)]
                pid = paper_ids[pick % len(paper_ids)]
                if (aid, pid) in linked:
                    continue
                linked.add((aid, pid))
                rid = router.insert("writes", [aid, pid])
                assert reference.insert("writes", [aid, pid]) == rid
                link_rids.append((rid, (aid, pid)))
            elif kind == "rename":
                target = paper_rids[pick % len(paper_rids)]
                changes = {"title": f"revised study {serial}"}
                router.update(target, changes)
                reference.update(target, changes)
                serial += 1
            elif kind == "unlink":
                if not link_rids:
                    continue
                rid, pair = link_rids.pop(pick % len(link_rids))
                linked.discard(pair)
                router.delete(rid)
                reference.delete(rid)
            elif kind == "drain":
                router.rebalance(drain_plan(router, pick % SHARDS))
                assert_mirrors(router, reference)
            else:  # plan: metrics-driven rebalance
                router.rebalance(plan_rebalance(router, max_moves=8))
                assert_mirrors(router, reference)
        assert_mirrors(router, reference)
