"""Crash-point fuzz for the checkpoint protocol.

The discipline PR 4 set for the WAL, applied to checkpointing: every
interruption point is exercised mechanically.  The protocol's points
are its named steps (:data:`~repro.ops.checkpoint.CHECKPOINT_STEPS`) —
a kill and a torn write at each one — plus the byte-granular half the
WAL contributes: with a checkpoint on disk, the tail segment is
truncated at *every* byte offset and recovery must land exactly on the
last complete epoch (or the checkpoint, whichever is newer).
"""

from __future__ import annotations

import os
import struct

import pytest

from repro.core.incremental import IncrementalBANKS
from repro.errors import ReproError
from repro.ops.checkpoint import CHECKPOINT_STEPS, CheckpointManager
from repro.ops.faults import FaultInjected, FaultInjector
from repro.relational import Database, execute_script
from repro.serve.snapshot import SnapshotStore
from repro.store.wal import WalReader, WalWriter

SCHEMA = """
CREATE TABLE author (aid TEXT PRIMARY KEY, name TEXT NOT NULL);
CREATE TABLE paper (pid TEXT PRIMARY KEY, title TEXT NOT NULL);
CREATE TABLE writes (
    aid TEXT NOT NULL REFERENCES author(aid),
    pid TEXT NOT NULL REFERENCES paper(pid)
);
INSERT INTO author VALUES ('a1', 'grace hopper');
INSERT INTO author VALUES ('a2', 'barbara liskov');
INSERT INTO paper VALUES ('p1', 'compiling arithmetic expressions');
INSERT INTO paper VALUES ('p2', 'abstraction mechanisms');
INSERT INTO writes VALUES ('a1', 'p1');
INSERT INTO writes VALUES ('a2', 'p2');
"""

QUERIES = ("grace", "abstraction", "epoch study", "compiling")


def make_db(name: str = "opscrash") -> Database:
    database = Database(name)
    execute_script(database, SCHEMA)
    return database


def top5(facade):
    return [
        [
            (a.tree.root, round(a.relevance, 9))
            for a in facade.search(query, max_results=5)
        ]
        for query in QUERIES
    ]


def build_history(
    tmp_path,
    epochs_before: int = 3,
    epochs_after: int = 2,
    segment_bytes: int = 4 * 1024 * 1024,
):
    """A WAL with ``epochs_before + epochs_after`` published epochs and
    a clean checkpoint taken between the two batches; returns
    ``(wal_dir, ckpt_dir, store)`` with the store still live."""
    wal_dir = str(tmp_path / "wal")
    ckpt_dir = str(tmp_path / "checkpoints")
    writer = WalWriter(
        wal_dir,
        fsync="never",
        segment_bytes=segment_bytes,
        checkpoint_path=ckpt_dir,
    )
    store = SnapshotStore(
        IncrementalBANKS(make_db()), copy_mode="delta", wal=writer
    )

    def publish(step: int) -> None:
        store.mutate(
            lambda facade, step=step: facade.insert(
                "paper", [f"cp{step}", f"epoch study {step}"]
            )
        )

    for step in range(epochs_before):
        publish(step)
    if epochs_before:
        CheckpointManager(ckpt_dir).checkpoint(
            store.current().facade, store.epoch
        )
    for step in range(epochs_before, epochs_before + epochs_after):
        publish(step)
    return wal_dir, ckpt_dir, store


class TestKillAtEveryStep:
    @pytest.mark.parametrize("step", CHECKPOINT_STEPS)
    def test_kill_then_recovery_is_exact(self, tmp_path, step):
        wal_dir, ckpt_dir, store = build_history(tmp_path)
        live = top5(store.current().facade)

        faults = FaultInjector().kill_at(step)
        manager = CheckpointManager(ckpt_dir, faults=faults)
        with pytest.raises(FaultInjected) as caught:
            manager.checkpoint(store.current().facade, store.epoch)
        assert caught.value.step == step
        assert faults.fired == [(step, "kill", 1)]

        # The "restart": whatever the crash left on disk recovers to
        # the exact live state — newest valid checkpoint plus the tail.
        recovered = IncrementalBANKS.recover(
            make_db, wal_dir, checkpoints=ckpt_dir
        )
        assert recovered.applied_epoch == store.epoch == 5
        assert top5(recovered) == live

        # And the protocol is not wedged: a clean retry re-bases.
        record = CheckpointManager(ckpt_dir).checkpoint(
            store.current().facade, store.epoch
        )
        assert record.epoch == store.epoch
        assert CheckpointManager(ckpt_dir).manifest_epoch() == store.epoch
        again = IncrementalBANKS.recover(
            make_db, wal_dir, checkpoints=ckpt_dir
        )
        assert top5(again) == live


class TestTornWrites:
    @pytest.mark.parametrize("step", ("write", "manifest_write"))
    @pytest.mark.parametrize("keep", (0.0, 0.3, 0.9))
    def test_torn_write_then_recovery_is_exact(self, tmp_path, step, keep):
        wal_dir, ckpt_dir, store = build_history(tmp_path)
        live = top5(store.current().facade)

        faults = FaultInjector().torn_write_at(step, keep_fraction=keep)
        manager = CheckpointManager(ckpt_dir, faults=faults)
        with pytest.raises(FaultInjected) as caught:
            manager.checkpoint(store.current().facade, store.epoch)
        assert caught.value.mode == "torn_write"
        assert faults.fired == [(step, "torn_write", 1)]

        # tmp-then-rename means the torn prefix never lands under the
        # final name — the earlier checkpoint and manifest still rule.
        assert CheckpointManager(ckpt_dir).manifest_epoch() == 3
        recovered = IncrementalBANKS.recover(
            make_db, wal_dir, checkpoints=ckpt_dir
        )
        assert recovered.applied_epoch == store.epoch
        assert top5(recovered) == live

        record = CheckpointManager(ckpt_dir).checkpoint(
            store.current().facade, store.epoch
        )
        assert record.epoch == store.epoch

    def test_corrupt_newest_checkpoint_falls_back_to_older(self, tmp_path):
        """A checkpoint file corrupted *after* landing (bad sector, not
        a torn write) fails its CRC and is skipped for the next older
        one; recovery replays the longer tail and is still exact."""
        wal_dir, ckpt_dir, store = build_history(tmp_path)
        live = top5(store.current().facade)
        CheckpointManager(ckpt_dir).checkpoint(
            store.current().facade, store.epoch
        )

        newest = os.path.join(ckpt_dir, f"{store.epoch:012d}.ckpt")
        with open(newest, "rb+") as handle:
            handle.truncate(os.path.getsize(newest) // 2)

        manager = CheckpointManager(ckpt_dir)
        loaded = manager.newest_valid()
        assert loaded is not None and loaded[0] == 3

        recovered = IncrementalBANKS.recover(
            make_db, wal_dir, checkpoints=ckpt_dir
        )
        assert recovered.applied_epoch == store.epoch
        assert top5(recovered) == live

    def test_every_checkpoint_corrupt_falls_back_to_base(self, tmp_path):
        wal_dir, ckpt_dir, store = build_history(tmp_path)
        live = top5(store.current().facade)
        for name in os.listdir(ckpt_dir):
            if name.endswith(".ckpt"):
                with open(os.path.join(ckpt_dir, name), "wb") as handle:
                    handle.write(b"not a checkpoint")
        assert CheckpointManager(ckpt_dir).newest_valid() is None
        recovered = IncrementalBANKS.recover(
            make_db, wal_dir, checkpoints=ckpt_dir
        )
        assert recovered.applied_epoch == store.epoch
        assert top5(recovered) == live


class TestWalTailTruncation:
    def test_truncate_every_byte_of_tail_segment(self, tmp_path):
        """With a checkpoint at epoch 4 and small segments forcing
        rotation, cut the final WAL segment at every byte offset:
        recovery must land on ``max(checkpoint, last complete epoch)``
        with exactly that epoch's answers — never a partial epoch,
        never a WalError."""
        wal_dir, ckpt_dir, store = build_history(
            tmp_path, epochs_before=4, epochs_after=6, segment_bytes=256
        )
        store.current()  # settle the final publish

        # Per-epoch expected answers, replayed one epoch at a time.
        epochs = WalReader(wal_dir).read_all()
        assert [e.number for e in epochs] == list(range(1, 11))
        probe = IncrementalBANKS(make_db())
        expected = {0: top5(probe)}
        for epoch in epochs:
            probe.apply_epochs([epoch])
            expected[epoch.number] = top5(probe)

        segments = sorted(
            name for name in os.listdir(wal_dir) if name.endswith(".wal")
        )
        assert len(segments) >= 2, "segment_bytes must force rotation"
        tail_path = os.path.join(wal_dir, segments[-1])
        tail_first = int(segments[-1][: -len(".wal")])
        with open(tail_path, "rb") as handle:
            original = handle.read()

        # Offsets at which a record of the tail segment completes.
        ends = []
        offset = 0
        while offset < len(original):
            (length,) = struct.unpack_from("<I", original, offset)
            offset += 8 + length
            ends.append(offset)
        assert ends[-1] == len(original)

        for cut in range(len(original) + 1):
            with open(tail_path, "wb") as handle:
                handle.write(original[:cut])
            survived = sum(1 for end in ends if end <= cut)
            on_disk = tail_first - 1 + survived
            want = max(4, on_disk)  # checkpoint epoch floors recovery
            recovered = IncrementalBANKS.recover(
                make_db, wal_dir, checkpoints=ckpt_dir
            )
            assert recovered.applied_epoch == want, cut
            assert top5(recovered) == expected[want], cut


class TestCadenceFailureContainment:
    def test_maybe_checkpoint_records_failure_and_retries(self, tmp_path):
        _wal, ckpt_dir, store = build_history(tmp_path)
        faults = FaultInjector().kill_at("write")
        manager = CheckpointManager(ckpt_dir, every=1, faults=faults)
        facade = store.current().facade
        with pytest.warns(RuntimeWarning, match="checkpoint at epoch"):
            assert manager.maybe_checkpoint(facade, store.epoch) is None
        assert isinstance(manager.last_error, FaultInjected)
        # The plan fired once; the next cadence attempt succeeds.
        record = manager.maybe_checkpoint(facade, store.epoch + 1)
        assert record is not None and record.epoch == store.epoch + 1


class TestFaultInjectorMechanics:
    def test_occurrence_counting_and_injected_sleeper(self):
        naps = []
        faults = FaultInjector(sleeper=naps.append)
        faults.kill_at("write", occurrence=3).stall_at(
            "rename", seconds=0.5
        )
        faults.step("write")
        faults.step("write")
        faults.step("rename")
        assert naps == [0.5]
        with pytest.raises(FaultInjected):
            faults.step("write")
        assert ("write", "kill", 3) in faults.fired
        faults.reset()
        assert faults.fired == []
        faults.step("write")  # counters restarted; occurrence 3 rearmed

    def test_torn_bytes_peeks_without_advancing(self):
        faults = FaultInjector().torn_write_at("write", keep_fraction=0.5)
        assert faults.torn_bytes("write", 100) == 50
        assert faults.torn_bytes("write", 100) == 50  # still upcoming
        assert faults.torn_bytes("write", 1) == 0  # never the whole file
        assert faults.torn_bytes("other", 100) is None

    def test_invalid_plans_are_rejected(self):
        with pytest.raises(ReproError):
            FaultInjector().torn_write_at("write", keep_fraction=1.0)
        with pytest.raises(ReproError):
            FaultInjector().kill_at("write", occurrence=0)
