"""Tests for the XML browsing pages (Sec. 7, browsing half)."""

from __future__ import annotations

import pytest

from repro.xmlkw import XMLBanks, parse_xml
from repro.xmlkw.browse import XMLBrowseApp, XMLBrowser, element_url


@pytest.fixture
def banks():
    document = parse_xml(
        """
        <library>
          <author id="knuth"><name>donald knuth</name></author>
          <book id="b1" ref="knuth"><title>taocp &amp; friends</title></book>
          <book id="b2" ref="knuth"><title>concrete mathematics</title></book>
        </library>
        """,
        "lib",
    )
    return XMLBanks(document, excluded_root_tags=("library",))


@pytest.fixture
def app(banks):
    return XMLBrowseApp(banks)


class TestElementPage:
    def test_shows_tag_attributes_text(self, banks):
        browser = XMLBrowser(banks)
        html = browser.element_page(("lib", 2))  # <name>
        assert "&lt;name&gt;" in html
        assert "donald knuth" in html

    def test_parent_and_children_links(self, banks):
        browser = XMLBrowser(banks)
        html = browser.element_page(("lib", 1))  # <author>
        assert element_url(("lib", 0)) in html  # parent: library
        assert element_url(("lib", 2)) in html  # child: name

    def test_outgoing_reference_links(self, banks):
        browser = XMLBrowser(banks)
        html = browser.element_page(("lib", 3))  # book b1
        assert "References (outgoing)" in html
        assert element_url(("lib", 1)) in html

    def test_incoming_reference_links(self, banks):
        browser = XMLBrowser(banks)
        html = browser.element_page(("lib", 1))  # the author
        assert "Referenced by (incoming)" in html
        assert element_url(("lib", 3)) in html
        assert element_url(("lib", 5)) in html

    def test_text_is_escaped(self, banks):
        browser = XMLBrowser(banks)
        html = browser.element_page(("lib", 4))  # title with &
        assert "taocp &amp; friends" in html


class TestOutlineAndHome:
    def test_outline_lists_hierarchy(self, banks):
        browser = XMLBrowser(banks)
        html = browser.outline_page("lib", depth=2)
        assert "library" in html
        assert element_url(("lib", 3)) in html

    def test_outline_depth_truncates(self, banks):
        browser = XMLBrowser(banks)
        shallow = browser.outline_page("lib", depth=0)
        assert "children)" in shallow

    def test_outline_unknown_document(self, banks):
        browser = XMLBrowser(banks)
        from repro.errors import XMLError

        with pytest.raises(XMLError):
            browser.outline_page("ghost")

    def test_home_lists_documents_and_form(self, banks):
        browser = XMLBrowser(banks)
        html = browser.home_page()
        assert "lib" in html
        assert "form" in html


class TestRouting:
    def test_home(self, app):
        status, html = app.handle("/")
        assert status.startswith("200")

    def test_element_route(self, app):
        status, html = app.handle("/element/lib/1")
        assert status.startswith("200")
        assert "author" in html

    def test_outline_route_with_depth(self, app):
        status, html = app.handle("/outline/lib", "depth=1")
        assert status.startswith("200")

    def test_search_route(self, app):
        status, html = app.handle("/search", "q=knuth+concrete")
        assert status.startswith("200")
        assert "relevance" in html

    def test_search_marks_keyword_elements(self, app):
        _status, html = app.handle("/search", "q=knuth")
        assert 'class="kw"' in html

    def test_empty_search(self, app):
        status, html = app.handle("/search", "q=")
        assert "Empty query" in html

    def test_unknown_route_404(self, app):
        status, _html = app.handle("/nope")
        assert status.startswith("404")

    def test_bad_element_id_404(self, app):
        status, _html = app.handle("/element/lib/999")
        assert status.startswith("404")

    def test_wsgi_adapter(self, app):
        captured = {}

        def start_response(status, headers):
            captured["status"] = status
            captured["headers"] = dict(headers)

        body = b"".join(
            app({"PATH_INFO": "/", "QUERY_STRING": ""}, start_response)
        )
        assert captured["status"].startswith("200")
        assert captured["headers"]["Content-Type"].startswith("text/html")
        assert b"BANKS" in body
