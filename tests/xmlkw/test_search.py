"""End-to-end tests for XMLBanks: search quality on planted structures,
query syntaxes, root exclusion, generators, and answer invariants."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.scoring import ScoringConfig
from repro.xmlkw import XMLBanks, parse_xml
from repro.xmlkw.generator import (
    ANECDOTE_TITLE,
    generate_bibliography_xml,
    generate_catalog_xml,
)


@pytest.fixture(scope="module")
def bibliography():
    return generate_bibliography_xml(papers=60, authors=40, seed=5)


@pytest.fixture(scope="module")
def banks(bibliography):
    return XMLBanks(
        bibliography,
        excluded_root_tags=("bibliography", "authorref", "cite"),
    )


class TestAnecdotesOnXML:
    def test_coauthored_paper_is_top_answer(self, banks):
        answers = banks.search("soumen sunita")
        assert answers, "no answers returned"
        root = answers[0].root_element()
        title = root.find("title")
        assert title is not None and title.text == ANECDOTE_TITLE

    def test_three_keyword_query(self, banks):
        answers = banks.search("soumen sunita byron")
        root = answers[0].root_element()
        assert root.find("title").text == ANECDOTE_TITLE

    def test_single_keyword_returns_matching_element(self, banks):
        answers = banks.search("temporal", max_results=5)
        assert answers
        for answer in answers:
            text = answer.root_element().full_text()
            assert "temporal" in text

    def test_answers_sorted_by_relevance(self, banks):
        answers = banks.search("soumen sunita", max_results=10)
        relevances = [answer.relevance for answer in answers]
        # Emission is approximately sorted; the final list must be close:
        # allow the paper's small-heap reordering but assert the top
        # answer is the global best.
        assert answers[0].relevance == max(relevances)

    def test_tag_keyword_query(self, banks):
        """title:temporal must only match inside <title> elements."""
        answers = banks.search("title:temporal", max_results=5)
        assert answers
        for node_set in banks.resolve("title:temporal"):
            for node in node_set:
                assert banks.element(node).tag == "title"

    def test_metadata_query_matches_tag(self, banks):
        """The keyword 'author' is relevant to every <author> element."""
        node_sets = banks.resolve("author")
        tags = {banks.element(node).tag for node in node_sets[0]}
        assert "author" in tags

    def test_excluded_root_tags_respected(self, banks):
        answers = banks.search("soumen sunita", max_results=10)
        for answer in answers:
            assert answer.root_element().tag not in (
                "bibliography",
                "authorref",
                "cite",
            )

    def test_answer_trees_validate(self, banks):
        for answer in banks.search("soumen sunita temporal", max_results=10):
            answer.tree.validate()

    def test_render_marks_keyword_nodes(self, banks):
        answers = banks.search("soumen sunita")
        rendering = answers[0].render()
        assert "*" in rendering
        assert "soumen" in rendering.lower()

    def test_scoring_override(self, banks):
        prestige_only = banks.search(
            "temporal", scoring=ScoringConfig(lambda_weight=1.0, edge_log=False)
        )
        proximity_only = banks.search(
            "temporal", scoring=ScoringConfig(lambda_weight=0.0)
        )
        assert prestige_only and proximity_only

    def test_unknown_keyword_no_answers(self, banks):
        assert banks.search("zzzqqqxxx") == []

    def test_repr(self, banks):
        assert "XMLBanks" in repr(banks)


class TestCatalog:
    def test_product_search(self):
        catalog = generate_catalog_xml(seed=2)
        banks = XMLBanks(catalog, excluded_root_tags=("catalog",))
        answers = banks.search("steel", max_results=5)
        assert answers
        for answer in answers:
            assert "steel" in answer.root_element().full_text()

    def test_product_supplier_connection(self):
        catalog = parse_xml(
            """
            <catalog>
              <supplier id="s1"><name>acme tools</name></supplier>
              <category id="c1">
                <product id="p1" ref="s1"><name>steel hammer</name></product>
                <product id="p2" ref="s1"><name>brass valve</name></product>
              </category>
            </catalog>
            """,
            "cat",
        )
        banks = XMLBanks(catalog, excluded_root_tags=("catalog",))
        answers = banks.search("hammer acme")
        assert answers
        # The connection must run through the supplier reference, not
        # the catalog root: the product referencing s1 is the natural root.
        tags = {banks.element(node).tag for node in answers[0].tree.nodes}
        assert "supplier" in tags or "name" in tags

    def test_sibling_products_connect_via_category_not_root(self):
        """Hub scaling: two products in one small category connect
        through the category, cheaper than through the big root."""
        catalog = generate_catalog_xml(
            categories=4, products_per_category=3, seed=9
        )
        banks = XMLBanks(catalog, excluded_root_tags=("catalog",))
        # Pick two product names from the same category.
        category = catalog.root.find("category")
        products = category.find_all("product")
        name_a = products[0].find("name").text
        name_b = products[1].find("name").text
        token_a = name_a.split()[0]
        token_b = name_b.split()[1]
        answers = banks.search(f"{token_a} {token_b}", max_results=5)
        assert answers


class TestGenerators:
    def test_bibliography_deterministic(self):
        first = generate_bibliography_xml(papers=20, authors=10, seed=42)
        second = generate_bibliography_xml(papers=20, authors=10, seed=42)
        assert first.element_count() == second.element_count()
        texts_first = [e.text for e in first.elements()]
        texts_second = [e.text for e in second.elements()]
        assert texts_first == texts_second

    def test_bibliography_seed_changes_content(self):
        first = generate_bibliography_xml(papers=20, authors=10, seed=1)
        second = generate_bibliography_xml(papers=20, authors=10, seed=2)
        texts_first = [e.text for e in first.elements()]
        texts_second = [e.text for e in second.elements()]
        assert texts_first != texts_second

    def test_bibliography_counts(self):
        document = generate_bibliography_xml(papers=25, authors=12, seed=3)
        assert len(document.root.find_all("paper")) == 26  # + anecdote
        assert len(document.root.find_all("author")) == 15  # + 3 anecdote

    def test_bibliography_without_anecdotes(self):
        document = generate_bibliography_xml(
            papers=10, authors=5, seed=3, plant_anecdotes=False
        )
        assert len(document.root.find_all("paper")) == 10
        for element in document.elements():
            assert "soumen" not in element.text

    def test_citations_reference_existing_papers(self):
        document = generate_bibliography_xml(papers=30, authors=15, seed=8)
        for cite in document.root.find_all("cite"):
            assert document.by_id(cite.get("ref")) is not None

    def test_catalog_structure(self):
        document = generate_catalog_xml(
            categories=3, products_per_category=4, seed=1
        )
        assert len(document.root.find_all("category")) == 3
        assert len(document.root.find_all("product")) == 12
        for product in document.root.find_all("product"):
            assert document.by_id(product.get("ref")).tag == "supplier"


@settings(deadline=None, max_examples=25)
@given(
    papers=st.integers(5, 25),
    authors=st.integers(3, 12),
    seed=st.integers(0, 999),
)
def test_property_generated_corpus_always_searchable(papers, authors, seed):
    """Any generated corpus builds a valid graph and answers the planted
    query with the planted paper among the answers.

    The paper may appear as an *interior* node rather than the root:
    the search deduplicates answers by undirected tree, so on tiny
    corpora the surviving rooting of the connection tree can be an
    author element (falsifying example: papers=5, authors=4, seed=1).
    The property is that the planted paper is part of some answer, not
    that it roots one.
    """
    document = generate_bibliography_xml(papers=papers, authors=authors, seed=seed)
    banks = XMLBanks(
        document, excluded_root_tags=("bibliography", "authorref", "cite")
    )
    answers = banks.search("soumen sunita", max_results=5)
    assert answers
    titles = []
    for answer in answers:
        for node in answer.tree.nodes:
            title = banks.element(node).find("title")
            if title is not None:
                titles.append(title.text)
    assert ANECDOTE_TITLE in titles
    for answer in answers:
        answer.tree.validate()
