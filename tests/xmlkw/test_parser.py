"""Tests for the from-scratch XML parser: happy paths, every
well-formedness rule, and a serialise/re-parse round-trip property."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import XMLError
from repro.xmlkw.document import XMLElement
from repro.xmlkw.parser import decode_entities, parse_xml, parse_xml_fragmentless


class TestBasicParsing:
    def test_single_element(self):
        document = parse_xml("<root/>")
        assert document.root.tag == "root"
        assert document.root.children == []

    def test_nested_elements(self):
        document = parse_xml("<a><b><c/></b></a>")
        assert document.root.tag == "a"
        assert document.root.children[0].tag == "b"
        assert document.root.children[0].children[0].tag == "c"

    def test_text_content(self):
        document = parse_xml("<greeting>hello world</greeting>")
        assert document.root.text == "hello world"

    def test_mixed_content_preserves_order(self):
        document = parse_xml("<p>one<b>two</b>three</p>")
        assert document.root.text_fragments == ["one", "three"]
        assert document.root.children[0].text == "two"

    def test_attributes(self):
        document = parse_xml('<item id="7" name="saw"/>')
        assert document.root.attributes == {"id": "7", "name": "saw"}

    def test_single_quoted_attributes(self):
        document = parse_xml("<item id='7'/>")
        assert document.root.get("id") == "7"

    def test_whitespace_in_tags_tolerated(self):
        document = parse_xml('<item  id="1"   ></item >')
        assert document.root.get("id") == "1"

    def test_empty_attribute_value(self):
        document = parse_xml('<item note=""/>')
        assert document.root.get("note") == ""

    def test_names_with_punctuation(self):
        document = parse_xml("<ns:item-one _private.x='1'/>")
        assert document.root.tag == "ns:item-one"
        assert document.root.get("_private.x") == "1"


class TestEntitiesAndSpecialSections:
    def test_predefined_entities(self):
        document = parse_xml("<t>&lt;a&gt; &amp; &quot;b&quot; &apos;c&apos;</t>")
        assert document.root.text == '<a> & "b" \'c\''

    def test_numeric_character_references(self):
        document = parse_xml("<t>&#65;&#x42;</t>")
        assert document.root.text == "AB"

    def test_entities_in_attributes(self):
        document = parse_xml('<t v="a&amp;b"/>')
        assert document.root.get("v") == "a&b"

    def test_cdata_passes_raw(self):
        document = parse_xml("<t><![CDATA[<not> & parsed]]></t>")
        assert document.root.text == "<not> & parsed"

    def test_comments_ignored(self):
        document = parse_xml("<t><!-- a comment -->text</t>")
        assert document.root.text == "text"

    def test_xml_declaration_ignored(self):
        document = parse_xml('<?xml version="1.0" encoding="UTF-8"?><t/>')
        assert document.root.tag == "t"

    def test_doctype_ignored(self):
        document = parse_xml("<!DOCTYPE html><t/>")
        assert document.root.tag == "t"

    def test_processing_instruction_ignored(self):
        document = parse_xml('<?pi data?><t/>')
        assert document.root.tag == "t"

    def test_decode_entities_no_amp_fast_path(self):
        assert decode_entities("plain text") == "plain text"


class TestWellFormednessErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "",                                # no root
            "<a>",                             # unclosed
            "<a></b>",                         # mismatched
            "</a>",                            # close without open
            "<a/><b/>",                        # two roots
            "<a>text</a>trailing",             # text after root
            '<a x="1" x="2"/>',                # duplicate attribute
            "<a x=1/>",                        # unquoted attribute
            "<a x/>",                          # attribute missing value
            "<a><b></a></b>",                  # improper nesting
            "<a>&unknown;</a>",                # unknown entity
            "<a>&#xZZ;</a>",                   # bad char reference
            "<a>&amp</a>",                     # unterminated entity
            "<!-- -- --><a/>",                 # double hyphen in comment
            "<a><!-- unterminated",            # unterminated comment
            '<a x="<b>"/>',                    # raw < in attribute
            "<1tag/>",                         # bad name start
            "<!DOCTYPE x [<!ENTITY y 'z'>]><a/>",  # internal subset
        ],
    )
    def test_rejected(self, text):
        with pytest.raises(XMLError):
            parse_xml(text)

    def test_error_carries_location(self):
        with pytest.raises(XMLError) as excinfo:
            parse_xml("<a>\n  <b></c>\n</a>")
        assert excinfo.value.line == 2

    def test_whitespace_only_outside_root_is_fine(self):
        document = parse_xml("  \n <a/> \n ")
        assert document.root.tag == "a"


class TestDocumentModel:
    def test_preorder_element_ids(self):
        document = parse_xml("<a><b><c/></b><d/></a>")
        tags = [document.element(i).tag for i in range(4)]
        assert tags == ["a", "b", "c", "d"]

    def test_parent_pointers(self):
        document = parse_xml("<a><b><c/></b></a>")
        c = document.element(2)
        assert c.parent.tag == "b"
        assert c.parent.parent.tag == "a"
        assert document.root.parent is None

    def test_path_and_depth(self):
        document = parse_xml("<a><b><c/></b></a>")
        assert document.element(2).path() == "a/b/c"
        assert document.element(2).depth() == 2
        assert document.root.depth() == 0

    def test_by_id_index(self):
        document = parse_xml('<a><b id="x"/><c id="y"/></a>')
        assert document.by_id("x").tag == "b"
        assert document.by_id("missing") is None

    def test_duplicate_id_rejected(self):
        with pytest.raises(XMLError):
            parse_xml('<a><b id="x"/><c id="x"/></a>')

    def test_find_and_find_all(self):
        document = parse_xml("<a><b/><c><b/></c></a>")
        assert document.root.find("b") is document.element(1)
        assert len(document.root.find_all("b")) == 2
        assert document.root.find("zzz") is None

    def test_full_text(self):
        document = parse_xml("<a>x<b>y</b>z</a>")
        assert document.root.full_text() == "x z y"

    def test_unknown_element_id_raises(self):
        document = parse_xml("<a/>")
        with pytest.raises(XMLError):
            document.element(99)

    def test_fragmentless_drops_indentation(self):
        document = parse_xml_fragmentless("<a>\n  <b>text</b>\n</a>")
        assert document.root.text_fragments == []
        assert document.root.children[0].text == "text"


# -- round-trip property --------------------------------------------------------

_tags = st.sampled_from(["a", "b", "item", "node", "x1"])
_texts = st.text(
    alphabet=st.characters(
        codec="ascii", exclude_characters='<>&"\x00\r'
    ),
    max_size=12,
)


@st.composite
def xml_trees(draw, depth=0):
    tag = draw(_tags)
    element = XMLElement(tag)
    attribute_count = draw(st.integers(0, 2))
    for i in range(attribute_count):
        element.attributes[f"k{i}"] = draw(_texts)
    if depth < 3:
        for _ in range(draw(st.integers(0, 2 if depth else 3))):
            element.children.append(draw(xml_trees(depth=depth + 1)))
    text = draw(_texts)
    if text.strip():
        element.text_fragments.append(text)
    return element


def _serialize(element: XMLElement) -> str:
    attributes = "".join(
        f' {name}="{_escape_attr(value)}"'
        for name, value in element.attributes.items()
    )
    inner = "".join(_serialize(child) for child in element.children) + "".join(
        _escape_text(fragment) for fragment in element.text_fragments
    )
    if not inner:
        return f"<{element.tag}{attributes}/>"
    return f"<{element.tag}{attributes}>{inner}</{element.tag}>"


def _escape_text(text: str) -> str:
    return text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


def _escape_attr(text: str) -> str:
    return _escape_text(text).replace('"', "&quot;")


def _structure(element: XMLElement):
    return (
        element.tag,
        tuple(sorted(element.attributes.items())),
        tuple(_structure(child) for child in element.children),
        element.full_text().split(),
    )


@given(xml_trees())
def test_property_serialize_parse_round_trip(tree):
    """Any generated element tree survives serialise -> parse."""
    parsed = parse_xml(_serialize(tree)).root
    assert _structure(parsed) == _structure(tree)
