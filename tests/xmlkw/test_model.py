"""Tests for the XML -> data-graph mapping and the XML keyword index."""

from __future__ import annotations

import pytest

from repro.errors import XMLError
from repro.xmlkw.model import XMLGraphConfig, XMLIndex, build_xml_graph
from repro.xmlkw.parser import parse_xml


@pytest.fixture
def library():
    """Two books referencing one shared author via IDREF."""
    return parse_xml(
        """
        <library>
          <author id="a1"><name>donald knuth</name></author>
          <book id="b1" ref="a1"><title>taocp volume one</title></book>
          <book id="b2" ref="a1"><title>taocp volume two</title></book>
        </library>
        """,
        "lib",
    )


class TestGraphConstruction:
    def test_node_per_element(self, library):
        graph, stats = build_xml_graph([library])
        assert stats.num_nodes == library.element_count()

    def test_containment_edges_both_directions(self, library):
        graph, _ = build_xml_graph([library])
        root = ("lib", 0)
        author = ("lib", 1)
        assert graph.has_edge(root, author)
        assert graph.has_edge(author, root)

    def test_containment_back_edge_scales_with_fanout(self, library):
        graph, _ = build_xml_graph([library])
        # <library> has 3 children: each child's back edge costs 3.
        author = ("lib", 1)
        root = ("lib", 0)
        assert graph.edge_weight(root, author) == 1.0
        assert graph.edge_weight(author, root) == 3.0

    def test_idref_edges(self, library):
        graph, _ = build_xml_graph([library])
        book1 = ("lib", 3)
        author = ("lib", 1)
        assert graph.has_edge(book1, author)
        assert graph.edge_weight(book1, author) == 1.0

    def test_idref_back_edge_scales_with_reference_indegree(self, library):
        graph, _ = build_xml_graph([library])
        author = ("lib", 1)
        book1 = ("lib", 3)
        # Two books reference the author: back edge costs 2.
        assert graph.edge_weight(author, book1) == 2.0

    def test_prestige_is_reference_indegree(self, library):
        graph, _ = build_xml_graph([library])
        assert graph.node_weight(("lib", 1)) == 2.0  # the author
        assert graph.node_weight(("lib", 3)) == 0.0  # a book

    def test_fanout_scaling_disabled(self, library):
        config = XMLGraphConfig(backward_fanout_scaling=False)
        graph, _ = build_xml_graph([library], config)
        author = ("lib", 1)
        root = ("lib", 0)
        assert graph.edge_weight(author, root) == 1.0

    def test_dangling_idref_rejected_by_default(self):
        document = parse_xml('<a><b ref="missing"/></a>')
        with pytest.raises(XMLError):
            build_xml_graph([document])

    def test_dangling_idref_ignored_when_configured(self):
        document = parse_xml('<a><b ref="missing"/></a>')
        config = XMLGraphConfig(dangling_idref="ignore")
        graph, stats = build_xml_graph([document], config)
        assert stats.num_nodes == 2

    def test_self_reference_skipped(self):
        document = parse_xml('<a><b id="x" ref="x"/></a>')
        graph, _ = build_xml_graph([document])
        b = ("doc", 1)
        assert not graph.has_edge(b, b)

    def test_duplicate_document_names_rejected(self, library):
        with pytest.raises(XMLError):
            build_xml_graph([library, library])

    def test_multiple_documents_disjoint(self, library):
        other = parse_xml("<x><y/></x>", "other")
        graph, stats = build_xml_graph([library, other])
        assert stats.num_nodes == library.element_count() + 2
        assert not graph.has_edge(("lib", 0), ("other", 0))

    def test_invalid_config_rejected(self):
        with pytest.raises(XMLError):
            XMLGraphConfig(containment_weight=0)
        with pytest.raises(XMLError):
            XMLGraphConfig(dangling_idref="maybe")

    def test_custom_idref_attribute_names(self):
        document = parse_xml(
            '<a><b id="t"/><c supervisor_ref="t"/></a>'
        )
        graph, _ = build_xml_graph([document])
        assert graph.has_edge(("doc", 2), ("doc", 1))

    def test_reference_and_containment_coincide_takes_min(self):
        # b is both a child of a and references a: Eq. 1 min applies.
        document = parse_xml('<a id="r"><b ref="r"/></a>')
        graph, _ = build_xml_graph([document])
        a, b = ("doc", 0), ("doc", 1)
        # forward containment a->b weight 1; back edge of reference
        # (a->b would be reference back edge weight 1): min stays 1.
        assert graph.edge_weight(a, b) == 1.0
        # b->a: reference forward (1) vs containment back (1 child -> 1).
        assert graph.edge_weight(b, a) == 1.0

    def test_stats_normalisers(self, library):
        _, stats = build_xml_graph([library])
        assert stats.min_edge_weight == 1.0
        assert stats.max_node_weight == 2.0


class TestXMLIndex:
    def test_text_tokens_indexed(self, library):
        index = XMLIndex([library])
        assert ("lib", 2) in index.lookup("knuth")  # the <name> element

    def test_attribute_values_indexed(self, library):
        index = XMLIndex([library])
        assert ("lib", 3) in index.lookup("b1")

    def test_tag_metadata_matching(self, library):
        index = XMLIndex([library])
        nodes = index.lookup_nodes("book")
        assert ("lib", 3) in nodes and ("lib", 5) in nodes

    def test_attribute_name_metadata_matching(self, library):
        index = XMLIndex([library])
        nodes = index.lookup_nodes("ref")
        assert ("lib", 3) in nodes

    def test_metadata_can_be_disabled(self, library):
        index = XMLIndex([library])
        assert index.lookup_nodes("book", include_metadata=False) == set()

    def test_lookup_tagged(self, library):
        index = XMLIndex([library])
        assert index.lookup_tagged("taocp", "title") == {
            ("lib", 4),
            ("lib", 6),
        }
        assert index.lookup_tagged("taocp", "name") == set()

    def test_document_frequency(self, library):
        index = XMLIndex([library])
        assert index.document_frequency("taocp") == 2
        assert index.document_frequency("missing") == 0

    def test_vocabulary_and_contains(self, library):
        index = XMLIndex([library])
        assert "knuth" in index
        assert "knuth" in index.vocabulary()
        assert len(index) == len(index.vocabulary())

    def test_case_normalisation(self, library):
        index = XMLIndex([library])
        assert index.lookup("KNUTH") == index.lookup("knuth")
