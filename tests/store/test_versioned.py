"""Tests for VersionedGraph: copy-on-write semantics and the audited
tombstone accessor."""

from __future__ import annotations

import pytest

from repro.graph.digraph import DiGraph
from repro.store.versioned import VersionedGraph, fork_graph


def triangle(cls=VersionedGraph):
    graph = cls()
    graph.add_edge("a", "b", 1.0)
    graph.add_edge("b", "c", 2.0)
    graph.add_edge("c", "a", 3.0)
    graph.set_node_weight("a", 5.0)
    return graph


def snapshot(graph):
    nodes = {node: graph.node_weight(node) for node in graph.nodes()}
    edges = {(s, t): w for s, t, w in graph.edges()}
    return nodes, edges


class TestForkIsolation:
    def test_fork_sees_parent_state(self):
        parent = triangle()
        child = parent.fork()
        assert snapshot(child) == snapshot(parent)

    def test_child_mutations_invisible_to_parent(self):
        parent = triangle()
        before = snapshot(parent)
        child = parent.fork()
        child.add_edge("a", "c", 9.0)
        child.remove_edge("b", "c")
        child.add_node("d", 4.0)
        child.add_edge("d", "a", 1.5)
        child.set_node_weight("a", 7.0)
        child.remove_node("b")
        assert snapshot(parent) == before
        assert not child.has_node("b")
        assert child.edge_weight("d", "a") == 1.5

    def test_wrapping_a_plain_digraph(self):
        plain = triangle(DiGraph)
        child = fork_graph(plain)
        assert isinstance(child, VersionedGraph)
        before = snapshot(plain)
        child.remove_node("a")
        assert snapshot(plain) == before

    def test_chained_forks_each_isolated(self):
        g0 = triangle()
        g1 = g0.fork()
        g1.add_edge("a", "c", 9.0)
        g2 = g1.fork()
        g2.remove_edge("a", "c")
        g3 = g2.fork()
        g3.add_node("z", 1.0)
        assert g0.has_edge("a", "c") is False
        assert g1.edge_weight("a", "c") == 9.0
        assert g2.has_edge("a", "c") is False
        assert not g2.has_node("z")
        assert g3.has_node("z")

    def test_structural_sharing_is_real(self):
        """A fork owns nothing until it writes, then owns only what it
        touched — the O(delta) claim, observable."""
        parent = triangle()
        child = parent.fork()
        assert child.shared_nodes == 3
        child.add_edge("a", "b", 1.5)  # touches succ[a] + pred[b]
        assert child.shared_nodes < 3
        # Untouched adjacency dicts are the very same objects.
        c = child.index_of("c")
        assert child.raw_successors(c) is parent.raw_successors(c)

    def test_fresh_graph_owns_everything(self):
        graph = triangle()
        assert graph.shared_nodes == 0


class TestEquivalenceWithDiGraph:
    def test_same_behaviour_as_digraph_after_mutations(self):
        operations = [
            ("add_edge", ("x", "y", 1.0)),
            ("add_edge", ("y", "z", 2.0)),
            ("remove_edge", ("x", "y")),
            ("add_edge", ("x", "y", 4.0)),
            ("add_node", ("lone",)),
            ("remove_node", ("z",)),
        ]
        plain = triangle(DiGraph)
        versioned = triangle()
        head = versioned
        for name, args in operations:
            getattr(plain, name)(*args)
            head = head.fork()  # mutate through a fresh fork every time
            getattr(head, name)(*args)
        assert snapshot(plain) == snapshot(head)
        assert plain.num_nodes == head.num_nodes
        assert plain.num_edges == head.num_edges


class TestTombstoneAccounting:
    def test_num_nodes_and_tombstones_from_one_source(self):
        graph = triangle()
        assert graph.num_nodes == 3
        assert graph.tombstone_count == 0
        graph.remove_node("b")
        assert graph.num_nodes == 2
        assert graph.tombstone_count == 1
        graph.add_node("b")  # re-add: new slot, old tombstone remains
        assert graph.num_nodes == 3
        assert graph.tombstone_count == 1

    def test_fork_inherits_consistent_accounting(self):
        """Regression: the old separate ``_tombstones`` counter had to
        be copied by every new code path touching the internals; the
        derived accessor cannot drift."""
        parent = triangle()
        parent.remove_node("c")
        child = parent.fork()
        assert child.num_nodes == parent.num_nodes == 2
        assert child.tombstone_count == parent.tombstone_count == 1
        child.remove_node("b")
        assert child.num_nodes == 1
        assert child.tombstone_count == 2
        assert parent.num_nodes == 2
        assert parent.tombstone_count == 1

    def test_plain_digraph_exposes_the_same_accessor(self):
        graph = triangle(DiGraph)
        graph.remove_node("a")
        assert graph.num_nodes == 2
        assert graph.tombstone_count == 1


class TestContractErrors:
    def test_self_loop_still_rejected(self):
        child = triangle().fork()
        with pytest.raises(Exception):
            child.add_edge("a", "a", 1.0)

    def test_missing_edge_removal_still_raises(self):
        child = triangle().fork()
        with pytest.raises(Exception):
            child.remove_edge("a", "c")
