"""Tests for the DeltaLog: epochs, pins, and reclamation."""

from __future__ import annotations

import pytest

from repro.errors import StoreError
from repro.store.delta import Delta
from repro.store.log import DeltaLog


def delta(n: int) -> Delta:
    return Delta(kind="insert", node=("paper", n), row_values=(f"p{n}", "t"))


class TestPublication:
    def test_epochs_are_monotone(self):
        log = DeltaLog()
        assert log.epoch == 0
        first = log.publish([delta(1)])
        second = log.publish([delta(2), delta(3)])
        assert (first.number, second.number) == (1, 2)
        assert log.epoch == 2
        assert log.published_total == 2
        assert log.deltas_total == 3

    def test_entries_since(self):
        log = DeltaLog()
        for n in range(5):
            log.publish([delta(n)])
        tail = log.entries_since(3)
        assert [e.number for e in tail] == [4, 5]
        assert log.entries_since(5) == []

    def test_entries_since_future_epoch_raises(self):
        log = DeltaLog()
        log.publish([delta(1)])
        with pytest.raises(StoreError):
            log.entries_since(7)


class TestReclamation:
    def test_window_bounds_unpinned_logs(self):
        log = DeltaLog(retain=3)
        for n in range(10):
            log.publish([delta(n)])
        assert len(log) == 3
        assert log.reclaimed_total == 7
        assert [e.number for e in log.entries_since(7)] == [8, 9, 10]

    def test_reclaimed_epoch_request_fails_loudly(self):
        log = DeltaLog(retain=2)
        for n in range(6):
            log.publish([delta(n)])
        with pytest.raises(StoreError):
            log.entries_since(1)

    def test_pin_protects_catchup_window(self):
        log = DeltaLog(retain=2)
        pinned = log.pin()  # epoch 0: consumer has seen nothing
        for n in range(8):
            log.publish([delta(n)])
        # Everything after the pin is still replayable.
        assert [e.number for e in log.entries_since(pinned)] == list(
            range(1, 9)
        )
        log.release(pinned)
        log.publish([delta(99)])  # reclamation runs on publish
        assert len(log) == 2

    def test_release_unknown_pin_raises(self):
        log = DeltaLog()
        with pytest.raises(StoreError):
            log.release(3)

    def test_pin_counts_nest(self):
        log = DeltaLog(retain=1)
        first = log.pin()
        second = log.pin()
        assert first == second == 0
        for n in range(4):
            log.publish([delta(n)])
        log.release(first)
        for n in range(3):
            log.publish([delta(n)])
        assert [e.number for e in log.entries_since(second)][0] == 1
        log.release(second)
        log.publish([delta(0)])
        assert len(log) == 1

    def test_retain_must_be_positive(self):
        with pytest.raises(StoreError):
            DeltaLog(retain=0)


class TestPinContract:
    """The pin/release contract the :class:`DeltaLog` docstring
    documents: a pinned consumer survives any amount of pruning; an
    unpinned one that sleeps past the window fails loudly."""

    def test_pinned_consumer_survives_pruning(self):
        log = DeltaLog(retain=2)
        position = log.pin()  # a consumer parks well before the flood
        for n in range(50):  # 25x the retention window
            log.publish([delta(n)])
        # Nothing the consumer still needs was reclaimed: the full
        # history after the pin replays, in order.
        tail = log.entries_since(position)
        assert [e.number for e in tail] == list(range(1, 51))
        # Sliding the pin forward releases the backlog for reclamation.
        log.pin(50)
        log.release(position)
        log.publish([delta(99)])
        assert len(log) <= log.retain + 1

    def test_unpinned_consumer_fails_loudly_not_silently(self):
        log = DeltaLog(retain=2)
        position = log.epoch  # read, but never pinned
        for n in range(50):
            log.publish([delta(n)])
        # The stale consumer must get an error — not a partial list
        # that silently skips the reclaimed epochs.
        with pytest.raises(StoreError) as excinfo:
            log.entries_since(position)
        assert "rebuild" in str(excinfo.value)

    def test_same_position_pinned_vs_unpinned(self):
        """The two halves of the contract, side by side from one
        shared starting epoch."""
        pinned_log = DeltaLog(retain=3)
        unpinned_log = DeltaLog(retain=3)
        pin = pinned_log.pin()
        start = unpinned_log.epoch
        for n in range(20):
            pinned_log.publish([delta(n)])
            unpinned_log.publish([delta(n)])
        assert len(pinned_log.entries_since(pin)) == 20
        with pytest.raises(StoreError):
            unpinned_log.entries_since(start)
