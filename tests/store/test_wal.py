"""Tests for the durable epoch log: segments, torn tails, recovery,
and cross-process replicas."""

from __future__ import annotations

import multiprocessing
import os
import shutil

import pytest

from repro.core.incremental import IncrementalBANKS
from repro.errors import ServeError, StoreError, WalError
from repro.relational import Database, execute_script
from repro.serve.engine import EngineConfig, QueryEngine
from repro.serve.snapshot import SnapshotStore
from repro.shard.process import fork_available
from repro.shard.router import ShardRouter
from repro.store.delta import Delta
from repro.store.log import DeltaLog, Epoch
from repro.store.wal import ReplicaFollower, WalReader, WalWriter

SCHEMA = """
CREATE TABLE author (aid TEXT PRIMARY KEY, name TEXT NOT NULL);
CREATE TABLE paper (pid TEXT PRIMARY KEY, title TEXT NOT NULL);
CREATE TABLE writes (
    aid TEXT NOT NULL REFERENCES author(aid),
    pid TEXT NOT NULL REFERENCES paper(pid)
);
INSERT INTO author VALUES ('a1', 'grace hopper');
INSERT INTO author VALUES ('a2', 'barbara liskov');
INSERT INTO paper VALUES ('p1', 'compiling arithmetic expressions');
INSERT INTO paper VALUES ('p2', 'abstraction mechanisms');
INSERT INTO writes VALUES ('a1', 'p1');
INSERT INTO writes VALUES ('a2', 'p2');
"""

QUERIES = ("dataflow", "grace", "optimizing", "abstraction barbara")


def make_db(name: str = "waltest") -> Database:
    database = Database(name)
    execute_script(database, SCHEMA)
    return database


def delta(n: int) -> Delta:
    return Delta(kind="insert", node=("paper", n), row_values=(f"p{n}", "t"))


def epoch(n: int) -> Epoch:
    return Epoch(n, (delta(n),))


def signatures(facade, queries=QUERIES):
    return [
        [
            (a.tree.root, round(a.relevance, 9))
            for a in facade.search(q, max_results=5)
        ]
        for q in queries
    ]


def mutate_battery(store: SnapshotStore, rounds: int = 6) -> None:
    """Mixed insert/update/delete epochs through a snapshot store."""
    for i in range(rounds):
        store.mutate(
            lambda f, i=i: f.insert("paper", [f"px{i}", f"dataflow study {i}"])
        )
        store.mutate(lambda f, i=i: f.insert("writes", ["a1", f"px{i}"]))
    store.mutate(lambda f: f.update(("paper", 0), {"title": "optimizing compilers"}))
    store.mutate(lambda f: f.delete(("writes", 2)))


class TestWriterReader:
    def test_roundtrip(self, tmp_path):
        wal = str(tmp_path / "wal")
        writer = WalWriter(wal, fsync="never")
        for n in range(1, 6):
            writer.append(epoch(n))
        reader = WalReader(wal)
        replayed = reader.read_all()
        assert [e.number for e in replayed] == [1, 2, 3, 4, 5]
        assert replayed[2].deltas[0].node == ("paper", 3)
        assert reader.first_epoch() == 1
        assert reader.last_epoch() == 5
        assert reader.size_bytes() == writer.bytes_written > 0

    def test_entries_since(self, tmp_path):
        writer = WalWriter(str(tmp_path), fsync="never")
        for n in range(1, 8):
            writer.append(epoch(n))
        reader = WalReader(str(tmp_path))
        assert [e.number for e in reader.entries_since(4)] == [5, 6, 7]
        assert reader.entries_since(7) == []

    def test_appends_must_be_sequential(self, tmp_path):
        writer = WalWriter(str(tmp_path), fsync="never")
        writer.append(epoch(1))
        with pytest.raises(WalError):
            writer.append(epoch(3))  # gap
        with pytest.raises(WalError):
            writer.append(epoch(1))  # duplicate

    def test_resume_continues_numbering(self, tmp_path):
        wal = str(tmp_path)
        first = WalWriter(wal, fsync="never")
        first.append(epoch(1))
        first.append(epoch(2))
        first.close()
        second = WalWriter(wal, fsync="never")
        assert second.last_epoch == 2
        second.append(epoch(3))
        assert [e.number for e in WalReader(wal).read_all()] == [1, 2, 3]

    def test_append_after_close_reopens(self, tmp_path):
        writer = WalWriter(str(tmp_path), fsync="never")
        writer.append(epoch(1))
        writer.close()
        writer.append(epoch(2))
        assert WalReader(str(tmp_path)).last_epoch() == 2

    def test_bad_configuration(self, tmp_path):
        with pytest.raises(StoreError):
            WalWriter(str(tmp_path), fsync="sometimes")
        with pytest.raises(StoreError):
            WalWriter(str(tmp_path), segment_bytes=0)
        with pytest.raises(StoreError):
            WalWriter(str(tmp_path), retain=0)
        with pytest.raises(StoreError):
            WalReader(str(tmp_path / "missing"))

    def test_fsync_policies_accepted(self, tmp_path):
        for policy in ("always", "rotate", "never"):
            wal = str(tmp_path / policy)
            writer = WalWriter(wal, fsync=policy)
            writer.append(epoch(1))
            writer.close()
            assert WalReader(wal).last_epoch() == 1


class TestRotationAndRetention:
    def test_segments_rotate_by_size(self, tmp_path):
        wal = str(tmp_path)
        writer = WalWriter(wal, segment_bytes=1, fsync="never")
        for n in range(1, 5):
            writer.append(epoch(n))
        segments = sorted(os.listdir(wal))
        # segment_bytes=1: every append overflows, one epoch per file.
        assert len(segments) == 4
        assert writer.rotations == 3
        assert [e.number for e in WalReader(wal).read_all()] == [1, 2, 3, 4]

    def test_retention_prunes_whole_segments(self, tmp_path):
        wal = str(tmp_path)
        writer = WalWriter(wal, segment_bytes=1, fsync="never", retain=2)
        for n in range(1, 9):
            writer.append(epoch(n))
        reader = WalReader(wal)
        assert writer.pruned_segments > 0
        # The window is segment-granular: at least `retain` epochs stay.
        assert reader.first_epoch() <= writer.last_epoch - writer.retain + 1
        assert reader.last_epoch() == 8
        assert writer.bytes_written == reader.size_bytes()

    def test_catchup_past_pruned_window_fails_loudly(self, tmp_path):
        wal = str(tmp_path)
        writer = WalWriter(wal, segment_bytes=1, fsync="never", retain=2)
        for n in range(1, 9):
            writer.append(epoch(n))
        reader = WalReader(wal)
        with pytest.raises(StoreError):
            reader.entries_since(0)
        # Inside the retained window the tail still reads fine.
        tail = reader.entries_since(reader.first_epoch())
        assert tail[-1].number == 8


def _crash_copies(wal: str, scratch: str):
    """Every crash image of a WAL: for each byte offset into the
    concatenated segment stream, the on-disk state a crash at that
    offset leaves behind (earlier segments intact, the hit segment
    truncated, later segments never written)."""
    segments = sorted(os.listdir(wal))
    for position, name in enumerate(segments):
        size = os.path.getsize(os.path.join(wal, name))
        # cut == size is the crash landing exactly on a record (and
        # segment) boundary: the segment is complete, later ones absent.
        for cut in range(size + 1):
            image = os.path.join(scratch, f"crash-{position}-{cut}")
            os.makedirs(image)
            for keep in segments[:position]:
                shutil.copy(os.path.join(wal, keep), image)
            with open(os.path.join(wal, name), "rb") as handle:
                prefix = handle.read(cut)
            if cut:
                with open(os.path.join(image, name), "wb") as handle:
                    handle.write(prefix)
            yield image
            shutil.rmtree(image)


class TestTornTails:
    def test_truncation_at_any_byte_recovers_last_complete_epoch(
        self, tmp_path
    ):
        """The crash-point property test: whatever byte the log dies
        at, readers recover exactly the epochs whose records are
        complete — never a partial epoch, never an error."""
        wal = str(tmp_path / "wal")
        writer = WalWriter(wal, segment_bytes=220, fsync="never")
        for n in range(1, 7):
            writer.append(epoch(n))
        writer.close()
        assert writer.rotations > 0  # the property must span segments

        scratch = str(tmp_path / "scratch")
        os.makedirs(scratch)
        boundaries = set()
        for image in _crash_copies(wal, scratch):
            recovered = WalReader(image).read_all()
            numbers = [e.number for e in recovered]
            # Complete prefix, in order, no partial replay.
            assert numbers == list(range(1, len(numbers) + 1))
            boundaries.add(len(numbers))
            # The writer adopts the same prefix and appends cleanly.
            resumed = WalWriter(image, fsync="never")
            assert resumed.last_epoch == len(numbers)
            resumed.append(epoch(len(numbers) + 1))
            resumed.close()
            assert WalReader(image).last_epoch() == len(numbers) + 1
        # Every prefix length is reachable as some crash outcome.
        assert boundaries == set(range(0, 7))

    def test_mid_log_corruption_is_loud(self, tmp_path):
        wal = str(tmp_path)
        writer = WalWriter(wal, segment_bytes=220, fsync="never")
        for n in range(1, 7):
            writer.append(epoch(n))
        writer.close()
        first_segment = sorted(os.listdir(wal))[0]
        path = os.path.join(wal, first_segment)
        with open(path, "rb+") as handle:
            handle.seek(12)
            byte = handle.read(1)
            handle.seek(12)
            handle.write(bytes([byte[0] ^ 0xFF]))
        with pytest.raises(WalError):
            WalReader(wal).read_all()
        with pytest.raises(WalError):
            WalWriter(wal, fsync="never")


class TestDeltaLogIntegration:
    def test_publish_appends_durably(self, tmp_path):
        writer = WalWriter(str(tmp_path), fsync="never")
        log = DeltaLog(retain=4, wal=writer)
        log.publish([delta(1)])
        log.publish([delta(2), delta(3)])
        replayed = WalReader(str(tmp_path)).read_all()
        assert [e.number for e in replayed] == [1, 2]
        assert len(replayed[1].deltas) == 2

    def test_epoch_numbering_resumes_from_wal(self, tmp_path):
        wal = str(tmp_path)
        log = DeltaLog(wal=WalWriter(wal, fsync="never"))
        for n in range(3):
            log.publish([delta(n)])
        resumed = DeltaLog(wal=WalWriter(wal, fsync="never"))
        assert resumed.epoch == 3
        entry = resumed.publish([delta(9)])
        assert entry.number == 4
        assert WalReader(wal).last_epoch() == 4

    def test_in_memory_reclamation_unchanged(self, tmp_path):
        log = DeltaLog(retain=2, wal=WalWriter(str(tmp_path), fsync="never"))
        for n in range(8):
            log.publish([delta(n)])
        with pytest.raises(StoreError):
            log.entries_since(1)
        # ...but the durable log kept everything (retain=None default).
        assert WalReader(str(tmp_path)).first_epoch() == 1


class TestSnapshotStoreIntegration:
    def test_store_accepts_path_and_publishes(self, tmp_path):
        wal = str(tmp_path / "wal")
        store = SnapshotStore(
            IncrementalBANKS(make_db()), copy_mode="delta", wal=wal
        )
        mutate_battery(store, rounds=2)
        reader = WalReader(wal)
        assert reader.last_epoch() == store.epoch == 6
        assert store.wal_epochs_written == 6
        assert store.wal_bytes == reader.size_bytes() > 0

    def test_wal_requires_delta_mode(self, tmp_path):
        with pytest.raises(ServeError):
            SnapshotStore(
                IncrementalBANKS(make_db()),
                copy_mode="deep",
                wal=str(tmp_path),
            )

    def test_republish_logs_an_empty_epoch(self, tmp_path):
        wal = str(tmp_path)
        store = SnapshotStore(
            IncrementalBANKS(make_db()), copy_mode="delta", wal=wal
        )
        store.republish()
        replayed = WalReader(wal).read_all()
        assert [e.number for e in replayed] == [1]
        assert replayed[0].deltas == ()


class TestWriteAheadOrdering:
    def test_failed_wal_append_aborts_the_publish(self, tmp_path):
        """Write-ahead means write-ahead: if the durable append fails,
        the mutation must not become visible — live state and log
        stay in lockstep."""
        wal = str(tmp_path / "wal")
        store = SnapshotStore(
            IncrementalBANKS(make_db()), copy_mode="delta", wal=wal
        )
        store.mutate(lambda f: f.insert("paper", ["p8", "first epoch"]))

        def broken_append(epoch):
            raise WalError("disk full")

        store.log.wal.append = broken_append
        before = store.current()
        with pytest.raises(WalError):
            store.mutate(lambda f: f.insert("paper", ["p9", "lost"]))
        # Nothing published: same version, same facade, same epoch.
        assert store.current() is before
        assert store.epoch == 1
        assert WalReader(wal).last_epoch() == 1
        assert not store.current().facade.database.table("paper").lookup_pk(
            ("p9",)
        )

    def test_persistent_prune_race_fails_loudly(self, tmp_path):
        """A reader whose segments vanish between every listing and
        read (a pathologically fast pruner) gets StoreError, not a
        raw FileNotFoundError that would kill a follower thread."""
        wal = str(tmp_path)
        writer = WalWriter(wal, fsync="never")
        writer.append(epoch(1))
        reader = WalReader(wal)

        def gone(filepath):
            raise FileNotFoundError(filepath)

        reader._segment_range = gone
        with pytest.raises(StoreError):
            reader.last_epoch()


class TestRecovery:
    def test_recover_reproduces_the_live_facade(self, tmp_path):
        wal = str(tmp_path / "wal")
        base = make_db()
        store = SnapshotStore(
            IncrementalBANKS(base.fork()), copy_mode="delta", wal=wal
        )
        mutate_battery(store)
        live = store.current().facade

        recovered = IncrementalBANKS.recover(base.fork, wal)
        assert recovered.applied_epoch == store.epoch
        assert signatures(recovered) == signatures(live)

    def test_recover_stops_at_torn_tail(self, tmp_path):
        wal = str(tmp_path / "wal")
        base = make_db()
        store = SnapshotStore(
            IncrementalBANKS(base.fork()), copy_mode="delta", wal=wal
        )
        mutate_battery(store, rounds=2)
        # Crash mid-append: chop bytes off the newest segment.
        segments = sorted(os.listdir(wal))
        last = os.path.join(wal, segments[-1])
        with open(last, "rb+") as handle:
            handle.truncate(os.path.getsize(last) - 5)
        recovered = IncrementalBANKS.recover(base.fork, wal)
        assert recovered.applied_epoch == store.epoch - 1

    def test_recover_refuses_pruned_history(self, tmp_path):
        wal = str(tmp_path)
        writer = WalWriter(wal, segment_bytes=1, fsync="never", retain=1)
        for n in range(1, 6):
            writer.append(epoch(n))
        with pytest.raises(StoreError):
            IncrementalBANKS.recover(make_db, wal)

    def test_replica_rejects_epoch_gap(self):
        facade = IncrementalBANKS(make_db())
        with pytest.raises(StoreError):
            facade.apply_epoch(Epoch(5, ()))
        facade.apply_epoch(Epoch(1, ()))
        assert facade.applied_epoch == 1


class TestReplicaFollower:
    def _primary(self, tmp_path):
        wal = str(tmp_path / "wal")
        base = make_db()
        store = SnapshotStore(
            IncrementalBANKS(base.fork()), copy_mode="delta", wal=wal
        )
        mutate_battery(store)
        return wal, base, store

    def test_facade_target_catches_up(self, tmp_path):
        wal, base, store = self._primary(tmp_path)
        replica = IncrementalBANKS(base.fork())
        follower = ReplicaFollower(wal, replica)
        assert follower.poll() == store.epoch
        assert follower.lag_epochs() == 0
        assert follower.poll() == 0  # idempotent when caught up
        assert signatures(replica) == signatures(store.current().facade)

    def test_incremental_tailing(self, tmp_path):
        wal = str(tmp_path / "wal")
        base = make_db()
        store = SnapshotStore(
            IncrementalBANKS(base.fork()), copy_mode="delta", wal=wal
        )
        replica = IncrementalBANKS(base.fork())
        follower = ReplicaFollower(wal, replica)
        for i in range(3):
            store.mutate(
                lambda f, i=i: f.insert("paper", [f"pz{i}", f"study {i}"])
            )
            assert follower.poll() == 1
            assert follower.applied_epoch == store.epoch
        assert signatures(replica) == signatures(store.current().facade)

    def test_engine_target_publishes_versions(self, tmp_path):
        wal, base, store = self._primary(tmp_path)
        engine = QueryEngine(
            IncrementalBANKS(base.fork()), EngineConfig(workers=1)
        )
        try:
            registry = engine.metrics
            follower = ReplicaFollower.over_engine(
                wal, engine, metrics=registry
            )
            applied = follower.poll()
            assert applied == store.epoch
            # One poll batch = one atomically published version.
            assert engine.snapshots.version == 1
            assert registry.snapshot()["replica_lag_epochs"] == 0
            assert signatures(engine.facade) == signatures(
                store.current().facade
            )
        finally:
            engine.stop()

    def test_router_target_routes_epochs(self, tmp_path):
        wal, base, store = self._primary(tmp_path)
        with ShardRouter(base.fork(), shards=2, backend="thread") as router:
            follower = ReplicaFollower(wal, router)
            follower.poll()
            assert follower.lag_epochs() == 0
            live = store.current().facade
            for query in QUERIES:
                got = [
                    (a.tree.root, round(a.relevance, 9))
                    for a in router.search(query, max_results=5)
                ]
                want = [
                    (a.tree.root, round(a.relevance, 9))
                    for a in live.search(query, max_results=5)
                ]
                assert got == want

    def test_background_thread_tails(self, tmp_path):
        wal, base, store = self._primary(tmp_path)
        replica = IncrementalBANKS(base.fork())
        follower = ReplicaFollower(wal, replica).start(interval=0.01)
        try:
            assert follower.catch_up(store.epoch, timeout=10.0) == 0
        finally:
            follower.stop()
        assert follower.lag_epochs() == 0

    def test_lag_counts_unapplied_epochs(self, tmp_path):
        wal, base, store = self._primary(tmp_path)
        replica = IncrementalBANKS(base.fork())
        follower = ReplicaFollower(wal, replica)
        assert follower.lag_epochs() == store.epoch
        follower.poll()
        assert follower.lag_epochs() == 0

    @pytest.mark.skipif(not fork_available(), reason="needs fork")
    def test_second_process_replica_matches(self, tmp_path):
        wal, base, store = self._primary(tmp_path)
        live = store.current().facade
        context = multiprocessing.get_context("fork")
        parent_end, child_end = context.Pipe()

        def probe():
            replica = IncrementalBANKS(base.fork())
            follower = ReplicaFollower(wal, replica)
            follower.catch_up(store.epoch, timeout=30.0)
            child_end.send((follower.lag_epochs(), signatures(replica)))
            child_end.close()

        process = context.Process(target=probe, daemon=True)
        process.start()
        child_end.close()
        lag, replica_signatures = parent_end.recv()
        process.join(timeout=10.0)
        assert lag == 0
        assert replica_signatures == signatures(live)


class TestEngineWalSurface:
    def test_engine_gauges_and_recovery_cycle(self, tmp_path):
        wal = str(tmp_path / "wal")
        base = make_db()
        engine = QueryEngine(
            IncrementalBANKS(base.fork()),
            EngineConfig(workers=1, wal_path=wal, wal_fsync="rotate"),
        )
        try:
            engine.mutate(lambda f: f.insert("paper", ["p9", "dataflow"]))
            snapshot = engine.metrics.snapshot()
            assert snapshot["wal_epochs_written"] == 1
            assert snapshot["wal_bytes"] > 0
            text = engine.metrics.render_text()
            assert "banks_engine_wal_epochs_written 1" in text
        finally:
            engine.stop()
        # A second engine over the same WAL resumes epoch numbering.
        recovered = IncrementalBANKS.recover(base.fork, wal)
        resumed = QueryEngine(
            recovered, EngineConfig(workers=1, wal_path=wal)
        )
        try:
            assert resumed.snapshots.epoch == 1
            resumed.mutate(lambda f: f.insert("paper", ["p10", "streams"]))
            assert resumed.snapshots.epoch == 2
            assert WalReader(wal).last_epoch() == 2
        finally:
            resumed.stop()

    def test_engine_without_wal_reports_zero(self):
        engine = QueryEngine(
            IncrementalBANKS(make_db()), EngineConfig(workers=1)
        )
        try:
            snapshot = engine.metrics.snapshot()
            assert snapshot["wal_epochs_written"] == 0
            assert snapshot["wal_bytes"] == 0
        finally:
            engine.stop()

    def test_bad_wal_fsync_rejected(self):
        with pytest.raises(ServeError):
            EngineConfig(wal_fsync="mostly")
