"""Tests for delta derivation, idempotent graph application, replica
replay, and the copy-on-write forks of the relational + index layers."""

from __future__ import annotations

import pytest

from repro.core.incremental import IncrementalBANKS
from repro.core.model import build_data_graph
from repro.errors import StoreError
from repro.relational import Database, execute_script
from repro.shard.stitch import graphs_equal
from repro.store.delta import apply_graph_delta, replay_delta
from repro.text.inverted_index import InvertedIndex

SCHEMA = """
CREATE TABLE author (aid TEXT PRIMARY KEY, name TEXT NOT NULL);
CREATE TABLE paper (pid TEXT PRIMARY KEY, title TEXT NOT NULL);
CREATE TABLE writes (
    aid TEXT NOT NULL REFERENCES author(aid),
    pid TEXT NOT NULL REFERENCES paper(pid)
);
INSERT INTO author VALUES ('a1', 'ada lovelace');
INSERT INTO author VALUES ('a2', 'alan turing');
INSERT INTO paper VALUES ('p1', 'computing machinery');
INSERT INTO writes VALUES ('a1', 'p1');
"""


def make_db() -> Database:
    database = Database("delta")
    execute_script(database, SCHEMA)
    return database


def captured(banks: IncrementalBANKS, fn):
    banks.begin_delta_capture()
    fn(banks)
    return banks.end_delta_capture()


class TestCapture:
    def test_insert_delta_contents(self):
        banks = IncrementalBANKS(make_db())
        (delta,) = captured(
            banks, lambda b: b.insert("writes", ["a2", "p1"])
        )
        assert delta.kind == "insert"
        assert delta.node == ("writes", 1)
        assert delta.row_values == ("a2", "p1")
        edge_map = {(s, t): w for s, t, w in delta.edges}
        # Forward edges to author + paper, their back edges, and the
        # sibling referrer re-weigh (paper -> first writes goes to 2).
        assert edge_map[(("writes", 1), ("paper", 0))] == 1.0
        assert edge_map[(("paper", 0), ("writes", 0))] == 2.0
        prestige = dict(delta.prestige)
        assert prestige[("paper", 0)] == 2.0

    def test_update_delta_reindexes_tokens(self):
        banks = IncrementalBANKS(make_db())
        (delta,) = captured(
            banks,
            lambda b: b.update(("paper", 0), {"title": "deep learning"}),
        )
        assert delta.kind == "update"
        assert "computing" in delta.index_removed
        assert "deep" in delta.index_added
        assert dict(delta.changes) == {"title": "deep learning"}

    def test_capture_is_explicit_and_non_reentrant(self):
        banks = IncrementalBANKS(make_db())
        banks.insert("paper", ["p2", "uncaptured"])  # no capture: fine
        banks.begin_delta_capture()
        with pytest.raises(StoreError):
            banks.begin_delta_capture()
        assert banks.end_delta_capture() == []
        with pytest.raises(StoreError):
            banks.end_delta_capture()

    def test_touched_nodes_cover_graph_effects(self):
        banks = IncrementalBANKS(make_db())
        (delta,) = captured(
            banks, lambda b: b.insert("writes", ["a2", "p1"])
        )
        touched = delta.touched_nodes()
        assert ("writes", 1) in touched
        assert ("paper", 0) in touched


class TestIdempotentApplication:
    def test_applying_twice_is_harmless(self):
        """The thread-backed shard layer may broadcast one delta to a
        shared graph through several searchers."""
        source = IncrementalBANKS(make_db())
        deltas = captured(
            source,
            lambda b: (
                b.insert("paper", ["p2", "symbolic reasoning"]),
                b.insert("writes", ["a2", "p2"]),
                b.delete(("writes", 0)),
            ),
        )
        replica_banks = IncrementalBANKS(make_db())
        graph = replica_banks.graph
        for delta in deltas:
            replay_delta(replica_banks.database, [replica_banks.index], delta)
            apply_graph_delta(graph, delta)
            apply_graph_delta(graph, delta)  # double apply on purpose
        assert graphs_equal(graph, source.graph)


class TestReplay:
    def test_replay_reproduces_database_index_and_graph(self):
        source = IncrementalBANKS(make_db())
        deltas = captured(
            source,
            lambda b: (
                b.insert("paper", ["p2", "symbolic reasoning"]),
                b.insert("writes", ["a2", "p2"]),
                b.update(("paper", 1), {"title": "neural reasoning"}),
                b.delete(("writes", 1)),
            ),
        )
        assert len(deltas) == 4
        replica = make_db()
        replica_index = InvertedIndex(replica)
        replica_graph, _stats = build_data_graph(replica)
        for delta in deltas:
            replay_delta(replica, [replica_index], delta)
            apply_graph_delta(replica_graph, delta)
        assert graphs_equal(replica_graph, source.graph)
        assert set(replica_index.vocabulary()) == set(
            source.index.vocabulary()
        )
        rebuilt, _ = build_data_graph(replica)
        assert graphs_equal(replica_graph, rebuilt)

    def test_replay_detects_divergent_replica(self):
        source = IncrementalBANKS(make_db())
        (delta,) = captured(
            source, lambda b: b.insert("paper", ["p2", "x"])
        )
        replica = make_db()
        replica.insert("paper", ["p-skew", "already drifted"])
        with pytest.raises(StoreError):
            replay_delta(replica, [], delta)


class TestRelationalForks:
    def test_table_fork_isolation_both_directions(self):
        database = make_db()
        fork = database.fork()
        fork.insert("paper", ["p2", "fork only"])
        database.insert("paper", ["p3", "parent only"])
        assert [r["pid"] for r in fork.table("paper").scan()] == ["p1", "p2"]
        assert [r["pid"] for r in database.table("paper").scan()] == [
            "p1",
            "p3",
        ]

    def test_reverse_reference_index_forks(self):
        database = make_db()
        fork = database.fork()
        fork.insert("writes", ["a2", "p1"])
        assert fork.indegree(("paper", 0)) == 2
        assert database.indegree(("paper", 0)) == 1

    def test_delete_and_update_fork_isolation(self):
        database = make_db()
        fork = database.fork()
        fork.delete(("writes", 0))
        fork.update(("paper", 0), {"title": "changed"})
        assert database.table("writes").has_rid(0)
        assert database.row(("paper", 0))["title"] == "computing machinery"
        assert fork.row(("paper", 0))["title"] == "changed"

    def test_untouched_tables_stay_shared(self):
        database = make_db()
        fork = database.fork()
        fork.insert("paper", ["p2", "fork only"])
        assert fork.table("author")._heap is database.table("author")._heap
        assert fork.table("paper")._heap is not database.table("paper")._heap

    def test_index_fork_isolation(self):
        database = make_db()
        index = InvertedIndex(database)
        fork_db = database.fork()
        fork = index.fork(fork_db)
        rid = fork_db.insert("paper", ["p2", "computing lambda"])
        fork.add_row(*rid)
        assert rid in fork.lookup_nodes("lambda")
        assert index.lookup_nodes("lambda") == set()
        # Shared token: the fork's append must not leak into the parent.
        assert rid not in index.lookup_nodes("computing")
        assert rid in fork.lookup_nodes("computing")
