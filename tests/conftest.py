"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro import BANKS
from repro.relational import Database, execute_script

#: The paper's Fig. 1 fragment: schema plus the ChakrabartiSD98 tuples.
FIGURE1_SQL = """
CREATE TABLE author (
    author_id TEXT PRIMARY KEY,
    name TEXT NOT NULL
);
CREATE TABLE paper (
    paper_id TEXT PRIMARY KEY,
    title TEXT NOT NULL
);
CREATE TABLE writes (
    author_id TEXT NOT NULL REFERENCES author(author_id),
    paper_id TEXT NOT NULL REFERENCES paper(paper_id),
    PRIMARY KEY (author_id, paper_id)
);
CREATE TABLE cites (
    citing TEXT NOT NULL REFERENCES paper(paper_id),
    cited TEXT NOT NULL REFERENCES paper(paper_id),
    PRIMARY KEY (citing, cited)
);
INSERT INTO author VALUES ('SoumenC', 'Soumen Chakrabarti');
INSERT INTO author VALUES ('SunitaS', 'Sunita Sarawagi');
INSERT INTO author VALUES ('ByronD', 'Byron Dom');
INSERT INTO paper VALUES
    ('ChakrabartiSD98',
     'Mining Surprising Patterns Using Temporal Description Length');
INSERT INTO writes VALUES ('SoumenC', 'ChakrabartiSD98');
INSERT INTO writes VALUES ('SunitaS', 'ChakrabartiSD98');
INSERT INTO writes VALUES ('ByronD', 'ChakrabartiSD98');
"""


@pytest.fixture
def figure1_db() -> Database:
    database = Database("figure1")
    execute_script(database, FIGURE1_SQL)
    return database


@pytest.fixture
def figure1_banks(figure1_db) -> BANKS:
    return BANKS(figure1_db)


@pytest.fixture(scope="session")
def bibliography_session():
    from repro.datasets import generate_bibliography

    return generate_bibliography()


@pytest.fixture(scope="session")
def biblio_banks_session(bibliography_session):
    database, _anecdotes = bibliography_session
    return BANKS(database)


@pytest.fixture(scope="session")
def thesis_session():
    from repro.datasets import generate_thesis_db

    return generate_thesis_db()
