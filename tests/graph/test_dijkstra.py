"""Tests for the lazy Dijkstra iterator, incl. a networkx oracle check."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.graph.digraph import DiGraph
from repro.graph.dijkstra import DijkstraIterator, shortest_path_lengths


def chain_graph() -> DiGraph:
    graph = DiGraph()
    graph.add_edge("a", "b", 1.0)
    graph.add_edge("b", "c", 2.0)
    graph.add_edge("a", "c", 10.0)
    graph.add_edge("c", "d", 1.0)
    return graph


class TestIterator:
    def test_visits_in_distance_order(self):
        iterator = DijkstraIterator(chain_graph(), "a")
        visits = list(iterator)
        assert [v.node for v in visits] == ["a", "b", "c", "d"]
        assert [v.distance for v in visits] == [0.0, 1.0, 3.0, 4.0]

    def test_peek_matches_next(self):
        iterator = DijkstraIterator(chain_graph(), "a")
        while True:
            peeked = iterator.peek()
            visit = iterator.next()
            if visit is None:
                assert peeked is None
                break
            assert peeked == visit.distance

    def test_parent_pointers_spell_paths(self):
        iterator = DijkstraIterator(chain_graph(), "a")
        list(iterator)
        assert iterator.path_to_source("d") == ["d", "c", "b", "a"]

    def test_path_requires_settled_node(self):
        iterator = DijkstraIterator(chain_graph(), "a")
        iterator.next()
        with pytest.raises(KeyError):
            iterator.path_to_source("d")

    def test_reverse_traversal(self):
        iterator = DijkstraIterator(chain_graph(), "d", reverse=True)
        distances = {v.node: v.distance for v in iterator}
        # Forward path a->b->c->d costs 4.
        assert distances["a"] == 4.0
        assert iterator.path_to_source("a") == ["a", "b", "c", "d"]

    def test_initial_distance_offset(self):
        iterator = DijkstraIterator(chain_graph(), "a", initial_distance=5.0)
        first = iterator.next()
        assert first.distance == 5.0

    def test_max_distance_prunes(self):
        iterator = DijkstraIterator(chain_graph(), "a", max_distance=1.5)
        nodes = [v.node for v in iterator]
        assert nodes == ["a", "b"]
        assert iterator.exhausted

    def test_unreachable_nodes_never_output(self):
        graph = chain_graph()
        graph.add_node("island")
        distances = shortest_path_lengths(graph, "a")
        assert "island" not in distances

    def test_settled_distance(self):
        iterator = DijkstraIterator(chain_graph(), "a")
        assert iterator.settled_distance("b") is None
        list(iterator)
        assert iterator.settled_distance("b") == 1.0


@st.composite
def random_graphs(draw):
    node_count = draw(st.integers(min_value=2, max_value=12))
    nodes = list(range(node_count))
    edge_count = draw(st.integers(min_value=1, max_value=30))
    edges = []
    for _ in range(edge_count):
        source = draw(st.integers(min_value=0, max_value=node_count - 1))
        target = draw(st.integers(min_value=0, max_value=node_count - 1))
        if source == target:
            continue
        weight = draw(
            st.floats(min_value=0.1, max_value=10.0, allow_nan=False)
        )
        edges.append((source, target, weight))
    return nodes, edges


@settings(max_examples=60, deadline=None)
@given(random_graphs())
def test_matches_networkx_on_random_graphs(graph_spec):
    """Property: our distances equal networkx's on arbitrary digraphs."""
    networkx = pytest.importorskip("networkx")
    nodes, edges = graph_spec
    ours = DiGraph()
    theirs = networkx.DiGraph()
    for node in nodes:
        ours.add_node(node)
        theirs.add_node(node)
    for source, target, weight in edges:
        # Parallel edges collapse to the last weight in both models.
        ours.add_edge(source, target, weight)
        theirs.add_edge(source, target, weight=weight)

    expected = networkx.single_source_dijkstra_path_length(theirs, 0)
    actual = shortest_path_lengths(ours, 0)
    assert set(actual) == set(expected)
    for node, distance in expected.items():
        assert actual[node] == pytest.approx(distance)


@settings(max_examples=30, deadline=None)
@given(random_graphs())
def test_reverse_equals_forward_on_reversed_graph(graph_spec):
    """Property: reverse iteration == forward iteration on G reversed."""
    nodes, edges = graph_spec
    graph = DiGraph()
    for node in nodes:
        graph.add_node(node)
    for source, target, weight in edges:
        graph.add_edge(source, target, weight)
    reverse_distances = shortest_path_lengths(graph, 0, reverse=True)
    forward_on_reversed = shortest_path_lengths(graph.reversed(), 0)
    assert reverse_distances == pytest.approx(forward_on_reversed)
