"""Tests for the authority-transfer prestige (PageRank)."""

import pytest

from repro.errors import GraphError
from repro.graph.digraph import DiGraph
from repro.graph.pagerank import pagerank


def test_empty_graph():
    assert pagerank(DiGraph()) == {}


def test_scores_sum_to_one():
    graph = DiGraph()
    graph.add_edge("a", "b", 1.0)
    graph.add_edge("b", "c", 1.0)
    graph.add_edge("c", "a", 1.0)
    scores = pagerank(graph)
    assert sum(scores.values()) == pytest.approx(1.0)


def test_cycle_is_uniform():
    graph = DiGraph()
    graph.add_edge("a", "b", 1.0)
    graph.add_edge("b", "c", 1.0)
    graph.add_edge("c", "a", 1.0)
    scores = pagerank(graph)
    assert scores["a"] == pytest.approx(scores["b"])
    assert scores["b"] == pytest.approx(scores["c"])


def test_popular_node_scores_higher():
    graph = DiGraph()
    for source in ("a", "b", "c", "d"):
        graph.add_edge(source, "hub", 1.0)
    graph.add_edge("hub", "a", 1.0)
    scores = pagerank(graph)
    assert scores["hub"] > scores["b"]


def test_authority_transfer():
    """A node pointed to by a heavy node outranks one pointed to by a
    light node — the Sec. 7 'spreading activation' behaviour plain
    indegree cannot express."""
    graph = DiGraph()
    # hub is heavy (many in-links); hub points at 'blessed'.
    for i in range(5):
        graph.add_edge(f"fan{i}", "hub", 1.0)
    graph.add_edge("hub", "blessed", 1.0)
    graph.add_edge("loner", "plain", 1.0)
    scores = pagerank(graph)
    assert scores["blessed"] > scores["plain"]
    # Indegree alone would tie them (both indegree 1).
    assert graph.in_degree("blessed") == graph.in_degree("plain")


def test_dangling_nodes_handled():
    graph = DiGraph()
    graph.add_edge("a", "sink", 1.0)
    scores = pagerank(graph)
    assert sum(scores.values()) == pytest.approx(1.0)


def test_bad_damping_rejected():
    graph = DiGraph()
    graph.add_node("a")
    with pytest.raises(GraphError):
        pagerank(graph, damping=1.5)
