"""Unit tests for the directed graph substrate."""

import warnings

import pytest

from repro.errors import GraphError, UnknownNodeError
from repro.graph.digraph import DiGraph


@pytest.fixture
def triangle():
    graph = DiGraph()
    graph.add_edge("a", "b", 1.0)
    graph.add_edge("b", "c", 2.0)
    graph.add_edge("c", "a", 3.0)
    return graph


class TestConstruction:
    def test_add_node_idempotent(self):
        graph = DiGraph()
        first = graph.add_node("x", weight=5.0)
        second = graph.add_node("x", weight=9.0)
        assert first == second
        # The original weight is kept.
        assert graph.node_weight("x") == 5.0

    def test_add_edge_creates_nodes(self, triangle):
        assert triangle.num_nodes == 3
        assert triangle.num_edges == 3

    def test_edge_replacement_not_parallel(self):
        graph = DiGraph()
        graph.add_edge("a", "b", 1.0)
        graph.add_edge("a", "b", 7.0)
        assert graph.num_edges == 1
        assert graph.edge_weight("a", "b") == 7.0

    def test_self_loops_rejected(self):
        graph = DiGraph()
        with pytest.raises(GraphError):
            graph.add_edge("a", "a", 1.0)

    def test_negative_weights_rejected(self):
        graph = DiGraph()
        with pytest.raises(GraphError):
            graph.add_edge("a", "b", -0.5)

    def test_composite_node_ids(self):
        graph = DiGraph()
        graph.add_edge(("paper", 0), ("author", 3), 1.0)
        assert graph.has_node(("paper", 0))
        assert graph.has_edge(("paper", 0), ("author", 3))


class TestAccess:
    def test_successors_predecessors(self, triangle):
        assert triangle.successors("a") == [("b", 1.0)]
        assert triangle.predecessors("a") == [("c", 3.0)]
        assert triangle.out_degree("a") == 1
        assert triangle.in_degree("a") == 1

    def test_unknown_node_raises(self, triangle):
        with pytest.raises(UnknownNodeError):
            triangle.successors("zzz")

    def test_missing_edge_raises(self, triangle):
        with pytest.raises(GraphError):
            triangle.edge_weight("a", "c")

    def test_edges_iteration(self, triangle):
        assert sorted(triangle.edges()) == [
            ("a", "b", 1.0),
            ("b", "c", 2.0),
            ("c", "a", 3.0),
        ]

    def test_contains(self, triangle):
        assert "a" in triangle
        assert "z" not in triangle


class TestAggregates:
    def test_min_edge_weight(self, triangle):
        assert triangle.min_edge_weight() == 1.0

    def test_min_edge_weight_empty_graph(self):
        graph = DiGraph()
        graph.add_node("lonely")
        with pytest.raises(GraphError):
            graph.min_edge_weight()

    def test_max_node_weight(self):
        graph = DiGraph()
        graph.add_node("a", 1.0)
        graph.add_node("b", 9.0)
        assert graph.max_node_weight() == 9.0

    def test_max_node_weight_empty(self):
        with pytest.raises(GraphError):
            DiGraph().max_node_weight()


class TestDerivedGraphs:
    def test_subgraph(self, triangle):
        sub = triangle.subgraph(["a", "b"])
        assert sub.num_nodes == 2
        assert sub.has_edge("a", "b")
        assert not sub.has_edge("c", "a")

    def test_reversed(self, triangle):
        reversed_graph = triangle.reversed()
        assert reversed_graph.has_edge("b", "a")
        assert reversed_graph.edge_weight("b", "a") == 1.0
        assert reversed_graph.num_edges == triangle.num_edges


class TestDeprecations:
    def test_raw_node_weight_warns_once_and_still_answers(self, triangle):
        from repro.graph import digraph

        digraph._warned_raw_node_weight.clear()
        index = triangle._index["a"]
        expected = triangle.node_weight("a")
        with pytest.warns(DeprecationWarning, match="raw_node_weight"):
            assert triangle.raw_node_weight(index) == expected
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # latched: second call is silent
            assert triangle.raw_node_weight(index) == expected
