"""Frozen CSR graph: freeze semantics, overlay COW, Dijkstra parity.

The representation contract: freezing a :class:`DiGraph` and searching
through the arrays must be *invisible* — same read API answers, same
Dijkstra visit order and tie-breaks, same mutation semantics through
the overlay — because every ranking downstream ties on these.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.model import GraphStats
from repro.core.scoring import Scorer
from repro.core.search import SearchConfig, backward_expanding_search
from repro.errors import GraphError
from repro.graph.csr import (
    CSRDijkstra,
    CSRGraph,
    CSROverlayGraph,
    dijkstra_for,
    freeze_graph,
)
from repro.graph.digraph import DiGraph
from repro.graph.dijkstra import DijkstraIterator
from repro.shard.stitch import graphs_equal


def small_graph() -> DiGraph:
    graph = DiGraph()
    for name, weight in (("a", 1.0), ("b", 2.0), ("c", 3.0), ("d", 1.5)):
        graph.add_node(name, weight)
    graph.add_edge("a", "b", 1.0)
    graph.add_edge("b", "c", 2.0)
    graph.add_edge("a", "c", 5.0)
    graph.add_edge("c", "d", 1.0)
    return graph


def random_graph(seed: int, nodes: int = 30, edges: int = 80) -> DiGraph:
    rng = random.Random(seed)
    graph = DiGraph()
    names = [f"n{i}" for i in range(nodes)]
    for name in names:
        graph.add_node(name, rng.uniform(0.0, 5.0))
    for _ in range(edges):
        source, target = rng.sample(names, 2)
        graph.add_edge(source, target, rng.choice([1.0, 1.0, 2.0, 3.5]))
    return graph


class TestFreeze:
    def test_read_api_matches_digraph(self):
        graph = small_graph()
        frozen = CSRGraph.freeze(graph)
        assert list(frozen.nodes()) == list(graph.nodes())
        assert frozen.num_nodes == graph.num_nodes
        assert frozen.num_edges == graph.num_edges
        for node in graph.nodes():
            assert frozen.node_weight(node) == graph.node_weight(node)
            assert frozen.successors(node) == graph.successors(node)
            assert frozen.predecessors(node) == graph.predecessors(node)
            assert frozen.out_degree(node) == graph.out_degree(node)
            assert frozen.in_degree(node) == graph.in_degree(node)
        assert list(frozen.edges()) == list(graph.edges())
        assert frozen.edge_weight("a", "b") == 1.0
        assert frozen.min_edge_weight() == graph.min_edge_weight()
        assert frozen.max_node_weight() == graph.max_node_weight()

    def test_freeze_skips_tombstones_and_preserves_insertion_order(self):
        """Regression guard: ranking tie-breaks follow adjacency and
        node order, so freeze/thaw must keep the *live* insertion
        order and never resurrect or renumber tombstoned slots."""
        graph = small_graph()
        graph.remove_node("b")
        graph.add_node("e", 4.0)
        graph.add_edge("e", "a", 1.0)
        assert graph.tombstone_count == 1
        frozen = CSRGraph.freeze(graph)
        assert list(frozen.nodes()) == ["a", "c", "d", "e"]
        assert list(frozen.nodes()) == list(graph.nodes())
        assert frozen.tombstone_count == 0  # compacted away
        assert frozen.num_nodes == graph.num_nodes
        assert frozen.num_edges == graph.num_edges
        assert list(frozen.edges()) == list(graph.edges())
        # Tombstones count as weight 0.0 in the DiGraph normaliser;
        # freeze delegates, so the floats agree bit for bit.
        assert frozen.max_node_weight() == graph.max_node_weight()

    def test_frozen_graph_refuses_mutation(self):
        frozen = CSRGraph.freeze(small_graph())
        for mutate in (
            lambda: frozen.add_node("x"),
            lambda: frozen.add_edge("a", "d", 1.0),
            lambda: frozen.remove_edge("a", "b"),
            lambda: frozen.remove_node("a"),
            lambda: frozen.set_node_weight("a", 9.0),
        ):
            with pytest.raises(GraphError):
                mutate()

    def test_direct_construction_refused(self):
        with pytest.raises(GraphError):
            CSRGraph()

    def test_edge_norms_precomputed(self):
        import math

        graph = small_graph()
        frozen = CSRGraph.freeze(graph)
        minimum = graph.min_edge_weight()
        assert frozen.frozen_min_edge_weight == minimum
        for weight in (1.0, 2.0, 5.0):
            expected = math.log2(1.0 + weight / minimum)
            assert frozen.frozen_edge_norms[weight] == expected

    def test_freeze_graph_facade_always_returns_overlay(self):
        graph = small_graph()
        overlay = freeze_graph(graph)
        assert isinstance(overlay, CSROverlayGraph)
        assert isinstance(freeze_graph(overlay.base), CSROverlayGraph)
        assert isinstance(freeze_graph(overlay), CSROverlayGraph)


class TestOverlay:
    def test_mutations_mirror_digraph(self):
        graph = small_graph()
        overlay = CSRGraph.freeze(graph).overlay()
        for target in (graph, overlay):
            target.add_node("e", 2.5)
            target.add_edge("e", "a", 1.0)
            target.add_edge("b", "d", 4.0)
            target.remove_edge("a", "c")
            target.set_node_weight("b", 7.0)
            target.remove_node("c")
        assert graphs_equal(overlay, graph)
        assert list(overlay.nodes()) == list(graph.nodes())
        assert list(overlay.edges()) == list(graph.edges())
        assert overlay.tombstone_count == graph.tombstone_count == 1

    def test_fork_isolation(self):
        overlay = freeze_graph(small_graph())
        fork = overlay.fork()
        fork.add_edge("d", "a", 2.0)
        fork.set_node_weight("a", 9.0)
        assert fork.has_edge("d", "a")
        assert not overlay.has_edge("d", "a")
        assert overlay.node_weight("a") == 1.0
        assert fork.node_weight("a") == 9.0
        assert fork.base is overlay.base

    def test_overlay_nodes_signals_refreeze(self):
        overlay = freeze_graph(small_graph())
        assert overlay.overlay_nodes == 0
        overlay.add_edge("d", "a", 2.0)
        assert overlay.overlay_nodes > 0
        refrozen = overlay.refreeze()
        assert isinstance(refrozen, CSRGraph)
        assert graphs_equal(refrozen, overlay)
        assert refrozen.overlay().overlay_nodes == 0

    def test_mutation_error_parity(self):
        overlay = freeze_graph(small_graph())
        with pytest.raises(GraphError):
            overlay.add_edge("a", "a", 1.0)  # self loop
        with pytest.raises(GraphError):
            overlay.add_edge("a", "b", -1.0)  # negative weight
        with pytest.raises(GraphError):
            overlay.remove_edge("d", "a")  # absent edge


class TestCSRDijkstraParity:
    @pytest.mark.parametrize("reverse", [False, True])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_visit_sequence_matches_reference(self, seed, reverse):
        graph = random_graph(seed)
        frozen = CSRGraph.freeze(graph)
        for source in list(graph.nodes())[:5]:
            reference = DijkstraIterator(graph, source, reverse=reverse)
            compact = CSRDijkstra(frozen, source, reverse=reverse)
            while True:
                expected = reference.next()
                actual = compact.next()
                if expected is None:
                    assert actual is None
                    break
                assert actual is not None
                assert actual.node == expected.node
                assert actual.distance == expected.distance
                assert actual.parent == expected.parent
                assert compact.path_to_source(
                    actual.node
                ) == reference.path_to_source(expected.node)
            assert compact.relaxations == reference.relaxations

    def test_max_distance_bound(self):
        graph = random_graph(3)
        frozen = CSRGraph.freeze(graph)
        source = next(iter(graph.nodes()))
        reference = DijkstraIterator(graph, source, max_distance=3.0)
        compact = CSRDijkstra(frozen, source, max_distance=3.0)
        assert [v.node for v in reference] == [v.node for v in compact]

    def test_dijkstra_for_dispatches_on_representation(self):
        graph = small_graph()
        frozen = freeze_graph(graph)
        assert isinstance(dijkstra_for(graph, "a"), DijkstraIterator)
        assert isinstance(dijkstra_for(frozen, "a"), CSRDijkstra)


# -- property: freeze -> fork -> replay deltas == plain DiGraph ------------------

_mutations = st.lists(
    st.tuples(
        st.sampled_from(
            ["add_node", "add_edge", "remove_edge", "remove_node", "reweigh"]
        ),
        st.integers(0, 11),
        st.integers(0, 11),
    ),
    min_size=1,
    max_size=24,
)


def _apply(graph, op: str, a: int, b: int) -> None:
    """One mutation, guarded identically for both representations."""
    live = list(graph.nodes())
    if op == "add_node":
        graph.add_node(f"m{a}", float(b))
    elif op == "add_edge" and len(live) >= 2:
        source = live[a % len(live)]
        target = live[b % len(live)]
        if source != target:
            graph.add_edge(source, target, 1.0 + (a + b) % 3)
    elif op == "remove_edge" and live:
        edges = list(graph.edges())
        if edges:
            source, target, _weight = edges[(a + b) % len(edges)]
            graph.remove_edge(source, target)
    elif op == "remove_node" and len(live) > 2:
        graph.remove_node(live[a % len(live)])
    elif op == "reweigh" and live:
        graph.set_node_weight(live[a % len(live)], float(b) + 0.5)


@settings(deadline=None, max_examples=40)
@given(seed=st.integers(0, 5), mutations=_mutations)
def test_property_overlay_replay_matches_digraph(seed, mutations):
    """Freeze a random graph, fork the overlay, replay a random delta
    sequence over both representations: structural equality AND
    identical top-k answers (the search kernels must agree answer for
    answer on the mutated graph, not just on the frozen snapshot)."""
    plain = random_graph(seed, nodes=12, edges=24)
    overlay = freeze_graph(random_graph(seed, nodes=12, edges=24)).fork()
    for op, a, b in mutations:
        _apply(plain, op, a, b)
        _apply(overlay, op, a, b)
    assert graphs_equal(overlay, plain)
    assert list(overlay.nodes()) == list(plain.nodes())
    assert list(overlay.edges()) == list(plain.edges())

    if plain.num_edges == 0:
        return
    stats = GraphStats(
        min_edge_weight=plain.min_edge_weight(),
        max_node_weight=max(plain.max_node_weight(), 1.0e-12),
        num_nodes=plain.num_nodes,
        num_edges=plain.num_edges,
    )
    scorer = Scorer(stats)
    live = list(plain.nodes())
    keyword_node_sets = [{live[0]}, {live[len(live) // 2], live[-1]}]
    config = SearchConfig(max_results=5)
    expected = list(
        backward_expanding_search(plain, keyword_node_sets, scorer, config)
    )
    actual = list(
        backward_expanding_search(overlay, keyword_node_sets, scorer, config)
    )
    assert [
        (s.tree.root, s.relevance, s.tree.parent, s.tree.keyword_nodes)
        for s in expected
    ] == [
        (s.tree.root, s.relevance, s.tree.parent, s.tree.keyword_nodes)
        for s in actual
    ]
