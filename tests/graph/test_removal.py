"""Tests for DiGraph node/edge removal (incremental-maintenance support)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import GraphError, UnknownNodeError
from repro.graph.digraph import DiGraph


def make_triangle() -> DiGraph:
    graph = DiGraph()
    graph.add_edge("a", "b", 1.0)
    graph.add_edge("b", "c", 2.0)
    graph.add_edge("c", "a", 3.0)
    return graph


class TestRemoveEdge:
    def test_removes_one_direction_only(self):
        graph = DiGraph()
        graph.add_edge("a", "b", 1.0)
        graph.add_edge("b", "a", 2.0)
        graph.remove_edge("a", "b")
        assert not graph.has_edge("a", "b")
        assert graph.has_edge("b", "a")
        assert graph.num_edges == 1

    def test_missing_edge_raises(self):
        graph = make_triangle()
        with pytest.raises(GraphError):
            graph.remove_edge("a", "c")

    def test_degrees_follow(self):
        graph = make_triangle()
        graph.remove_edge("a", "b")
        assert graph.out_degree("a") == 0
        assert graph.in_degree("b") == 0

    def test_re_add_after_remove(self):
        graph = make_triangle()
        graph.remove_edge("a", "b")
        graph.add_edge("a", "b", 9.0)
        assert graph.edge_weight("a", "b") == 9.0
        assert graph.num_edges == 3


class TestRemoveNode:
    def test_node_gone(self):
        graph = make_triangle()
        graph.remove_node("b")
        assert not graph.has_node("b")
        assert "b" not in list(graph.nodes())
        assert graph.num_nodes == 2

    def test_incident_edges_gone_both_directions(self):
        graph = make_triangle()
        graph.remove_node("b")
        assert graph.num_edges == 1  # only c -> a survives
        assert graph.has_edge("c", "a")
        assert not graph.has_edge("a", "b")

    def test_neighbors_no_longer_see_removed_node(self):
        graph = make_triangle()
        graph.remove_node("b")
        assert graph.successors("a") == []
        assert graph.predecessors("c") == []

    def test_unknown_node_raises(self):
        graph = make_triangle()
        with pytest.raises(UnknownNodeError):
            graph.remove_node("zzz")

    def test_access_after_removal_raises(self):
        graph = make_triangle()
        graph.remove_node("b")
        with pytest.raises(UnknownNodeError):
            graph.node_weight("b")

    def test_surviving_indexes_stable(self):
        """Removal must not renumber other nodes (live iterators rely
        on stable internal indexes)."""
        graph = make_triangle()
        index_a = graph.index_of("a")
        index_c = graph.index_of("c")
        graph.remove_node("b")
        assert graph.index_of("a") == index_a
        assert graph.index_of("c") == index_c

    def test_re_add_same_id(self):
        graph = make_triangle()
        graph.remove_node("b")
        graph.add_node("b", weight=7.0)
        assert graph.has_node("b")
        assert graph.node_weight("b") == 7.0
        assert graph.out_degree("b") == 0
        assert graph.num_nodes == 3

    def test_edges_iteration_skips_removed(self):
        graph = make_triangle()
        graph.remove_node("a")
        edges = list(graph.edges())
        assert edges == [("b", "c", 2.0)]

    def test_reversed_and_subgraph_after_removal(self):
        graph = make_triangle()
        graph.remove_node("a")
        reversed_graph = graph.reversed()
        assert reversed_graph.has_edge("c", "b")
        sub = graph.subgraph(["b", "c"])
        assert sub.num_edges == 1


@given(
    st.lists(
        st.tuples(st.integers(0, 8), st.integers(0, 8)).filter(
            lambda e: e[0] != e[1]
        ),
        min_size=1,
        max_size=20,
    ),
    st.sets(st.integers(0, 8), max_size=4),
)
def test_property_removal_equals_fresh_construction(edge_list, doomed):
    """Building then removing nodes == building without them."""
    incremental = DiGraph()
    for source, target in edge_list:
        incremental.add_edge(source, target, 1.0 + source)
    for node in doomed:
        if incremental.has_node(node):
            incremental.remove_node(node)

    fresh = DiGraph()
    for source, target in edge_list:
        if source in doomed or target in doomed:
            continue
        fresh.add_edge(source, target, 1.0 + source)
    # Nodes that only appeared in doomed edges are absent from fresh;
    # compare edge sets and shared-node degrees.
    assert set(incremental.edges()) == set(fresh.edges())
    assert incremental.num_edges == fresh.num_edges
    for node in fresh.nodes():
        assert incremental.out_degree(node) == fresh.out_degree(node)
        assert incremental.in_degree(node) == fresh.in_degree(node)
