"""Tests for the exact group Steiner oracle."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import GraphError
from repro.graph.digraph import DiGraph
from repro.graph.dijkstra import shortest_path_lengths
from repro.graph.steiner import steiner_tree


def star_graph() -> DiGraph:
    """root -> a, b, c with distinct weights."""
    graph = DiGraph()
    graph.add_edge("root", "a", 1.0)
    graph.add_edge("root", "b", 2.0)
    graph.add_edge("root", "c", 4.0)
    return graph


class TestBasics:
    def test_single_group_single_node(self):
        graph = star_graph()
        result = steiner_tree(graph, [{"a"}])
        assert result.weight == 0.0
        assert result.root == "a"
        assert result.edges == ()

    def test_two_groups_star(self):
        result = steiner_tree(star_graph(), [{"a"}, {"b"}])
        assert result.root == "root"
        assert result.weight == 3.0
        assert set(result.edges) == {("root", "a"), ("root", "b")}

    def test_group_choice_picks_cheapest_member(self):
        result = steiner_tree(star_graph(), [{"a"}, {"b", "c"}])
        assert result.weight == 3.0  # chooses b over c

    def test_shared_path_counted_once(self):
        graph = DiGraph()
        graph.add_edge("r", "m", 5.0)
        graph.add_edge("m", "x", 1.0)
        graph.add_edge("m", "y", 1.0)
        result = steiner_tree(graph, [{"x"}, {"y"}], root="r")
        # 5 (shared) + 1 + 1, not 5+1+5+1.
        assert result.weight == 7.0

    def test_respects_direction(self):
        graph = DiGraph()
        graph.add_edge("a", "b", 1.0)  # no way back
        assert steiner_tree(graph, [{"a"}, {"b"}], root="b") is None
        result = steiner_tree(graph, [{"a"}, {"b"}], root="a")
        assert result.weight == 1.0

    def test_disconnected_returns_none(self):
        graph = DiGraph()
        graph.add_node("a")
        graph.add_node("b")
        assert steiner_tree(graph, [{"a"}, {"b"}]) is None

    def test_empty_group_returns_none(self):
        assert steiner_tree(star_graph(), [{"a"}, set()]) is None

    def test_no_groups_rejected(self):
        with pytest.raises(GraphError):
            steiner_tree(star_graph(), [])

    def test_unknown_member_rejected(self):
        with pytest.raises(GraphError):
            steiner_tree(star_graph(), [{"ghost"}])


@st.composite
def small_graphs_with_groups(draw):
    node_count = draw(st.integers(min_value=3, max_value=8))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(0, node_count - 1),
                st.integers(0, node_count - 1),
                st.floats(min_value=0.5, max_value=5.0, allow_nan=False),
            ),
            min_size=node_count,
            max_size=24,
        )
    )
    group_count = draw(st.integers(min_value=1, max_value=3))
    groups = [
        {draw(st.integers(0, node_count - 1))} for _ in range(group_count)
    ]
    return node_count, edges, groups


@settings(max_examples=40, deadline=None)
@given(small_graphs_with_groups())
def test_steiner_weight_bounded_by_path_sums(spec):
    """Property: the optimal tree weight never exceeds the sum of
    shortest-path distances from its root (the union-of-paths bound) and
    never goes below the largest single distance."""
    node_count, edges, groups = spec
    graph = DiGraph()
    for node in range(node_count):
        graph.add_node(node)
    for source, target, weight in edges:
        if source != target:
            graph.add_edge(source, target, weight)

    result = steiner_tree(graph, groups)
    if result is None:
        return
    distances = shortest_path_lengths(graph, result.root)
    per_group = []
    for group in groups:
        best = min(
            (distances[m] for m in group if m in distances), default=None
        )
        assert best is not None  # tree exists so every group reachable
        per_group.append(best)
    assert result.weight <= sum(per_group) + 1e-9
    assert result.weight >= max(per_group) - 1e-9


@settings(max_examples=40, deadline=None)
@given(small_graphs_with_groups())
def test_steiner_tree_structure_is_valid(spec):
    """Property: returned edges form a tree rooted at `root` covering
    at least one member of every group, and the weight adds up."""
    node_count, edges, groups = spec
    graph = DiGraph()
    for node in range(node_count):
        graph.add_node(node)
    for source, target, weight in edges:
        if source != target:
            graph.add_edge(source, target, weight)

    result = steiner_tree(graph, groups)
    if result is None:
        return
    children = {}
    for source, target in result.edges:
        assert graph.has_edge(source, target)
        assert target not in children, "node has two parents"
        children[target] = source
    # Every edge target reaches the root through parents.
    for target in children:
        seen = set()
        current = target
        while current != result.root:
            assert current not in seen
            seen.add(current)
            current = children[current]
    total = sum(graph.edge_weight(s, t) for s, t in result.edges)
    assert total == pytest.approx(result.weight)
    tree_nodes = set(result.nodes)
    for group in groups:
        assert tree_nodes & group
