"""The DBLP-scale synthetic bibliography: determinism, shape, skew."""

from __future__ import annotations

import pytest

from repro.datasets import (
    DEMO_QUERY_SETS,
    synth_bibliography,
    synth_bibliography_base,
    synth_bibliography_records,
)


class TestSynthRecords:
    def test_deterministic(self):
        first = list(synth_bibliography_records(120, seed=9))
        second = list(synth_bibliography_records(120, seed=9))
        assert first == second

    def test_seed_changes_output(self):
        assert list(synth_bibliography_records(120, seed=9)) != list(
            synth_bibliography_records(120, seed=10)
        )

    def test_fk_safe_order(self):
        """Every FK target precedes its referrer in the stream, so any
        chunk-prefix of the stream is a consistent database."""
        authors, papers = set(), set()
        for table, values in synth_bibliography_records(150, seed=3):
            if table == "author":
                authors.add(values[0])
            elif table == "paper":
                papers.add(values[0])
            elif table == "writes":
                assert values[0] in authors and values[1] in papers
            elif table == "cites":
                assert values[0] in papers and values[1] in papers
            else:  # pragma: no cover - defence
                pytest.fail(f"unknown table {table!r}")

    def test_in_degree_cap_honoured(self):
        cap = 10
        cited = {}
        for table, values in synth_bibliography_records(
            400, seed=2, in_degree_cap=cap
        ):
            if table == "cites":
                cited[values[1]] = cited.get(values[1], 0) + 1
        assert cited, "no citations generated"
        assert max(cited.values()) <= cap

    def test_citations_are_skewed_and_deduped(self):
        """Zipf-ish hot list: a small head of papers soaks up a large
        share of citations, and no (citing, cited) pair repeats."""
        pairs = []
        for table, values in synth_bibliography_records(600, seed=7):
            if table == "cites":
                pairs.append(tuple(values))
        assert len(pairs) == len(set(pairs))
        cited = {}
        for _citing, target in pairs:
            cited[target] = cited.get(target, 0) + 1
        counts = sorted(cited.values(), reverse=True)
        head = sum(counts[: max(1, len(counts) // 10)])
        assert head / sum(counts) > 0.3


class TestSynthDatabase:
    def test_build_counts_and_integrity(self):
        database, n_records = synth_bibliography(300, seed=7)
        total = sum(
            len(database.table(name))
            for name in ("author", "paper", "writes", "cites")
        )
        assert total == n_records
        assert len(database.table("paper")) == 300
        database.check_integrity()

    def test_empty_build_is_just_the_schema(self):
        database, n_records = synth_bibliography(0)
        assert n_records == 0
        assert all(
            len(database.table(name)) == 0
            for name in ("author", "paper", "writes", "cites")
        )

    def test_base_matches_empty_build(self):
        base = synth_bibliography_base()
        assert sorted(base.table_names) == sorted(
            synth_bibliography(0)[0].table_names
        )

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            synth_bibliography(-1)
        with pytest.raises(ValueError):
            list(synth_bibliography_records(5, in_degree_cap=0))

    def test_demo_queries_registered_and_answerable(self):
        from repro.core.incremental import IncrementalBANKS

        queries = DEMO_QUERY_SETS["synth_bibliography"]
        assert len(queries) >= 5
        facade = IncrementalBANKS(synth_bibliography(250, seed=7)[0])
        for query in queries:
            assert facade.search(query, max_results=3), query
