"""Tests for the dataset generators: determinism, anecdote structure."""


from repro.datasets import (
    generate_bibliography,
    generate_thesis_db,
    generate_tpcd,
    generate_university,
)


class TestBibliography:
    def test_deterministic(self):
        db1, _ = generate_bibliography(papers=50, authors=30, seed=5)
        db2, _ = generate_bibliography(papers=50, authors=30, seed=5)
        rows1 = [row.values for row in db1.all_rows()]
        rows2 = [row.values for row in db2.all_rows()]
        assert rows1 == rows2

    def test_seed_changes_output(self):
        db1, _ = generate_bibliography(papers=50, authors=30, seed=5)
        db2, _ = generate_bibliography(papers=50, authors=30, seed=6)
        rows1 = [row.values for row in db1.all_rows()]
        rows2 = [row.values for row in db2.all_rows()]
        assert rows1 != rows2

    def test_referential_integrity(self):
        database, _ = generate_bibliography(papers=60, authors=40)
        database.check_integrity()  # raises on any dangling FK

    def test_anecdote_entities_planted(self, bibliography_session):
        database, anecdotes = bibliography_session
        assert database.row(anecdotes.c_mohan)["name"] == "C. Mohan"
        assert database.row(anecdotes.stonebraker)["name"] == (
            "Michael Stonebraker"
        )
        title = database.row(anecdotes.chakrabarti_sd98)["title"]
        assert "Temporal" in title

    def test_stonebraker_is_most_prolific(self, bibliography_session):
        database, anecdotes = bibliography_session
        writes = {}
        for row in database.table("writes").scan():
            writes[row["author_id"]] = writes.get(row["author_id"], 0) + 1
        assert max(writes, key=writes.get) == "MichaelSt"

    def test_classics_most_cited(self, bibliography_session):
        database, anecdotes = bibliography_session
        classic_id = database.row(anecdotes.transaction_classic)["paper_id"]
        cited_counts = {}
        for row in database.table("cites").scan():
            cited_counts[row["cited"]] = cited_counts.get(row["cited"], 0) + 1
        assert max(cited_counts, key=cited_counts.get) == classic_id

    def test_seltzer_and_sunita_not_coauthors(self, bibliography_session):
        database, _ = bibliography_session
        papers_of = {}
        for row in database.table("writes").scan():
            papers_of.setdefault(row["author_id"], set()).add(row["paper_id"])
        assert not (papers_of["MargoS"] & papers_of["SunitaS"])
        assert papers_of["MargoS"] & papers_of["MichaelSt"]
        assert papers_of["SunitaS"] & papers_of["MichaelSt"]

    def test_anecdotes_can_be_disabled(self):
        database, anecdotes = generate_bibliography(
            papers=20, authors=10, include_anecdotes=False
        )
        assert anecdotes.c_mohan is None
        names = {row["name"] for row in database.table("author").scan()}
        assert "C. Mohan" not in names

    def test_writes_by_paper_mapping(self, bibliography_session):
        database, anecdotes = bibliography_session
        key = (anecdotes.soumen, anecdotes.chakrabarti_sd98)
        writes_rid = anecdotes.writes_by_paper[key]
        row = database.row(writes_rid)
        assert row["author_id"] == "SoumenC"
        assert row["paper_id"] == "ChakrabartiSD98"


class TestThesis:
    def test_integrity_and_determinism(self):
        db1, _ = generate_thesis_db(students_per_department=10, seed=2)
        db2, _ = generate_thesis_db(students_per_department=10, seed=2)
        db1.check_integrity()
        assert [r.values for r in db1.all_rows()] == [
            r.values for r in db2.all_rows()
        ]

    def test_anecdotes(self, thesis_session):
        database, anecdotes = thesis_session
        dept = database.row(anecdotes.cse_department)
        assert dept["name"] == "Computer Science and Engineering"
        thesis_row = database.row(anecdotes.aditya_thesis)
        assert thesis_row["advisor"] == "FSUD"
        assert len(anecdotes.computer_engineering_theses) == 3

    def test_department_is_a_hub(self, thesis_session):
        database, anecdotes = thesis_session
        # Students + faculty reference CSE: clearly more than any thesis.
        assert database.indegree(anecdotes.cse_department) > 20
        for thesis_rid in anecdotes.computer_engineering_theses:
            assert database.indegree(thesis_rid) == 0


class TestTpcd:
    def test_integrity(self):
        database, _ = generate_tpcd(orders=30)
        database.check_integrity()

    def test_popular_part_has_more_orders(self):
        database, anecdotes = generate_tpcd()
        assert database.indegree(anecdotes.popular_steel_part) > (
            database.indegree(anecdotes.unpopular_steel_part)
        )


class TestUniversity:
    def test_integrity(self):
        database, _ = generate_university(students=30, courses=5)
        database.check_integrity()

    def test_hub_structure(self):
        database, anecdotes = generate_university()
        # The department is a hub; the shared course is tiny.
        assert database.indegree(anecdotes.big_department) > 100
        assert database.indegree(anecdotes.shared_course) == 2
