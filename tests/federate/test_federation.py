"""Tests for multi-database federation: link specs, resolution, the
unified graph, and cross-database keyword search."""

from __future__ import annotations

import pytest

from repro.errors import FederationError
from repro.federate import (
    ExternalLink,
    FederatedBanks,
    Federation,
    TupleLink,
)
from repro.relational import Database, execute_script


def make_publications() -> Database:
    database = Database("pubs")
    execute_script(
        database,
        """
        CREATE TABLE author (aid TEXT PRIMARY KEY, name TEXT NOT NULL);
        CREATE TABLE paper (pid TEXT PRIMARY KEY, title TEXT NOT NULL);
        CREATE TABLE writes (
            aid TEXT NOT NULL REFERENCES author(aid),
            pid TEXT NOT NULL REFERENCES paper(pid)
        );
        INSERT INTO author VALUES ('a1', 'sudarshan');
        INSERT INTO author VALUES ('a2', 'widom');
        INSERT INTO paper VALUES ('p1', 'temporal deductive databases');
        INSERT INTO paper VALUES ('p2', 'active database systems');
        INSERT INTO writes VALUES ('a1', 'p1');
        INSERT INTO writes VALUES ('a2', 'p2');
        """,
    )
    return database


def make_teaching() -> Database:
    database = Database("teaching")
    execute_script(
        database,
        """
        CREATE TABLE instructor (iid TEXT PRIMARY KEY, name TEXT NOT NULL);
        CREATE TABLE course (
            cid TEXT PRIMARY KEY,
            title TEXT NOT NULL,
            iid TEXT REFERENCES instructor(iid)
        );
        INSERT INTO instructor VALUES ('i1', 'sudarshan');
        INSERT INTO instructor VALUES ('i2', 'hopper');
        INSERT INTO course VALUES ('c1', 'database systems', 'i1');
        INSERT INTO course VALUES ('c2', 'compilers', 'i2');
        """,
    )
    return database


@pytest.fixture
def federation():
    fed = Federation("campus")
    fed.register("pubs", make_publications())
    fed.register("teaching", make_teaching())
    fed.add_link(
        ExternalLink(
            name="same-person",
            source_db="teaching",
            source_table="instructor",
            source_column="name",
            target_db="pubs",
            target_table="author",
            target_column="name",
        )
    )
    return fed


class TestLinkSpecs:
    def test_nonpositive_weight_rejected(self):
        with pytest.raises(FederationError):
            ExternalLink("x", "a", "t", "c", "b", "u", "d", weight=0.0)

    def test_self_reference_rejected(self):
        with pytest.raises(FederationError):
            ExternalLink("x", "a", "t", "c", "a", "t", "c")

    def test_tuple_link_self_reference_rejected(self):
        with pytest.raises(FederationError):
            TupleLink("a", ("t", 1), "a", ("t", 1))

    def test_tuple_link_nodes(self):
        link = TupleLink("a", ("t", 1), "b", ("u", 2), weight=2.0)
        assert link.source_node == ("a", "t", 1)
        assert link.target_node == ("b", "u", 2)


class TestRegistration:
    def test_duplicate_member_rejected(self):
        fed = Federation()
        fed.register("one", make_publications())
        with pytest.raises(FederationError):
            fed.register("one", make_teaching())

    def test_unknown_member_rejected(self):
        fed = Federation()
        with pytest.raises(FederationError):
            fed.member("ghost")

    def test_link_with_unknown_table_rejected(self, federation):
        with pytest.raises(Exception):
            federation.add_link(
                ExternalLink(
                    "bad", "pubs", "ghost", "x", "teaching", "course", "cid"
                )
            )

    def test_link_with_unknown_column_rejected(self, federation):
        with pytest.raises(Exception):
            federation.add_link(
                ExternalLink(
                    "bad", "pubs", "author", "ghost",
                    "teaching", "course", "cid",
                )
            )

    def test_tuple_link_with_missing_tuple_rejected(self, federation):
        with pytest.raises(FederationError):
            federation.add_tuple_link(
                TupleLink("pubs", ("author", 99), "teaching", ("course", 0))
            )

    def test_empty_federation_cannot_build(self):
        with pytest.raises(FederationError):
            Federation().build_graph()


class TestLinkResolution:
    def test_value_match_resolves(self, federation):
        resolved = federation.resolve_links()
        pairs = {(source, target) for source, target, _w in resolved}
        assert (
            ("teaching", "instructor", 0),
            ("pubs", "author", 0),
        ) in pairs

    def test_unmatched_values_do_not_resolve(self, federation):
        resolved = federation.resolve_links()
        sources = {source for source, _target, _w in resolved}
        # 'hopper' has no matching author.
        assert ("teaching", "instructor", 1) not in sources

    def test_tuple_links_pass_through(self, federation):
        federation.add_tuple_link(
            TupleLink("pubs", ("paper", 0), "teaching", ("course", 0), 3.0)
        )
        resolved = federation.resolve_links()
        assert (("pubs", "paper", 0), ("teaching", "course", 0), 3.0) in resolved


class TestUnifiedGraph:
    def test_member_nodes_rekeyed(self, federation):
        graph, stats = federation.build_graph()
        assert graph.has_node(("pubs", "author", 0))
        assert graph.has_node(("teaching", "course", 0))
        total = (
            federation.member("pubs").total_rows()
            + federation.member("teaching").total_rows()
        )
        assert stats.num_nodes == total

    def test_member_edges_preserved(self, federation):
        graph, _ = federation.build_graph()
        # writes -> author FK edge inside pubs.
        assert graph.has_edge(("pubs", "writes", 0), ("pubs", "author", 0))

    def test_cross_edges_both_directions(self, federation):
        graph, _ = federation.build_graph()
        source = ("teaching", "instructor", 0)
        target = ("pubs", "author", 0)
        assert graph.has_edge(source, target)
        assert graph.has_edge(target, source)

    def test_cross_link_confers_prestige(self, federation):
        graph, _ = federation.build_graph()
        linked = graph.node_weight(("pubs", "author", 0))
        unlinked = graph.node_weight(("pubs", "author", 1))
        assert linked > unlinked

    def test_cross_backward_edge_scales_with_link_indegree(self):
        """Two instructors with the same name linking to one author make
        the author's backward cross edges cost 2."""
        fed = Federation()
        pubs = make_publications()
        teaching = make_teaching()
        execute_script(
            teaching, "INSERT INTO instructor VALUES ('i3', 'sudarshan')"
        )
        fed.register("pubs", pubs)
        fed.register("teaching", teaching)
        fed.add_link(
            ExternalLink(
                "same-person", "teaching", "instructor", "name",
                "pubs", "author", "name",
            )
        )
        graph, _ = fed.build_graph()
        author = ("pubs", "author", 0)
        instructor = ("teaching", "instructor", 0)
        assert graph.edge_weight(instructor, author) == 1.0
        assert graph.edge_weight(author, instructor) == 2.0


class TestFederatedSearch:
    @pytest.fixture
    def banks(self, federation):
        return FederatedBanks(federation)

    def test_cross_database_answer(self, banks):
        """'temporal course' can only connect through the external link:
        the paper lives in pubs, the course in teaching."""
        answers = banks.search("temporal database")
        assert answers
        cross = [a for a in answers if a.is_cross_database()]
        assert cross, "no cross-database answer found"
        databases = cross[0].databases()
        assert databases == {"pubs", "teaching"}

    def test_single_database_answers_still_work(self, banks):
        answers = banks.search("active widom")
        assert answers
        assert answers[0].databases() == {"pubs"}

    def test_answer_trees_validate(self, banks):
        for answer in banks.search("sudarshan database", max_results=10):
            answer.tree.validate()

    def test_link_tables_excluded_as_roots(self, banks):
        for answer in banks.search("sudarshan temporal", max_results=10):
            assert answer.root[1] != "writes"

    def test_node_labels_carry_database_prefix(self, banks):
        answers = banks.search("temporal")
        rendering = answers[0].render()
        assert "pubs/" in rendering

    def test_metadata_matching_across_members(self, banks):
        """'course' matches the teaching.course relation name."""
        node_sets = banks.resolve("course")
        assert any(node[0] == "teaching" for node in node_sets[0])

    def test_unknown_keyword_empty(self, banks):
        assert banks.search("zzzneverseen") == []

    def test_repr(self, banks, federation):
        assert "FederatedBanks" in repr(banks)
        assert "Federation" in repr(federation)
