"""Tests for display templates and SVG charts."""

import pytest

from repro.browse.charts import bar_chart, line_chart, pie_chart
from repro.browse.templates import TemplateRegistry
from repro.errors import BrowseError


@pytest.fixture
def registry(thesis_session):
    database, _anecdotes = thesis_session
    return TemplateRegistry(database)


class TestRegistry:
    def test_save_load_roundtrip(self, registry):
        registry.save("t1", "crosstab", {"table": "student",
                                         "row": "student.dept_id",
                                         "column": "student.prog_id"})
        instance = registry.load("t1")
        assert instance.kind == "crosstab"
        assert instance.spec["table"] == "student"

    def test_overwrite_replaces(self, registry):
        registry.save("t2", "chart", {"table": "student",
                                      "label_column": "student.dept_id"})
        registry.save("t2", "chart", {"table": "faculty",
                                      "label_column": "faculty.dept_id"})
        assert registry.load("t2").spec["table"] == "faculty"

    def test_unknown_kind_rejected(self, registry):
        with pytest.raises(BrowseError):
            registry.save("bad", "hologram", {})

    def test_unknown_name_rejected(self, registry):
        with pytest.raises(BrowseError):
            registry.load("missing-template")

    def test_templates_live_in_the_database(self, registry):
        registry.save("t3", "folder", {"table": "student",
                                       "group_columns": ["student.dept_id"]})
        rows = list(registry.database.table("_banks_templates").scan())
        assert any(row["name"] == "t3" for row in rows)


class TestRendering:
    def test_crosstab_counts(self, registry):
        registry.save("xt", "crosstab", {"table": "student",
                                         "row": "student.dept_id",
                                         "column": "student.prog_id"})
        html = registry.render("xt")
        assert "CSE" in html and "total" in html

    def test_hierarchy_drilldown(self, registry):
        registry.save(
            "hier", "groupby",
            {"table": "student",
             "group_columns": ["student.dept_id", "student.prog_id"]},
        )
        top = registry.render("hier")
        assert "CSE" in top
        level2 = registry.render("hier", ["CSE"])
        assert "MTECH" in level2 or "PHD" in level2
        leaves = registry.render("hier", ["CSE", "MTECH"])
        assert "<table>" in leaves

    def test_folder_view_marks_folders(self, registry):
        registry.save(
            "fold", "folder",
            {"table": "faculty", "group_columns": ["faculty.dept_id"]},
        )
        assert "📁" in registry.render("fold")

    def test_chart_template_links(self, registry):
        registry.save(
            "chart", "chart",
            {"table": "student", "label_column": "student.dept_id",
             "chart": "bar"},
        )
        html = registry.render("chart")
        assert "<svg" in html
        assert "/table/student?where=" in html

    def test_template_composition(self, registry):
        registry.save(
            "inner", "groupby",
            {"table": "student", "group_columns": ["student.dept_id"]},
        )
        registry.save(
            "outer", "chart",
            {"table": "student", "label_column": "student.dept_id",
             "chart": "pie", "link_to": "inner"},
        )
        html = registry.render("outer")
        assert "/template/inner?path=" in html


class TestCharts:
    DATA = [("a", 3.0, "/x"), ("b", 1.0, None), ("c", 2.0, "/y")]

    def test_bar_chart_links_and_titles(self):
        svg = bar_chart(self.DATA)
        assert svg.count("<rect") == 3
        assert '<a href="/x">' in svg
        assert "<title>a: 3</title>" in svg

    def test_line_chart(self):
        svg = line_chart(self.DATA)
        assert "<polyline" in svg
        assert svg.count("<circle") == 3

    def test_pie_chart(self):
        svg = pie_chart(self.DATA)
        assert svg.count("<path") == 3

    def test_pie_chart_single_full_slice(self):
        svg = pie_chart([("all", 5.0, None)])
        assert "<circle" in svg

    def test_empty_series_rejected(self):
        with pytest.raises(BrowseError):
            bar_chart([])
        with pytest.raises(BrowseError):
            pie_chart([("zero", 0.0, None)])

    def test_labels_escaped(self):
        svg = bar_chart([("<evil>", 1.0, None)])
        assert "<evil>" not in svg
