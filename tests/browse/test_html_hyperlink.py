"""Tests for the HTML builder and the URL / browse-state scheme."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.browse.html import el, escape, link, page
from repro.browse.hyperlink import BrowseState, row_url, search_url, table_url
from repro.errors import BrowseError


class TestEscape:
    def test_basic_entities(self):
        assert escape("<b>&\"'") == "&lt;b&gt;&amp;&quot;&#x27;"

    def test_plain_text_untouched(self):
        assert escape("hello world") == "hello world"

    @settings(max_examples=60, deadline=None)
    @given(st.text(max_size=80))
    def test_no_raw_specials_survive(self, text):
        escaped = escape(text)
        assert "<" not in escaped
        assert ">" not in escaped


class TestElements:
    def test_render_nested(self):
        fragment = el("div", {"class": "x"}, el("b", None, "hi"), "there")
        assert fragment.render() == '<div class="x"><b>hi</b>there</div>'

    def test_attribute_values_escaped(self):
        fragment = el("a", {"href": 'x"onmouseover="evil'})
        assert 'onmouseover="evil"' not in fragment.render()

    def test_content_escaped(self):
        assert "<script>" not in el("p", None, "<script>").render()

    def test_void_elements(self):
        assert el("br").render() == "<br/>"

    def test_page_document(self):
        document = page("Title", el("p", None, "body"))
        assert document.startswith("<!DOCTYPE html>")
        assert "<title>Title</title>" in document

    def test_link(self):
        assert link("/x", "y").render() == '<a href="/x">y</a>'


class TestBrowseState:
    def test_round_trip(self):
        state = (
            BrowseState("student")
            .with_drop("student.name")
            .with_selection("student.dept_id", "=", "CSE")
            .with_join(0, "f")
            .with_group_by("student.prog_id")
            .with_page(3)
        )
        # group_by reset the page; set it again for the round trip.
        state = state.with_page(3)
        parsed = BrowseState.from_query("student", state.to_query())
        assert parsed == state

    def test_default_state_minimal_url(self):
        assert BrowseState("author").url() == "/table/author"

    def test_sort_toggles_direction(self):
        state = BrowseState("t").with_sort("c")
        assert state.sort == "c"
        assert state.with_sort("c").sort == "-c"

    def test_selection_resets_page(self):
        state = BrowseState("t").with_page(9).with_selection("c", "=", "v")
        assert state.page == 1

    def test_bad_parameters_rejected(self):
        with pytest.raises(BrowseError):
            BrowseState.from_query("t", "where=only-two:parts")
        with pytest.raises(BrowseError):
            BrowseState.from_query("t", "join=notanumber:f")
        with pytest.raises(BrowseError):
            BrowseState.from_query("t", "page=0")

    def test_urls(self):
        assert row_url(("paper", 7)) == "/row/paper/7"
        assert table_url("a b") == "/table/a%20b"
        assert search_url("soumen sunita") == "/search?q=soumen+sunita"
