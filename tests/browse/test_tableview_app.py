"""Tests for table/tuple pages, the schema browser, and the WSGI app."""

import pytest

from repro.browse.app import BrowseApp
from repro.browse.hyperlink import BrowseState
from repro.browse.schema_browser import render_schema
from repro.browse.tableview import build_relation, render_row_page, render_table_page
from repro.relational import Database, execute_script


@pytest.fixture
def app(figure1_banks):
    return BrowseApp(figure1_banks)


class TestBuildRelation:
    def test_plain_table(self, figure1_db):
        relation = build_relation(figure1_db, BrowseState("author"))
        assert len(relation) == 3

    def test_join_selection_drop_sort(self, figure1_db):
        state = (
            BrowseState("writes")
            .with_join(0, "f")  # writes -> author
            .with_selection("author.name", "=", "Byron Dom")
            .with_drop("writes.paper_id")
            .with_sort("author.name")
        )
        relation = build_relation(figure1_db, state)
        assert len(relation) == 1
        assert "writes.paper_id" not in relation.columns

    def test_reverse_join(self, figure1_db):
        state = BrowseState("author").with_join(0, "r")
        # author has no FKs: join index out of range.
        from repro.errors import BrowseError

        with pytest.raises(BrowseError):
            build_relation(figure1_db, state)

    def test_integer_selection_coerced_from_url(self):
        database = Database("n")
        execute_script(
            database,
            "CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER);"
            "INSERT INTO t VALUES (1, 10); INSERT INTO t VALUES (2, 20);",
        )
        state = BrowseState("t").with_selection("t.v", ">", "15")
        relation = build_relation(database, state)
        assert len(relation) == 1


class TestPages:
    def test_table_page_has_controls_and_links(self, figure1_db):
        html = render_table_page(figure1_db, BrowseState("writes"))
        assert "[drop]" in html
        assert "[sort]" in html
        assert "[group]" in html
        assert "/row/writes/0" in html
        assert "[join referenced]" in html

    def test_grouped_page(self, figure1_db):
        state = (
            BrowseState("writes")
            .with_group_by("writes.paper_id")
            .with_expand("ChakrabartiSD98")
        )
        html = render_table_page(figure1_db, state)
        assert "(3 rows)" in html
        assert "[ungroup]" in html

    def test_row_page_shows_references_both_ways(self, figure1_db):
        html = render_row_page(figure1_db, ("author", 0))
        assert "Referenced by" in html
        assert "/row/writes/0" in html
        writes_html = render_row_page(figure1_db, ("writes", 0))
        assert "References" in writes_html
        assert "/row/author/0" in writes_html

    def test_schema_page(self, figure1_db):
        html = render_schema(figure1_db)
        assert "FK -&gt; author" in html or "FK -> author" in html
        assert "writes" in html and "PK" in html

    def test_hostile_values_escaped(self):
        database = Database("x")
        execute_script(
            database,
            "CREATE TABLE t (id TEXT PRIMARY KEY, v TEXT);",
        )
        database.insert("t", ["<script>alert(1)</script>", "<img onerror=x>"])
        html = render_table_page(database, BrowseState("t"))
        assert "<script>alert" not in html
        assert "<img onerror" not in html


class TestApp:
    def test_home_lists_tables(self, app):
        status, html = app.handle("/", "")
        assert status == "200 OK"
        for table in ("author", "paper", "writes", "cites"):
            assert table in html

    def test_search_route(self, app):
        status, html = app.handle("/search", "q=soumen+sunita")
        assert status == "200 OK"
        assert "relevance" in html
        assert "Soumen Chakrabarti" in html

    def test_search_empty_query(self, app):
        status, html = app.handle("/search", "q=")
        assert "Empty query" in html

    def test_unknown_routes_404(self, app):
        assert app.handle("/nope", "")[0] == "404 Not Found"
        assert app.handle("/table/ghost", "")[0] == "404 Not Found"
        assert app.handle("/row/author/999", "")[0] == "404 Not Found"
        assert app.handle("/row/author/NaN", "")[0] == "404 Not Found"

    def test_wsgi_contract(self, app):
        captured = {}

        def start_response(status, headers):
            captured["status"] = status
            captured["headers"] = dict(headers)

        body = b"".join(
            app({"PATH_INFO": "/", "QUERY_STRING": ""}, start_response)
        )
        assert captured["status"] == "200 OK"
        assert captured["headers"]["Content-Type"].startswith("text/html")
        assert int(captured["headers"]["Content-Length"]) == len(body)
