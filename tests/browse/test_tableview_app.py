"""Tests for table/tuple pages, the schema browser, and the WSGI app."""

import pytest

from repro.browse.app import BrowseApp
from repro.browse.hyperlink import BrowseState
from repro.browse.schema_browser import render_schema
from repro.browse.tableview import build_relation, render_row_page, render_table_page
from repro.relational import Database, execute_script


@pytest.fixture
def app(figure1_banks):
    return BrowseApp(figure1_banks)


class TestBuildRelation:
    def test_plain_table(self, figure1_db):
        relation = build_relation(figure1_db, BrowseState("author"))
        assert len(relation) == 3

    def test_join_selection_drop_sort(self, figure1_db):
        state = (
            BrowseState("writes")
            .with_join(0, "f")  # writes -> author
            .with_selection("author.name", "=", "Byron Dom")
            .with_drop("writes.paper_id")
            .with_sort("author.name")
        )
        relation = build_relation(figure1_db, state)
        assert len(relation) == 1
        assert "writes.paper_id" not in relation.columns

    def test_reverse_join(self, figure1_db):
        state = BrowseState("author").with_join(0, "r")
        # author has no FKs: join index out of range.
        from repro.errors import BrowseError

        with pytest.raises(BrowseError):
            build_relation(figure1_db, state)

    def test_integer_selection_coerced_from_url(self):
        database = Database("n")
        execute_script(
            database,
            "CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER);"
            "INSERT INTO t VALUES (1, 10); INSERT INTO t VALUES (2, 20);",
        )
        state = BrowseState("t").with_selection("t.v", ">", "15")
        relation = build_relation(database, state)
        assert len(relation) == 1


class TestPages:
    def test_table_page_has_controls_and_links(self, figure1_db):
        html = render_table_page(figure1_db, BrowseState("writes"))
        assert "[drop]" in html
        assert "[sort]" in html
        assert "[group]" in html
        assert "/row/writes/0" in html
        assert "[join referenced]" in html

    def test_grouped_page(self, figure1_db):
        state = (
            BrowseState("writes")
            .with_group_by("writes.paper_id")
            .with_expand("ChakrabartiSD98")
        )
        html = render_table_page(figure1_db, state)
        assert "(3 rows)" in html
        assert "[ungroup]" in html

    def test_row_page_shows_references_both_ways(self, figure1_db):
        html = render_row_page(figure1_db, ("author", 0))
        assert "Referenced by" in html
        assert "/row/writes/0" in html
        writes_html = render_row_page(figure1_db, ("writes", 0))
        assert "References" in writes_html
        assert "/row/author/0" in writes_html

    def test_schema_page(self, figure1_db):
        html = render_schema(figure1_db)
        assert "FK -&gt; author" in html or "FK -> author" in html
        assert "writes" in html and "PK" in html

    def test_hostile_values_escaped(self):
        database = Database("x")
        execute_script(
            database,
            "CREATE TABLE t (id TEXT PRIMARY KEY, v TEXT);",
        )
        database.insert("t", ["<script>alert(1)</script>", "<img onerror=x>"])
        html = render_table_page(database, BrowseState("t"))
        assert "<script>alert" not in html
        assert "<img onerror" not in html


class TestApp:
    def test_home_lists_tables(self, app):
        status, html = app.handle("/", "")
        assert status == "200 OK"
        for table in ("author", "paper", "writes", "cites"):
            assert table in html

    def test_search_route(self, app):
        status, html = app.handle("/search", "q=soumen+sunita")
        assert status == "200 OK"
        assert "relevance" in html
        assert "Soumen Chakrabarti" in html

    def test_search_empty_query(self, app):
        status, html = app.handle("/search", "q=")
        assert "Empty query" in html

    def test_unknown_routes_404(self, app):
        assert app.handle("/nope", "")[0] == "404 Not Found"
        assert app.handle("/table/ghost", "")[0] == "404 Not Found"
        assert app.handle("/row/author/999", "")[0] == "404 Not Found"
        assert app.handle("/row/author/NaN", "")[0] == "404 Not Found"

    def test_wsgi_contract(self, app):
        captured = {}

        def start_response(status, headers):
            captured["status"] = status
            captured["headers"] = dict(headers)

        body = b"".join(
            app({"PATH_INFO": "/", "QUERY_STRING": ""}, start_response)
        )
        assert captured["status"] == "200 OK"
        assert captured["headers"]["Content-Type"].startswith("text/html")
        assert int(captured["headers"]["Content-Length"]) == len(body)


class TestMutateEndpoint:
    def live_app(self, figure1_db):
        from repro.core.incremental import IncrementalBANKS
        from repro.serve import EngineConfig, QueryEngine

        banks = IncrementalBANKS(figure1_db)
        engine = QueryEngine(banks, EngineConfig(workers=1))
        return BrowseApp(banks, engine=engine), engine

    def test_read_only_deployment_reports_itself(self, figure1_banks):
        app = BrowseApp(figure1_banks)
        status, html = app.handle("/mutate", "op=insert&table=paper&v=x&v=y")
        assert status == "200 OK"
        assert "read-only" in html

    def test_read_only_flag_refuses_writes_over_mutable_facade(
        self, figure1_db
    ):
        """A WAL replica serves a mutable IncrementalBANKS, but its
        state is owned by the primary's log: read_only=True must
        refuse /mutate even though a writer exists."""
        app, engine = self.live_app(figure1_db)
        app.read_only = True
        try:
            status, html = app.handle(
                "/mutate", "op=insert&table=paper&v=x&v=y"
            )
            assert status == "200 OK"
            assert "read-only" in html
            assert engine.snapshots.version == 0  # nothing published
        finally:
            engine.stop()

    def test_insert_through_engine_bumps_epoch(self, figure1_db):
        app, engine = self.live_app(figure1_db)
        try:
            status, html = app.handle(
                "/mutate",
                "op=insert&table=paper&v=NewP99&v=Epoch+Based+Reclamation",
            )
            assert status == "200 OK"
            assert "inserted paper:" in html
            assert "epoch: 1" in html
            assert engine.snapshots.version == 1
            # The published version is what /search now reads.
            status, html = app.handle("/search", "q=reclamation")
            assert "Epoch Based Reclamation" in html
        finally:
            engine.stop()

    def test_update_and_delete_round_trip(self, figure1_db):
        app, engine = self.live_app(figure1_db)
        try:
            _status, html = app.handle(
                "/mutate", "op=insert&table=paper&v=TmpP&v=Doomed+Title"
            )
            rid = html.split("inserted paper:")[1].split("<")[0].strip()
            _status, html = app.handle(
                "/mutate",
                f"op=update&table=paper&rid={rid}&set=title%3DRenamed+Title",
            )
            assert f"updated paper:{rid}" in html
            _status, html = app.handle(
                "/mutate", f"op=delete&table=paper&rid={rid}"
            )
            assert f"deleted paper:{rid}" in html
            assert engine.snapshots.version == 3
        finally:
            engine.stop()

    def test_malformed_requests_render_errors(self, figure1_db):
        app, engine = self.live_app(figure1_db)
        try:
            for query_string in (
                "",
                "op=explode",
                "op=insert&table=paper",
                "op=update&table=paper&rid=0",
                "op=delete&table=ghost&rid=0",
            ):
                status, html = app.handle("/mutate", query_string)
                assert status == "200 OK"
                assert "Error" in html or "needs" in html
            assert engine.snapshots.version == 0
        finally:
            engine.stop()

    def test_shard_router_mutations_via_endpoint(self, figure1_db):
        from repro.shard import ShardRouter

        router = ShardRouter(figure1_db, shards=2, backend="thread")
        app = BrowseApp(router, engine=router)
        with router:
            status, html = app.handle(
                "/mutate",
                "op=insert&table=paper&v=ShardP&v=Routed+Mutation+Study",
            )
            assert status == "200 OK"
            assert "inserted paper:" in html
            assert "epoch: 1" in html
            status, html = app.handle("/shards", "")
            assert "epoch: 1" in html
            assert "1 routed mutation(s)" in html
            status, html = app.handle("/search", "q=routed+mutation")
            assert "Routed Mutation Study" in html
