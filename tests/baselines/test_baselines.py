"""Tests for the Sec. 6 related-system baselines and the comparison
harness — each baseline must exhibit exactly the limitation the paper
attributes to it."""

from __future__ import annotations

import pytest

from repro.baselines import (
    DataSpotSearch,
    MragyatiSearch,
    ProximitySearch,
    compare_systems,
)
from repro.baselines.compare import format_comparison
from repro.baselines.dataspot import build_hyperbase
from repro.baselines.goldman import bond
from repro.datasets import generate_bibliography
from repro.eval.workload import bibliography_workload
from repro.relational import Database, execute_script


@pytest.fixture(scope="module")
def small_biblio():
    database, anecdotes = generate_bibliography(papers=60, authors=40, seed=9)
    return database, anecdotes


@pytest.fixture
def tiny_db():
    """author/paper/writes with one co-authored paper and one hub author."""
    database = Database("tiny")
    execute_script(
        database,
        """
        CREATE TABLE author (aid TEXT PRIMARY KEY, name TEXT NOT NULL);
        CREATE TABLE paper (pid TEXT PRIMARY KEY, title TEXT NOT NULL);
        CREATE TABLE writes (
            aid TEXT NOT NULL REFERENCES author(aid),
            pid TEXT NOT NULL REFERENCES paper(pid)
        );
        INSERT INTO author VALUES ('a1', 'ada lovelace');
        INSERT INTO author VALUES ('a2', 'alan turing');
        INSERT INTO author VALUES ('a3', 'grace hopper');
        INSERT INTO paper VALUES ('p1', 'computing machinery');
        INSERT INTO paper VALUES ('p2', 'analytical engines');
        INSERT INTO writes VALUES ('a1', 'p1');
        INSERT INTO writes VALUES ('a2', 'p1');
        INSERT INTO writes VALUES ('a1', 'p2');
        INSERT INTO writes VALUES ('a3', 'p2');
        """,
    )
    return database


class TestHyperbase:
    def test_symmetric_edges(self, tiny_db):
        graph = build_hyperbase(tiny_db)
        for source, target, weight in graph.edges():
            assert weight == 1.0
            assert graph.has_edge(target, source)
            assert graph.edge_weight(target, source) == 1.0

    def test_uniform_node_weights(self, tiny_db):
        graph = build_hyperbase(tiny_db)
        assert {graph.node_weight(node) for node in graph.nodes()} == {1.0}

    def test_node_per_tuple(self, tiny_db):
        graph = build_hyperbase(tiny_db)
        assert graph.num_nodes == tiny_db.total_rows()


class TestDataSpot:
    def test_finds_coauthorship_tree(self, tiny_db):
        system = DataSpotSearch(tiny_db)
        answers = system.search("ada alan")
        assert answers
        top_nodes = {node for node in answers[0].tree.nodes}
        # The connection runs through the shared paper p1.
        assert ("paper", 0) in top_nodes

    def test_answers_are_valid_trees(self, small_biblio):
        database, _ = small_biblio
        system = DataSpotSearch(database)
        for answer in system.search("soumen sunita"):
            answer.tree.validate()

    def test_no_prestige_in_ranking(self, small_biblio):
        """All single-node answers for a one-keyword query tie (the
        missing-prestige weakness): relevance must be identical."""
        database, _ = small_biblio
        system = DataSpotSearch(database)
        answers = system.search("transaction")
        singles = [a for a in answers if a.tree.size() == 1]
        assert len(singles) > 1
        assert len({a.relevance for a in singles}) == 1

    def test_metadata_off_by_default(self, small_biblio):
        database, _ = small_biblio
        system = DataSpotSearch(database)
        # 'author' only matches as metadata; DataSpot has no such notion.
        assert system.search("author sudarshan") == []

    def test_max_results_respected(self, small_biblio):
        database, _ = small_biblio
        system = DataSpotSearch(database)
        assert len(system.search("transaction", max_results=3)) <= 3


class TestGoldman:
    def test_bond_degrades_with_distance(self):
        assert bond(0) == 1.0
        assert bond(1) == 0.25
        assert bond(2) < bond(1)

    def test_find_near_basic(self, tiny_db):
        system = ProximitySearch(tiny_db)
        results = system.find_near("paper", "ada")
        assert results
        # Both papers are distance 2 from ada (via writes tuples).
        top = results[0]
        assert top.node[0] == "paper"
        assert top.distance == 2.0

    def test_nearer_object_ranks_higher(self, tiny_db):
        system = ProximitySearch(tiny_db)
        # find author near turing: turing himself is distance 0.
        results = system.find_near("author", "turing")
        assert results[0].node == ("author", 1)

    def test_radius_cuts_off(self, tiny_db):
        system = ProximitySearch(tiny_db, radius=1.0)
        results = system.find_near("paper", "ada")
        assert results == []  # papers are 2 hops from the author tuple

    def test_results_are_single_tuples(self, small_biblio):
        """The Sec. 6 limitation: no trees, just tuples."""
        database, _ = small_biblio
        system = ProximitySearch(database)
        for result in system.search("seltzer sunita"):
            assert isinstance(result.node, tuple)
            assert len(result.node) == 2

    def test_single_term_query_degenerates(self, small_biblio):
        database, _ = small_biblio
        system = ProximitySearch(database)
        results = system.search("transaction")
        assert results
        # Uniform score 1.0: no prestige signal at all.
        assert {r.score for r in results} == {1.0}


class TestMragyati:
    def test_single_keyword_single_tuple(self, tiny_db):
        system = MragyatiSearch(tiny_db)
        answers = system.search("computing")
        assert answers
        assert answers[0].tree.size() == 1
        assert answers[0].tree.root == ("paper", 0)

    def test_two_keywords_within_two_hops(self, tiny_db):
        # 'ada' and 'computing': author a1 and paper p1 are 2 apart via
        # the writes tuple — representable as a length-2 star.
        system = MragyatiSearch(tiny_db)
        answers = system.search("ada computing")
        assert answers
        nodes = answers[0].tree.nodes
        assert ("author", 0) in nodes and ("paper", 0) in nodes

    def test_cannot_connect_beyond_two_hops(self, tiny_db):
        # 'ada' and 'alan' are 4 hops apart (author-writes-paper-writes-
        # author): Mragyati must return nothing.
        system = MragyatiSearch(tiny_db)
        assert system.search("ada alan") == []

    def test_indegree_ranking(self, small_biblio):
        """For a bare author query the prolific author ranks first
        (Mragyati's indegree default agrees with BANKS here)."""
        database, anecdotes = small_biblio
        system = MragyatiSearch(database)
        answers = system.search("mohan")
        assert answers
        assert answers[0].tree.root == anecdotes.c_mohan

    def test_answers_deduplicated(self, small_biblio):
        database, _ = small_biblio
        system = MragyatiSearch(database)
        answers = system.search("transaction")
        keys = [answer.tree.undirected_key() for answer in answers]
        assert len(keys) == len(set(keys))

    def test_answers_are_valid_trees(self, small_biblio):
        database, _ = small_biblio
        system = MragyatiSearch(database)
        for answer in system.search("sunita temporal"):
            answer.tree.validate()


class TestComparison:
    @pytest.fixture(scope="class")
    def reports(self):
        database, anecdotes = generate_bibliography(
            papers=60, authors=40, seed=9
        )
        workload = bibliography_workload(anecdotes)
        return compare_systems(database, workload)

    def test_all_four_systems_reported(self, reports):
        assert [r.system for r in reports] == [
            "BANKS",
            "DataSpot",
            "Goldman",
            "Mragyati",
        ]

    def test_banks_wins_on_error(self, reports):
        banks = reports[0]
        for other in reports[1:]:
            assert banks.scaled_error <= other.scaled_error

    def test_banks_finds_every_ideal(self, reports):
        banks = reports[0]
        assert banks.ideals_found == banks.total_ideals

    def test_mragyati_misses_coauthor_trees(self, reports):
        mragyati = next(r for r in reports if r.system == "Mragyati")
        assert mragyati.per_query_error["q1-coauthors"] > 0
        assert mragyati.per_query_error["q2-common-coauthor"] > 0

    def test_goldman_misses_tree_ideals(self, reports):
        goldman = next(r for r in reports if r.system == "Goldman")
        assert goldman.ideals_found < goldman.total_ideals

    def test_format_comparison(self, reports):
        table = format_comparison(reports)
        for name in ("BANKS", "DataSpot", "Goldman", "Mragyati"):
            assert name in table

    def test_latencies_positive(self, reports):
        for report in reports:
            assert report.mean_latency_ms > 0
