"""Tests for the evaluation harness: metric, workload, sweep, memory."""

import pytest

from repro.core.scoring import ScoringConfig
from repro.eval.error_score import (
    MISSING_PENALTY,
    query_rank_error,
    scale_errors,
    worst_possible_error,
)
from repro.eval.memory import graph_memory_bytes
from repro.eval.sweep import format_figure5, run_workload
from repro.eval.workload import bibliography_workload
from repro.graph.digraph import DiGraph


class TestErrorMetric:
    def test_perfect_ranking_is_zero(self):
        ideals = ["a", "b", "c"]
        assert query_rank_error(ideals, ["a", "b", "c", "x"]) == 0

    def test_rank_differences_summed(self):
        # a at rank 1 (ideal 0): +1; b at rank 0 (ideal 1): +1.
        assert query_rank_error(["a", "b"], ["b", "a"]) == 2

    def test_missing_penalty(self):
        assert query_rank_error(["a"], []) == MISSING_PENALTY
        assert query_rank_error(["a", "b"], ["a"]) == MISSING_PENALTY

    def test_worst_and_scaling(self):
        assert worst_possible_error(12) == 12 * MISSING_PENALTY
        assert scale_errors(worst_possible_error(12), 12) == 100.0
        assert scale_errors(0, 12) == 0.0
        assert scale_errors(0, 0) == 0.0


class TestWorkload:
    def test_seven_queries(self, bibliography_session):
        _db, anecdotes = bibliography_session
        workload = bibliography_workload(anecdotes)
        assert len(workload) == 7
        forms = {query.form for query in workload}
        assert len(forms) == 7  # each exercises a distinct form

    def test_ideal_keys_are_valid_tree_keys(self, bibliography_session):
        _db, anecdotes = bibliography_session
        for query in bibliography_workload(anecdotes):
            for key in query.ideal_keys:
                nodes, edges = None, None
                for part in key:
                    # Every key is {nodes, undirected-edges}: sets of
                    # tuples vs sets of frozenset pairs.
                    if part and isinstance(next(iter(part)), frozenset):
                        edges = part
                    else:
                        nodes = part
                assert nodes is not None

    def test_best_setting_has_zero_error(
        self, bibliography_session, biblio_banks_session
    ):
        """The paper's headline: lambda=0.2 + EdgeLog achieves error 0."""
        _db, anecdotes = bibliography_session
        workload = bibliography_workload(anecdotes)
        raw, per_query = run_workload(
            biblio_banks_session,
            workload,
            ScoringConfig(lambda_weight=0.2, edge_log=True),
        )
        assert raw == 0, f"non-zero per-query errors: {per_query}"

    def test_ignoring_edges_is_much_worse(
        self, bibliography_session, biblio_banks_session
    ):
        _db, anecdotes = bibliography_session
        workload = bibliography_workload(anecdotes)
        raw_best, _ = run_workload(
            biblio_banks_session,
            workload,
            ScoringConfig(lambda_weight=0.2, edge_log=True),
        )
        raw_prestige_only, _ = run_workload(
            biblio_banks_session,
            workload,
            ScoringConfig(lambda_weight=1.0, edge_log=True),
        )
        assert raw_prestige_only > raw_best + 5


class TestFormatting:
    def test_figure5_grid_renders(self, bibliography_session,
                                   biblio_banks_session):
        from repro.eval.sweep import figure5_sweep

        _db, anecdotes = bibliography_session
        workload = bibliography_workload(anecdotes)
        points = figure5_sweep(
            biblio_banks_session, workload, lambdas=(0.2,), edge_logs=(True,)
        )
        text = format_figure5(points)
        assert "EdgeLog" in text
        assert "0.2" in text


class TestMemory:
    def test_report_scales_with_graph(self):
        small = DiGraph()
        for i in range(10):
            small.add_edge(i, i + 1, 1.0)
        big = DiGraph()
        for i in range(1000):
            big.add_edge(i, i + 1, 1.0)
        small_report = graph_memory_bytes(small)
        big_report = graph_memory_bytes(big)
        assert big_report.total_bytes > small_report.total_bytes
        assert big_report.num_nodes == 1001
        assert big_report.megabytes == pytest.approx(
            big_report.total_bytes / 1048576.0
        )
