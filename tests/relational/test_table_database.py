"""Unit tests for heap tables, RIDs, and the database layer."""

import pytest

from repro.errors import IntegrityError, TypeMismatchError, UnknownTableError
from repro.relational.database import Database
from repro.relational.schema import Column, ForeignKey, TableSchema
from repro.relational.types import INTEGER, TEXT


def make_db() -> Database:
    database = Database("t")
    database.create_table(
        TableSchema(
            "dept",
            [Column("dept_id", TEXT, nullable=False), Column("name", TEXT)],
            primary_key=("dept_id",),
        )
    )
    database.create_table(
        TableSchema(
            "emp",
            [Column("emp_id", INTEGER, nullable=False),
             Column("name", TEXT),
             Column("dept_id", TEXT)],
            primary_key=("emp_id",),
            foreign_keys=[
                ForeignKey("emp", ("dept_id",), "dept", ("dept_id",)),
            ],
        )
    )
    return database


class TestTable:
    def test_insert_returns_sequential_rids(self, figure1_db):
        table = figure1_db.table("author")
        assert [row.rid for row in table.scan()] == [0, 1, 2]

    def test_wrong_arity_rejected(self):
        database = make_db()
        with pytest.raises(IntegrityError):
            database.table("dept").insert(["D1"])

    def test_not_null_enforced(self):
        database = make_db()
        with pytest.raises(IntegrityError):
            database.table("dept").insert([None, "x"])

    def test_type_checked_on_insert(self):
        database = make_db()
        with pytest.raises(TypeMismatchError):
            database.insert("emp", ["not-an-int", "x", None])

    def test_duplicate_pk_rejected(self):
        database = make_db()
        database.insert("dept", ["D1", "Sales"])
        with pytest.raises(IntegrityError):
            database.insert("dept", ["D1", "Other"])

    def test_pk_lookup(self):
        database = make_db()
        database.insert("dept", ["D1", "Sales"])
        row = database.table("dept").lookup_pk(["D1"])
        assert row is not None and row["name"] == "Sales"
        assert database.table("dept").lookup_pk(["D9"]) is None

    def test_delete_leaves_tombstone(self):
        database = make_db()
        database.insert("dept", ["D1", "Sales"])
        database.insert("dept", ["D2", "Tech"])
        database.delete(("dept", 0))
        table = database.table("dept")
        assert len(table) == 1
        assert not table.has_rid(0)
        # RIDs of remaining rows are unchanged.
        assert table.row(1)["dept_id"] == "D2"
        with pytest.raises(IntegrityError):
            table.row(0)

    def test_insert_dict_fills_nulls(self):
        database = make_db()
        rid = database.insert_dict("dept", {"dept_id": "D1"})
        assert database.row(rid)["name"] is None

    def test_insert_dict_unknown_column(self):
        database = make_db()
        with pytest.raises(Exception):
            database.insert_dict("dept", {"bogus": 1})

    def test_row_equality_and_dict(self):
        database = make_db()
        rid = database.insert("dept", ["D1", "Sales"])
        row = database.row(rid)
        assert row.as_dict() == {"dept_id": "D1", "name": "Sales"}
        assert row == database.row(rid)
        assert row.get("ghost", "dflt") == "dflt"


class TestForeignKeys:
    def test_fk_enforced_on_insert(self):
        database = make_db()
        with pytest.raises(IntegrityError):
            database.insert("emp", [1, "Ann", "D404"])

    def test_failed_fk_insert_leaves_no_row(self):
        database = make_db()
        with pytest.raises(IntegrityError):
            database.insert("emp", [1, "Ann", "D404"])
        assert len(database.table("emp")) == 0

    def test_null_fk_references_nothing(self):
        database = make_db()
        rid = database.insert("emp", [1, "Ann", None])
        assert database.references_of(rid) == []

    def test_reverse_reference_index(self):
        database = make_db()
        dept = database.insert("dept", ["D1", "Sales"])
        e1 = database.insert("emp", [1, "Ann", "D1"])
        e2 = database.insert("emp", [2, "Bob", "D1"])
        referencing = {rid for _fk, rid in database.referencing(dept)}
        assert referencing == {e1, e2}
        assert database.indegree(dept) == 2
        assert database.indegree_from(dept, "emp") == 2
        assert database.indegree_from(dept, "dept") == 0

    def test_delete_referenced_tuple_rejected(self):
        database = make_db()
        dept = database.insert("dept", ["D1", "Sales"])
        database.insert("emp", [1, "Ann", "D1"])
        with pytest.raises(IntegrityError):
            database.delete(dept)

    def test_delete_referencing_then_referenced(self):
        database = make_db()
        dept = database.insert("dept", ["D1", "Sales"])
        emp = database.insert("emp", [1, "Ann", "D1"])
        database.delete(emp)
        assert database.indegree(dept) == 0
        database.delete(dept)
        assert database.total_rows() == 0

    def test_deferred_check_mode(self):
        database = Database("d", deferred_fk_check=True)
        database.create_tables(
            [
                TableSchema(
                    "a",
                    [Column("id", TEXT, nullable=False), Column("b_id", TEXT)],
                    primary_key=("id",),
                    foreign_keys=[ForeignKey("a", ("b_id",), "b", ("id",))],
                ),
                TableSchema(
                    "b",
                    [Column("id", TEXT, nullable=False)],
                    primary_key=("id",),
                ),
            ]
        )
        # Insert the referencing row before the referenced row.
        database.insert("a", ["a1", "b1"])
        database.insert("b", ["b1"])
        database.check_integrity()
        assert database.indegree(("b", 0)) == 1

    def test_deferred_check_catches_dangling(self):
        database = Database("d", deferred_fk_check=True)
        database.create_tables(
            [
                TableSchema(
                    "a",
                    [Column("id", TEXT, nullable=False), Column("b_id", TEXT)],
                    primary_key=("id",),
                    foreign_keys=[ForeignKey("a", ("b_id",), "b", ("id",))],
                ),
                TableSchema(
                    "b",
                    [Column("id", TEXT, nullable=False)],
                    primary_key=("id",),
                ),
            ]
        )
        database.insert("a", ["a1", "missing"])
        with pytest.raises(IntegrityError):
            database.check_integrity()


class TestDatabaseCatalog:
    def test_unknown_table(self):
        database = make_db()
        with pytest.raises(UnknownTableError):
            database.table("ghost")

    def test_drop_table_clears_reverse_refs(self):
        database = make_db()
        dept = database.insert("dept", ["D1", "Sales"])
        database.insert("emp", [1, "Ann", "D1"])
        database.drop_table("emp")
        assert database.indegree(dept) == 0

    def test_total_rows_and_all_rows(self, figure1_db):
        assert figure1_db.total_rows() == 7
        assert sum(1 for _ in figure1_db.all_rows()) == 7

    def test_composite_fk_resolution(self):
        database = Database("c")
        database.create_table(
            TableSchema(
                "k",
                [Column("a", TEXT, nullable=False),
                 Column("b", TEXT, nullable=False)],
                primary_key=("a", "b"),
            )
        )
        database.create_table(
            TableSchema(
                "r",
                [Column("ka", TEXT), Column("kb", TEXT)],
                foreign_keys=[
                    ForeignKey("r", ("ka", "kb"), "k", ("a", "b")),
                ],
            )
        )
        k = database.insert("k", ["x", "y"])
        r = database.insert("r", ["x", "y"])
        assert database.references_of(r) == [
            (database.table("r").schema.foreign_keys[0], k)
        ]
