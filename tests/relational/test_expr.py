"""Unit tests for the SQL expression engine (three-valued logic)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.relational.expr import (
    And,
    Arithmetic,
    Between,
    ColumnRef,
    Comparison,
    InList,
    IsNull,
    Like,
    Literal,
    Negate,
    Not,
    Or,
    conjoin,
    equality_pairs,
    like_to_regex,
)

COLUMNS = {"a": 0, "b": 1, "c": 2}


def ev(expression, row):
    return expression.evaluate(row, COLUMNS.__getitem__)


class TestLiteralsAndColumns:
    def test_literal(self):
        assert ev(Literal(42), ()) == 42

    def test_null_literal(self):
        assert ev(Literal(None), ()) is None

    def test_column_ref(self):
        assert ev(ColumnRef("b"), (1, "x", 3)) == "x"

    def test_columns_reports_references(self):
        expression = And(
            Comparison("=", ColumnRef("a"), Literal(1)),
            Comparison("=", ColumnRef("b"), ColumnRef("c")),
        )
        assert set(expression.columns()) == {"a", "b", "c"}


class TestArithmetic:
    @pytest.mark.parametrize(
        "operator,expected",
        [("+", 7), ("-", 3), ("*", 10), ("%", 1)],
    )
    def test_integer_arithmetic(self, operator, expected):
        assert ev(Arithmetic(operator, Literal(5), Literal(2)), ()) == expected

    def test_exact_integer_division_stays_integral(self):
        assert ev(Arithmetic("/", Literal(6), Literal(3)), ()) == 2

    def test_inexact_division_is_float(self):
        assert ev(Arithmetic("/", Literal(5), Literal(2)), ()) == 2.5

    def test_division_by_zero_is_null(self):
        assert ev(Arithmetic("/", Literal(5), Literal(0)), ()) is None

    def test_modulo_by_zero_is_null(self):
        assert ev(Arithmetic("%", Literal(5), Literal(0)), ()) is None

    def test_null_propagates(self):
        assert ev(Arithmetic("+", Literal(None), Literal(2)), ()) is None

    def test_negate(self):
        assert ev(Negate(Literal(3)), ()) == -3

    def test_negate_null(self):
        assert ev(Negate(Literal(None)), ()) is None

    def test_string_concatenation_via_plus(self):
        assert ev(Arithmetic("+", Literal("ab"), Literal("cd")), ()) == "abcd"


class TestComparisons:
    @pytest.mark.parametrize(
        "operator,left,right,expected",
        [
            ("=", 1, 1, True),
            ("==", 1, 2, False),
            ("!=", 1, 2, True),
            ("<>", 1, 1, False),
            ("<", 1, 2, True),
            ("<=", 2, 2, True),
            (">", 3, 2, True),
            (">=", 1, 2, False),
        ],
    )
    def test_definite(self, operator, left, right, expected):
        result = ev(Comparison(operator, Literal(left), Literal(right)), ())
        assert result is expected

    def test_null_side_is_unknown(self):
        assert ev(Comparison("=", Literal(None), Literal(1)), ()) is None

    def test_cross_type_is_unknown(self):
        assert ev(Comparison("<", Literal("x"), Literal(1)), ()) is None

    def test_is_true_collapses_unknown(self):
        expression = Comparison("=", Literal(None), Literal(1))
        assert expression.is_true((), COLUMNS.__getitem__) is False


class TestKleeneLogic:
    T, F, U = Literal(True), Literal(False), Literal(None)

    @pytest.mark.parametrize(
        "left,right,expected",
        [("T", "T", True), ("T", "F", False), ("T", "U", None),
         ("F", "U", False), ("U", "U", None)],
    )
    def test_and_table(self, left, right, expected):
        result = ev(And(getattr(self, left), getattr(self, right)), ())
        assert result is expected

    @pytest.mark.parametrize(
        "left,right,expected",
        [("T", "U", True), ("F", "F", False), ("F", "U", None),
         ("U", "U", None)],
    )
    def test_or_table(self, left, right, expected):
        result = ev(Or(getattr(self, left), getattr(self, right)), ())
        assert result is expected

    @pytest.mark.parametrize(
        "operand,expected", [("T", False), ("F", True), ("U", None)]
    )
    def test_not_table(self, operand, expected):
        assert ev(Not(getattr(self, operand)), ()) is expected

    def test_conjoin_chains(self):
        expression = conjoin([self.T, self.T, self.F])
        assert ev(expression, ()) is False

    def test_conjoin_empty_raises(self):
        from repro.errors import SQLSyntaxError

        with pytest.raises(SQLSyntaxError):
            conjoin([])


class TestLike:
    def test_percent_matches_any_run(self):
        assert ev(Like(Literal("hello world"), Literal("hello%")), ()) is True

    def test_underscore_matches_one_char(self):
        assert ev(Like(Literal("cat"), Literal("c_t")), ()) is True
        assert ev(Like(Literal("cart"), Literal("c_t")), ()) is False

    def test_case_insensitive(self):
        assert ev(Like(Literal("Hello"), Literal("hello")), ()) is True

    def test_negated(self):
        assert ev(Like(Literal("abc"), Literal("z%"), negated=True), ()) is True

    def test_null_operand_unknown(self):
        assert ev(Like(Literal(None), Literal("%")), ()) is None

    def test_regex_metacharacters_are_literal(self):
        assert ev(Like(Literal("a.b"), Literal("a.b")), ()) is True
        assert ev(Like(Literal("axb"), Literal("a.b")), ()) is False

    @given(st.text(max_size=30))
    def test_universal_pattern_matches_everything(self, text):
        assert like_to_regex("%").match(text) is not None


class TestInList:
    def test_member(self):
        expression = InList(Literal(2), (Literal(1), Literal(2)))
        assert ev(expression, ()) is True

    def test_non_member(self):
        expression = InList(Literal(9), (Literal(1), Literal(2)))
        assert ev(expression, ()) is False

    def test_null_operand_unknown(self):
        expression = InList(Literal(None), (Literal(1),))
        assert ev(expression, ()) is None

    def test_null_in_list_without_match_is_unknown(self):
        expression = InList(Literal(9), (Literal(1), Literal(None)))
        assert ev(expression, ()) is None

    def test_match_beats_null_in_list(self):
        expression = InList(Literal(1), (Literal(None), Literal(1)))
        assert ev(expression, ()) is True

    def test_negated(self):
        expression = InList(Literal(9), (Literal(1),), negated=True)
        assert ev(expression, ()) is True

    def test_negated_unknown_stays_unknown(self):
        expression = InList(Literal(None), (Literal(1),), negated=True)
        assert ev(expression, ()) is None


class TestNullPredicates:
    def test_is_null(self):
        assert ev(IsNull(Literal(None)), ()) is True
        assert ev(IsNull(Literal(1)), ()) is False

    def test_is_not_null(self):
        assert ev(IsNull(Literal(1), negated=True), ()) is True

    def test_between(self):
        assert ev(Between(Literal(5), Literal(1), Literal(9)), ()) is True
        assert ev(Between(Literal(0), Literal(1), Literal(9)), ()) is False

    def test_between_inclusive_ends(self):
        assert ev(Between(Literal(1), Literal(1), Literal(9)), ()) is True
        assert ev(Between(Literal(9), Literal(1), Literal(9)), ()) is True

    def test_not_between(self):
        expression = Between(Literal(0), Literal(1), Literal(9), negated=True)
        assert ev(expression, ()) is True

    def test_between_null_bound_unknown(self):
        expression = Between(Literal(5), Literal(None), Literal(9))
        assert ev(expression, ()) is None


class TestEqualityPairs:
    def test_single_equality(self):
        expression = Comparison("=", ColumnRef("t.a"), ColumnRef("u.b"))
        assert equality_pairs(expression) == (("t.a", "u.b"),)

    def test_conjunction_of_equalities(self):
        expression = And(
            Comparison("=", ColumnRef("a"), ColumnRef("b")),
            Comparison("=", ColumnRef("c"), ColumnRef("a")),
        )
        assert equality_pairs(expression) == (("a", "b"), ("c", "a"))

    def test_non_equality_defeats(self):
        expression = Comparison("<", ColumnRef("a"), ColumnRef("b"))
        assert equality_pairs(expression) is None

    def test_literal_side_defeats(self):
        expression = Comparison("=", ColumnRef("a"), Literal(3))
        assert equality_pairs(expression) is None

    def test_or_defeats(self):
        expression = Or(
            Comparison("=", ColumnRef("a"), ColumnRef("b")),
            Comparison("=", ColumnRef("c"), ColumnRef("a")),
        )
        assert equality_pairs(expression) is None


@given(
    a=st.one_of(st.none(), st.integers(-5, 5)),
    b=st.one_of(st.none(), st.integers(-5, 5)),
)
def test_property_comparison_never_raises(a, b):
    """Any comparison of NULL-able integers evaluates to True/False/None."""
    for operator in ("=", "!=", "<", "<=", ">", ">="):
        result = Comparison(operator, Literal(a), Literal(b)).evaluate(
            (), COLUMNS.__getitem__
        )
        assert result in (True, False, None)
        if a is None or b is None:
            assert result is None


@given(
    values=st.lists(st.one_of(st.none(), st.booleans()), min_size=1, max_size=5)
)
def test_property_conjoin_matches_python_all(values):
    """With no unknowns involved, Kleene AND degenerates to ``all``."""
    expression = conjoin([Literal(v) for v in values])
    result = expression.evaluate((), COLUMNS.__getitem__)
    if None not in values:
        assert result is all(values)
    elif False in values:
        assert result is False
    else:
        assert result is None
