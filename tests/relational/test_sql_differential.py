"""Differential tests: our SQL subset vs sqlite3 on identical data.

Every statement here is executed by both engines and the result sets
compared (as multisets — row order is only compared under ORDER BY).
Scope notes where the engines intentionally diverge:

* integer division: sqlite truncates (``5/2 = 2``), this engine returns
  2.5 (exact results stay integral) — division is excluded;
* ORDER BY places NULLs first in sqlite and last here — ordered
  comparisons use non-null columns;
* both engines treat LIKE case-insensitively for ASCII.
"""

from __future__ import annotations

import sqlite3

import pytest
from hypothesis import given, settings, strategies as st

from repro.relational import Database, execute_script, execute_sql


ROWS = [
    (1, "hammer", 9.5, 1),
    (2, "saw", 19.0, 1),
    (3, "roller", 4.0, 2),
    (4, "mystery", None, None),
    (5, "Hammer Deluxe", 9.5, 2),
    (6, "brush", 4.0, 2),
]


@pytest.fixture
def engines():
    ours = Database("shop")
    execute_script(
        ours,
        """
        CREATE TABLE item (
            id INTEGER PRIMARY KEY,
            name TEXT NOT NULL,
            price REAL,
            category_id INTEGER
        );
        """,
    )
    theirs = sqlite3.connect(":memory:")
    theirs.execute(
        "CREATE TABLE item (id INTEGER PRIMARY KEY, name TEXT NOT NULL, "
        "price REAL, category_id INTEGER)"
    )
    for row in ROWS:
        ours.insert("item", list(row))
        theirs.execute("INSERT INTO item VALUES (?, ?, ?, ?)", row)
    theirs.commit()
    yield ours, theirs
    theirs.close()


def both(engines, statement: str, ordered: bool = False):
    ours, theirs = engines
    our_rows = [tuple(row) for row in execute_sql(ours, statement).rows]
    their_rows = [tuple(row) for row in theirs.execute(statement).fetchall()]
    if not ordered:
        our_rows = sorted(our_rows, key=repr)
        their_rows = sorted(their_rows, key=repr)
    return our_rows, their_rows


UNORDERED_QUERIES = [
    "SELECT name FROM item WHERE price > 5.0",
    "SELECT name FROM item WHERE price >= 4.0 AND category_id = 2",
    "SELECT name FROM item WHERE price < 5.0 OR price > 15.0",
    "SELECT name FROM item WHERE NOT price > 5.0",
    "SELECT name FROM item WHERE name LIKE '%er'",
    "SELECT name FROM item WHERE name LIKE 'hammer%'",
    "SELECT name FROM item WHERE name NOT LIKE '%e%'",
    "SELECT name FROM item WHERE id IN (1, 3, 5)",
    "SELECT name FROM item WHERE id NOT IN (1, 2)",
    "SELECT name FROM item WHERE price IS NULL",
    "SELECT name FROM item WHERE price IS NOT NULL",
    "SELECT name FROM item WHERE price BETWEEN 4.0 AND 10.0",
    "SELECT name FROM item WHERE price NOT BETWEEN 4.0 AND 10.0",
    "SELECT name FROM item WHERE price * 2 > 18.0",
    "SELECT name FROM item WHERE price + 1.0 <= 5.0",
    "SELECT name FROM item WHERE category_id < id",
    "SELECT name FROM item WHERE (price > 5.0 AND category_id = 1) OR id = 6",
    "SELECT DISTINCT price FROM item WHERE price IS NOT NULL",
    "SELECT COUNT(*) FROM item",
    "SELECT COUNT(price) FROM item",
    "SELECT SUM(price), MIN(price), MAX(price) FROM item",
    "SELECT AVG(price) FROM item WHERE category_id = 2",
    "SELECT category_id, COUNT(*) FROM item "
    "WHERE category_id IS NOT NULL GROUP BY category_id",
    "SELECT category_id, SUM(price) FROM item "
    "WHERE category_id IS NOT NULL GROUP BY category_id "
    "HAVING COUNT(*) > 1",
]

ORDERED_QUERIES = [
    "SELECT name FROM item WHERE price IS NOT NULL ORDER BY price, name",
    "SELECT name, price FROM item WHERE price IS NOT NULL "
    "ORDER BY price DESC, name ASC",
    "SELECT id FROM item ORDER BY id LIMIT 3",
    "SELECT id FROM item ORDER BY id LIMIT 2 OFFSET 2",
    "SELECT id FROM item ORDER BY id DESC LIMIT 10 OFFSET 4",
]


@pytest.mark.parametrize("statement", UNORDERED_QUERIES)
def test_unordered_agreement(engines, statement):
    ours, theirs = both(engines, statement)
    assert ours == theirs, statement


@pytest.mark.parametrize("statement", ORDERED_QUERIES)
def test_ordered_agreement(engines, statement):
    ours, theirs = both(engines, statement, ordered=True)
    assert ours == theirs, statement


class TestMutationAgreement:
    def test_update_agreement(self, engines):
        ours, theirs = engines
        statement = "UPDATE item SET price = price + 1.0 WHERE category_id = 1"
        execute_sql(ours, statement)
        theirs.execute(statement)
        left, right = both(engines, "SELECT id, price FROM item")
        assert left == right

    def test_delete_agreement(self, engines):
        ours, theirs = engines
        statement = "DELETE FROM item WHERE price IS NULL OR id > 5"
        execute_sql(ours, statement)
        theirs.execute(statement)
        left, right = both(engines, "SELECT id FROM item")
        assert left == right


@settings(deadline=None, max_examples=30)
@given(
    threshold=st.floats(min_value=0.0, max_value=25.0, allow_nan=False),
    category=st.integers(0, 3),
)
def test_property_where_agreement(threshold, category):
    """Randomised comparison thresholds agree between engines."""
    ours = Database("p")
    execute_script(
        ours,
        "CREATE TABLE item (id INTEGER PRIMARY KEY, name TEXT NOT NULL, "
        "price REAL, category_id INTEGER)",
    )
    theirs = sqlite3.connect(":memory:")
    theirs.execute(
        "CREATE TABLE item (id INTEGER PRIMARY KEY, name TEXT NOT NULL, "
        "price REAL, category_id INTEGER)"
    )
    for row in ROWS:
        ours.insert("item", list(row))
        theirs.execute("INSERT INTO item VALUES (?, ?, ?, ?)", row)
    statement = (
        f"SELECT id FROM item WHERE price > {threshold:.3f} "
        f"OR category_id = {category}"
    )
    our_rows = sorted(tuple(r) for r in execute_sql(ours, statement).rows)
    their_rows = sorted(tuple(r) for r in theirs.execute(statement).fetchall())
    theirs.close()
    assert our_rows == their_rows
