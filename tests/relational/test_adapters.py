"""Tests for the sqlite adapter and CSV round trips."""

import sqlite3

import pytest

from repro.errors import IntegrityError
from repro.relational import Database, execute_script
from repro.relational.csvio import dump_to_csv_dir, load_from_csv_dir
from repro.relational.sqlite_adapter import dump_to_sqlite, load_sqlite


@pytest.fixture
def sqlite_conn():
    connection = sqlite3.connect(":memory:")
    connection.executescript(
        """
        CREATE TABLE zebra (id INTEGER PRIMARY KEY, label TEXT);
        CREATE TABLE apple (
            id INTEGER PRIMARY KEY,
            zebra_id INTEGER REFERENCES zebra(id),
            note TEXT NOT NULL
        );
        INSERT INTO zebra VALUES (1, 'stripes');
        INSERT INTO zebra VALUES (2, 'more stripes');
        INSERT INTO apple VALUES (10, 1, 'red');
        INSERT INTO apple VALUES (11, 1, 'green');
        INSERT INTO apple VALUES (12, NULL, 'orphan');
        """
    )
    yield connection
    connection.close()


class TestSqliteImport:
    def test_schema_mirrored(self, sqlite_conn):
        database = load_sqlite(sqlite_conn)
        # 'apple' precedes 'zebra' alphabetically although it references
        # it — bulk creation must handle that.
        apple = database.table("apple").schema
        assert apple.primary_key == ("id",)
        assert apple.foreign_keys[0].target_table == "zebra"
        assert not apple.column("note").nullable

    def test_rows_and_references(self, sqlite_conn):
        database = load_sqlite(sqlite_conn)
        assert len(database.table("apple")) == 3
        zebra1 = database.table("zebra").lookup_pk([1])
        assert database.indegree(("zebra", zebra1.rid)) == 2

    def test_null_fk_tolerated(self, sqlite_conn):
        database = load_sqlite(sqlite_conn)
        orphan = database.table("apple").lookup_pk([12])
        assert database.references_of(("apple", orphan.rid)) == []

    def test_implicit_fk_target_resolves_to_pk(self):
        connection = sqlite3.connect(":memory:")
        connection.executescript(
            """
            CREATE TABLE t1 (id INTEGER PRIMARY KEY);
            CREATE TABLE t2 (ref INTEGER REFERENCES t1);
            INSERT INTO t1 VALUES (5);
            INSERT INTO t2 VALUES (5);
            """
        )
        database = load_sqlite(connection)
        fk = database.table("t2").schema.foreign_keys[0]
        assert fk.target_columns == ("id",)
        connection.close()

    def test_dangling_fk_caught_when_checking(self):
        connection = sqlite3.connect(":memory:")
        connection.executescript(
            """
            PRAGMA foreign_keys = OFF;
            CREATE TABLE t1 (id INTEGER PRIMARY KEY);
            CREATE TABLE t2 (ref INTEGER REFERENCES t1(id));
            INSERT INTO t2 VALUES (404);
            """
        )
        with pytest.raises(IntegrityError):
            load_sqlite(connection)
        # Dirty loads are still possible when asked for.
        database = load_sqlite(connection, check_integrity=False)
        assert len(database.table("t2")) == 1
        connection.close()


class TestSqliteRoundTrip:
    def test_dump_and_reload(self, figure1_db):
        connection = sqlite3.connect(":memory:")
        dump_to_sqlite(figure1_db, connection)
        reloaded = load_sqlite(connection)
        assert reloaded.total_rows() == figure1_db.total_rows()
        assert set(reloaded.table_names) == set(figure1_db.table_names)
        # FK structure survived.
        assert len(reloaded.table("writes").schema.foreign_keys) == 2
        connection.close()


class TestCsvRoundTrip:
    def test_dump_and_reload(self, figure1_db, tmp_path):
        directory = str(tmp_path / "csv")
        dump_to_csv_dir(figure1_db, directory)
        reloaded = load_from_csv_dir(directory)
        assert reloaded.total_rows() == figure1_db.total_rows()
        author = reloaded.table("author").lookup_pk(["SunitaS"])
        assert author["name"] == "Sunita Sarawagi"

    def test_nulls_and_types_survive(self, tmp_path):
        database = Database("typed")
        execute_script(
            database,
            """
            CREATE TABLE t (
                id INTEGER PRIMARY KEY,
                score REAL,
                flag BOOLEAN,
                note TEXT
            );
            INSERT INTO t VALUES (1, 2.5, TRUE, NULL);
            INSERT INTO t VALUES (2, NULL, FALSE, 'hello');
            """,
        )
        directory = str(tmp_path / "csv")
        dump_to_csv_dir(database, directory)
        reloaded = load_from_csv_dir(directory)
        row1 = reloaded.table("t").lookup_pk([1])
        row2 = reloaded.table("t").lookup_pk([2])
        assert row1["score"] == 2.5 and row1["flag"] is True
        assert row1["note"] is None
        assert row2["score"] is None and row2["note"] == "hello"

    def test_missing_schema_rejected(self, tmp_path):
        with pytest.raises(Exception):
            load_from_csv_dir(str(tmp_path / "nowhere"))
