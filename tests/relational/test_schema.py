"""Unit tests for schema objects and catalog validation."""

import pytest

from repro.errors import SchemaError, UnknownColumnError, UnknownTableError
from repro.relational.schema import (
    Column,
    DatabaseSchema,
    ForeignKey,
    TableSchema,
)
from repro.relational.types import INTEGER, TEXT


def author_schema() -> TableSchema:
    return TableSchema(
        "author",
        [Column("author_id", TEXT, nullable=False), Column("name", TEXT)],
        primary_key=("author_id",),
    )


def writes_schema() -> TableSchema:
    return TableSchema(
        "writes",
        [Column("author_id", TEXT, nullable=False),
         Column("paper_id", TEXT, nullable=False)],
        primary_key=("author_id", "paper_id"),
        foreign_keys=[
            ForeignKey("writes", ("author_id",), "author", ("author_id",)),
        ],
    )


class TestColumn:
    def test_valid_names(self):
        Column("a_b_c", TEXT)
        Column("x1", INTEGER)

    @pytest.mark.parametrize("bad", ["", "a b", "x-y", "t.q"])
    def test_invalid_names_rejected(self, bad):
        with pytest.raises(SchemaError):
            Column(bad, TEXT)


class TestForeignKey:
    def test_column_count_mismatch(self):
        with pytest.raises(SchemaError):
            ForeignKey("a", ("x", "y"), "b", ("z",))

    def test_empty_rejected(self):
        with pytest.raises(SchemaError):
            ForeignKey("a", (), "b", ())

    def test_name_is_descriptive(self):
        fk = ForeignKey("writes", ("author_id",), "author", ("author_id",))
        assert fk.name == "writes(author_id)->author(author_id)"


class TestTableSchema:
    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [Column("a", TEXT), Column("a", TEXT)])

    def test_empty_tables_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [])

    def test_pk_must_exist(self):
        with pytest.raises(UnknownColumnError):
            TableSchema("t", [Column("a", TEXT)], primary_key=("b",))

    def test_fk_on_wrong_table_rejected(self):
        fk = ForeignKey("other", ("a",), "x", ("a",))
        with pytest.raises(SchemaError):
            TableSchema("t", [Column("a", TEXT)], foreign_keys=[fk])

    def test_fk_source_column_must_exist(self):
        fk = ForeignKey("t", ("missing",), "x", ("a",))
        with pytest.raises(UnknownColumnError):
            TableSchema("t", [Column("a", TEXT)], foreign_keys=[fk])

    def test_column_positions(self):
        schema = writes_schema()
        assert schema.column_position("paper_id") == 1
        with pytest.raises(UnknownColumnError):
            schema.column_position("nope")

    def test_text_columns(self):
        schema = TableSchema(
            "t", [Column("a", TEXT), Column("n", INTEGER), Column("b", TEXT)]
        )
        assert [c.name for c in schema.text_columns()] == ["a", "b"]


class TestDatabaseSchema:
    def test_duplicate_tables_rejected(self):
        catalog = DatabaseSchema([author_schema()])
        with pytest.raises(SchemaError):
            catalog.add_table(author_schema())

    def test_validate_catches_dangling_fk(self):
        catalog = DatabaseSchema([writes_schema()])
        with pytest.raises(UnknownTableError):
            catalog.validate()

    def test_validate_catches_missing_target_column(self):
        bad = TableSchema(
            "writes",
            [Column("author_id", TEXT)],
            foreign_keys=[
                ForeignKey("writes", ("author_id",), "author", ("ghost",)),
            ],
        )
        catalog = DatabaseSchema([author_schema(), bad])
        with pytest.raises(UnknownColumnError):
            catalog.validate()

    def test_validate_catches_type_mismatch(self):
        bad = TableSchema(
            "writes",
            [Column("author_id", INTEGER)],
            foreign_keys=[
                ForeignKey("writes", ("author_id",), "author", ("author_id",)),
            ],
        )
        catalog = DatabaseSchema([author_schema(), bad])
        with pytest.raises(SchemaError):
            catalog.validate()

    def test_drop_referenced_table_rejected(self):
        catalog = DatabaseSchema([author_schema(), writes_schema()])
        with pytest.raises(SchemaError):
            catalog.drop_table("author")
        catalog.drop_table("writes")
        catalog.drop_table("author")
        assert not catalog.table_names

    def test_references_to(self):
        catalog = DatabaseSchema([author_schema(), writes_schema()])
        refs = catalog.references_to("author")
        assert len(refs) == 1
        assert refs[0].source_table == "writes"
        assert catalog.references_to("writes") == []
