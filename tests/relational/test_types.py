"""Unit tests for column datatypes and coercion."""

import pytest

from repro.errors import TypeMismatchError
from repro.relational.types import (
    BOOLEAN,
    INTEGER,
    REAL,
    TEXT,
    infer_type,
    type_from_name,
)


class TestIntegerCoercion:
    def test_int_passes_through(self):
        assert INTEGER.validate(42) == 42

    def test_none_is_null(self):
        assert INTEGER.validate(None) is None

    def test_integral_float_accepted(self):
        assert INTEGER.validate(3.0) == 3

    def test_fractional_float_rejected(self):
        with pytest.raises(TypeMismatchError):
            INTEGER.validate(3.5)

    def test_numeric_string_accepted(self):
        assert INTEGER.validate("17") == 17

    def test_garbage_string_rejected(self):
        with pytest.raises(TypeMismatchError):
            INTEGER.validate("seventeen")

    def test_boolean_rejected(self):
        with pytest.raises(TypeMismatchError):
            INTEGER.validate(True)


class TestRealCoercion:
    def test_float_passes_through(self):
        assert REAL.validate(2.5) == 2.5

    def test_int_widened(self):
        assert REAL.validate(2) == 2.0
        assert isinstance(REAL.validate(2), float)

    def test_string_parsed(self):
        assert REAL.validate("2.25") == 2.25

    def test_boolean_rejected(self):
        with pytest.raises(TypeMismatchError):
            REAL.validate(False)

    def test_garbage_rejected(self):
        with pytest.raises(TypeMismatchError):
            REAL.validate("pi")


class TestTextCoercion:
    def test_string_passes_through(self):
        assert TEXT.validate("hello") == "hello"

    def test_numbers_stringified(self):
        assert TEXT.validate(7) == "7"

    def test_objects_rejected(self):
        with pytest.raises(TypeMismatchError):
            TEXT.validate(object())


class TestBooleanCoercion:
    @pytest.mark.parametrize("value", [True, 1, "true", "T", "yes", "1"])
    def test_truthy_literals(self, value):
        assert BOOLEAN.validate(value) is True

    @pytest.mark.parametrize("value", [False, 0, "false", "F", "no", "0"])
    def test_falsy_literals(self, value):
        assert BOOLEAN.validate(value) is False

    def test_other_ints_rejected(self):
        with pytest.raises(TypeMismatchError):
            BOOLEAN.validate(2)

    def test_garbage_rejected(self):
        with pytest.raises(TypeMismatchError):
            BOOLEAN.validate("maybe")


class TestTypeNames:
    @pytest.mark.parametrize(
        ("name", "expected"),
        [
            ("INTEGER", INTEGER),
            ("int", INTEGER),
            ("BIGINT", INTEGER),
            ("REAL", REAL),
            ("double", REAL),
            ("NUMERIC", REAL),
            ("TEXT", TEXT),
            ("VARCHAR(80)", TEXT),
            ("char(1)", TEXT),
            ("BOOLEAN", BOOLEAN),
            ("bool", BOOLEAN),
        ],
    )
    def test_known_spellings(self, name, expected):
        assert type_from_name(name) is expected

    def test_unknown_names_default_to_text(self):
        assert type_from_name("GEOMETRY") is TEXT


class TestInference:
    def test_none_gives_no_information(self):
        assert infer_type(None) is None

    def test_bool_before_int(self):
        assert infer_type(True) is BOOLEAN

    def test_int_and_float_and_text(self):
        assert infer_type(3) is INTEGER
        assert infer_type(3.5) is REAL
        assert infer_type("x") is TEXT
