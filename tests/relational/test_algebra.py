"""Unit tests for the relational-algebra operators."""

import pytest

from repro.errors import BrowseError, UnknownColumnError
from repro.relational.algebra import (
    Relation,
    drop_columns,
    from_table,
    group_by,
    join_fk,
    page_count,
    paginate,
    project,
    select,
    select_where,
    sort_by,
)


@pytest.fixture
def authors(figure1_db):
    return from_table(figure1_db.table("author"))


@pytest.fixture
def writes(figure1_db):
    return from_table(figure1_db.table("writes"))


class TestFromTable:
    def test_columns_are_qualified(self, authors):
        assert authors.columns == ["author.author_id", "author.name"]

    def test_provenance_points_at_base_rows(self, authors):
        assert authors.provenance[0] == (("author", 0),)

    def test_row_count(self, authors):
        assert len(authors) == 3


class TestProject:
    def test_keep_columns(self, authors):
        projected = project(authors, ["author.name"])
        assert projected.columns == ["author.name"]
        assert projected.rows[0] == ("Soumen Chakrabarti",)

    def test_unqualified_names_accepted_when_unambiguous(self, authors):
        projected = project(authors, ["name"])
        assert projected.columns == ["author.name"]

    def test_unknown_column_rejected(self, authors):
        with pytest.raises(UnknownColumnError):
            project(authors, ["ghost"])

    def test_drop_columns(self, authors):
        remaining = drop_columns(authors, ["author.author_id"])
        assert remaining.columns == ["author.name"]

    def test_provenance_preserved(self, authors):
        projected = project(authors, ["author.name"])
        assert projected.provenance == authors.provenance


class TestSelect:
    def test_equality(self, authors):
        filtered = select(authors, "author.name", "=", "Byron Dom")
        assert len(filtered) == 1

    def test_comparison_operators(self, authors):
        filtered = select(authors, "author.author_id", ">", "SoumenC")
        assert {row[0] for row in filtered.rows} == {"SunitaS"}

    def test_unknown_operator_rejected(self, authors):
        with pytest.raises(BrowseError):
            select(authors, "author.name", "~", "x")

    def test_nulls_never_match(self):
        relation = Relation(["c"], [(None,), (1,)])
        assert len(select(relation, "c", "=", 1)) == 1
        assert len(select(relation, "c", "!=", 1)) == 0

    def test_type_mismatch_is_false_not_error(self):
        relation = Relation(["c"], [("text",), (1,)])
        filtered = select(relation, "c", "<", 5)
        assert filtered.rows == [(1,)]

    def test_select_where_predicate(self, authors):
        filtered = select_where(authors, lambda row: "sarawagi" in row[1].lower())
        assert len(filtered) == 1


class TestJoin:
    def test_forward_join_follows_fk(self, figure1_db, writes):
        fk = figure1_db.table("writes").schema.foreign_keys[0]
        joined = join_fk(figure1_db, writes, fk)
        assert "author.name" in joined.columns
        assert len(joined) == 3
        # Provenance now covers both base tables.
        assert all(len(p) == 2 for p in joined.provenance)

    def test_reverse_join_fans_out(self, figure1_db, authors):
        fk = figure1_db.table("writes").schema.foreign_keys[0]
        joined = join_fk(figure1_db, authors, fk, reverse=True)
        # Every author wrote exactly one paper here.
        assert len(joined) == 3
        assert "writes.paper_id" in joined.columns

    def test_join_drops_unmatched(self, figure1_db):
        figure1_db.insert("author", ["Lonely", "No Papers"])
        authors = from_table(figure1_db.table("author"))
        fk = figure1_db.table("writes").schema.foreign_keys[0]
        joined = join_fk(figure1_db, authors, fk, reverse=True)
        assert all("Lonely" not in row for row in joined.rows)


class TestGroupBy:
    def test_distinct_values_and_counts(self, writes):
        grouping = group_by(writes, "writes.paper_id")
        assert grouping.distinct_values() == ["ChakrabartiSD98"]
        assert grouping.count("ChakrabartiSD98") == 3

    def test_expand(self, writes):
        grouping = group_by(writes, "writes.author_id")
        expanded = grouping.expand("SunitaS")
        assert len(expanded) == 1
        assert grouping.expand("nope").rows == []


class TestSort:
    def test_ascending_descending(self, authors):
        ascending = sort_by(authors, "author.name")
        names = [row[1] for row in ascending.rows]
        assert names == sorted(names)
        descending = sort_by(authors, "author.name", descending=True)
        assert [row[1] for row in descending.rows] == sorted(names, reverse=True)

    def test_nulls_last(self):
        relation = Relation(["c"], [(None,), (2,), (1,)])
        ordered = sort_by(relation, "c")
        assert [row[0] for row in ordered.rows] == [1, 2, None]

    def test_sort_is_stable(self):
        relation = Relation(["a", "b"], [(1, "x"), (1, "y"), (0, "z")])
        ordered = sort_by(relation, "a")
        assert [row[1] for row in ordered.rows] == ["z", "x", "y"]


class TestPagination:
    def test_pages(self, authors):
        page1 = paginate(authors, 1, 2)
        page2 = paginate(authors, 2, 2)
        assert len(page1) == 2 and len(page2) == 1
        assert page_count(authors, 2) == 2

    def test_out_of_range_page_is_empty(self, authors):
        assert len(paginate(authors, 5, 2)) == 0

    def test_bad_arguments_rejected(self, authors):
        with pytest.raises(BrowseError):
            paginate(authors, 0, 2)
        with pytest.raises(BrowseError):
            page_count(authors, 0)

    def test_empty_relation_has_one_page(self):
        assert page_count(Relation(["c"], []), 10) == 1


class TestRelationInvariants:
    def test_provenance_length_checked(self):
        with pytest.raises(BrowseError):
            Relation(["c"], [(1,)], [(), ()])

    def test_ambiguous_unqualified_name_rejected(self, figure1_db, writes):
        fk = figure1_db.table("writes").schema.foreign_keys[0]
        joined = join_fk(figure1_db, writes, fk)
        # author_id exists in both writes and author.
        with pytest.raises(UnknownColumnError):
            joined.column_position("author_id")
