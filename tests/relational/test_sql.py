"""Unit tests for the SQL subset: parsing, execution, failure modes."""

import pytest

from repro.errors import IntegrityError, SQLSyntaxError
from repro.relational import Database, execute_script, execute_sql
from repro.relational.sql import tokenize


@pytest.fixture
def db():
    database = Database("sql-test")
    execute_sql(
        database,
        "CREATE TABLE item (id INTEGER PRIMARY KEY, name TEXT NOT NULL, "
        "price REAL, active BOOLEAN)",
    )
    return database


class TestTokenizer:
    def test_strings_with_escapes(self):
        assert tokenize("'it''s'") == ["'it''s'"]

    def test_numbers_and_operators(self):
        assert tokenize("a >= 1.5") == ["a", ">=", "1.5"]

    def test_unlexable_input_rejected(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("price = $5")


class TestCreateTable:
    def test_inline_and_table_level_constraints(self):
        database = Database("x")
        execute_script(
            database,
            """
            CREATE TABLE a (id TEXT PRIMARY KEY);
            CREATE TABLE b (
                x TEXT NOT NULL,
                y TEXT REFERENCES a(id),
                PRIMARY KEY (x),
                FOREIGN KEY (y) REFERENCES a(id)
            );
            """,
        )
        schema = database.table("b").schema
        assert schema.primary_key == ("x",)
        assert len(schema.foreign_keys) == 2

    def test_varchar_length_swallowed(self):
        database = Database("x")
        execute_sql(database, "CREATE TABLE t (s VARCHAR(80))")
        assert database.table("t").schema.columns[0].datatype.name == "TEXT"

    def test_duplicate_primary_key_clause_rejected(self):
        database = Database("x")
        with pytest.raises(SQLSyntaxError):
            execute_sql(
                database,
                "CREATE TABLE t (a TEXT, PRIMARY KEY (a), PRIMARY KEY (a))",
            )

    def test_keyword_as_identifier_rejected(self):
        database = Database("x")
        with pytest.raises(SQLSyntaxError):
            execute_sql(database, "CREATE TABLE select (a TEXT)")


class TestInsert:
    def test_positional(self, db):
        rid = execute_sql(db, "INSERT INTO item VALUES (1, 'hammer', 9.5, TRUE)")
        assert db.row(rid)["name"] == "hammer"

    def test_named_columns(self, db):
        rid = execute_sql(db, "INSERT INTO item (id, name) VALUES (2, 'nail')")
        row = db.row(rid)
        assert row["price"] is None and row["active"] is None

    def test_null_literal(self, db):
        rid = execute_sql(db, "INSERT INTO item VALUES (3, 'x', NULL, FALSE)")
        assert db.row(rid)["price"] is None

    def test_arity_mismatch(self, db):
        with pytest.raises(SQLSyntaxError):
            execute_sql(db, "INSERT INTO item (id) VALUES (1, 'x')")

    def test_string_escape_round_trip(self, db):
        rid = execute_sql(db, "INSERT INTO item VALUES (4, 'bob''s', 1.0, TRUE)")
        assert db.row(rid)["name"] == "bob's"

    def test_constraint_violation_propagates(self, db):
        execute_sql(db, "INSERT INTO item VALUES (1, 'a', 1.0, TRUE)")
        with pytest.raises(IntegrityError):
            execute_sql(db, "INSERT INTO item VALUES (1, 'b', 1.0, TRUE)")


class TestSelect:
    @pytest.fixture(autouse=True)
    def rows(self, db):
        execute_script(
            db,
            """
            INSERT INTO item VALUES (1, 'hammer', 9.5, TRUE);
            INSERT INTO item VALUES (2, 'nail', 0.1, TRUE);
            INSERT INTO item VALUES (3, 'saw', 14.0, FALSE);
            """,
        )

    def test_star(self, db):
        relation = execute_sql(db, "SELECT * FROM item")
        assert len(relation) == 3
        assert relation.columns[0] == "item.id"

    def test_projection(self, db):
        relation = execute_sql(db, "SELECT name FROM item")
        assert relation.columns == ["item.name"]

    def test_where_and_chain(self, db):
        relation = execute_sql(
            db, "SELECT name FROM item WHERE price > 1.0 AND active = TRUE"
        )
        assert [row[0] for row in relation.rows] == ["hammer"]

    def test_order_by_desc_limit(self, db):
        relation = execute_sql(
            db, "SELECT name FROM item ORDER BY price DESC LIMIT 2"
        )
        assert [row[0] for row in relation.rows] == ["saw", "hammer"]

    def test_limit_zero(self, db):
        relation = execute_sql(db, "SELECT * FROM item LIMIT 0")
        assert len(relation) == 0

    def test_string_comparison(self, db):
        relation = execute_sql(db, "SELECT id FROM item WHERE name = 'saw'")
        assert relation.rows == [(3,)]

    def test_trailing_tokens_rejected(self, db):
        with pytest.raises(SQLSyntaxError):
            execute_sql(db, "SELECT * FROM item garbage")

    def test_unsupported_verb(self, db):
        with pytest.raises(SQLSyntaxError):
            execute_sql(db, "VACUUM item")

    def test_empty_statement(self, db):
        with pytest.raises(SQLSyntaxError):
            execute_sql(db, "   ")


class TestScript:
    def test_semicolons_inside_strings(self, db):
        results = execute_script(
            db,
            "INSERT INTO item VALUES (9, 'semi;colon', 1.0, TRUE);"
            "SELECT name FROM item WHERE id = 9;",
        )
        assert results[-1].rows == [("semi;colon",)]

    def test_drop_table(self, db):
        execute_sql(db, "DROP TABLE item")
        assert "item" not in db.table_names
