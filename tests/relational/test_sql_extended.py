"""Tests for the extended SQL subset: UPDATE / DELETE / rich WHERE /
JOIN ... ON / aggregates with GROUP BY / HAVING / ORDER BY lists /
LIMIT-OFFSET / DISTINCT."""

from __future__ import annotations

import pytest

from repro.errors import IntegrityError, SQLSyntaxError
from repro.relational.database import Database
from repro.relational.sql import execute_script, execute_sql


@pytest.fixture
def db():
    database = Database("shop")
    execute_script(
        database,
        """
        CREATE TABLE category (
            id INTEGER PRIMARY KEY,
            name TEXT NOT NULL
        );
        CREATE TABLE item (
            id INTEGER PRIMARY KEY,
            name TEXT NOT NULL,
            price REAL,
            category_id INTEGER REFERENCES category(id)
        );
        INSERT INTO category VALUES (1, 'tools');
        INSERT INTO category VALUES (2, 'paint');
        INSERT INTO item VALUES (1, 'hammer', 9.5, 1);
        INSERT INTO item VALUES (2, 'saw', 19.0, 1);
        INSERT INTO item VALUES (3, 'roller', 4.0, 2);
        INSERT INTO item VALUES (4, 'mystery', NULL, NULL);
        """,
    )
    return database


class TestWhereExpressions:
    def test_or(self, db):
        relation = execute_sql(
            db, "SELECT name FROM item WHERE price < 5.0 OR price > 15.0"
        )
        assert sorted(r[0] for r in relation.rows) == ["roller", "saw"]

    def test_parentheses_change_binding(self, db):
        relation = execute_sql(
            db,
            "SELECT name FROM item "
            "WHERE (price < 5.0 OR price > 15.0) AND category_id = 1",
        )
        assert [r[0] for r in relation.rows] == ["saw"]

    def test_not(self, db):
        relation = execute_sql(
            db, "SELECT name FROM item WHERE NOT price > 5.0"
        )
        # NULL price is unknown, NOT unknown stays unknown: excluded.
        assert [r[0] for r in relation.rows] == ["roller"]

    def test_like(self, db):
        relation = execute_sql(
            db, "SELECT name FROM item WHERE name LIKE '%er'"
        )
        assert sorted(r[0] for r in relation.rows) == ["hammer", "roller"]

    def test_not_like(self, db):
        relation = execute_sql(
            db, "SELECT name FROM item WHERE name NOT LIKE '%er'"
        )
        assert sorted(r[0] for r in relation.rows) == ["mystery", "saw"]

    def test_in_list(self, db):
        relation = execute_sql(
            db, "SELECT name FROM item WHERE id IN (1, 3)"
        )
        assert sorted(r[0] for r in relation.rows) == ["hammer", "roller"]

    def test_not_in(self, db):
        relation = execute_sql(
            db, "SELECT name FROM item WHERE id NOT IN (1, 2, 3)"
        )
        assert [r[0] for r in relation.rows] == ["mystery"]

    def test_is_null(self, db):
        relation = execute_sql(
            db, "SELECT name FROM item WHERE price IS NULL"
        )
        assert [r[0] for r in relation.rows] == ["mystery"]

    def test_is_not_null(self, db):
        relation = execute_sql(
            db, "SELECT COUNT(*) FROM item WHERE price IS NOT NULL"
        )
        assert relation.rows == [(3,)]

    def test_between(self, db):
        relation = execute_sql(
            db, "SELECT name FROM item WHERE price BETWEEN 4.0 AND 10.0"
        )
        assert sorted(r[0] for r in relation.rows) == ["hammer", "roller"]

    def test_arithmetic_in_where(self, db):
        relation = execute_sql(
            db, "SELECT name FROM item WHERE price * 2 > 30"
        )
        assert [r[0] for r in relation.rows] == ["saw"]

    def test_column_to_column_comparison(self, db):
        relation = execute_sql(
            db, "SELECT name FROM item WHERE category_id < id"
        )
        assert sorted(r[0] for r in relation.rows) == ["roller", "saw"]

    def test_negative_literal(self, db):
        relation = execute_sql(
            db, "SELECT name FROM item WHERE price > -1"
        )
        assert len(relation) == 3  # NULL price excluded


class TestUpdate:
    def test_update_all_rows(self, db):
        count = execute_sql(db, "UPDATE item SET price = 1.0")
        assert count == 4
        relation = execute_sql(db, "SELECT DISTINCT price FROM item")
        assert relation.rows == [(1.0,)]

    def test_update_where(self, db):
        count = execute_sql(
            db, "UPDATE item SET price = 99.0 WHERE name = 'saw'"
        )
        assert count == 1
        relation = execute_sql(db, "SELECT price FROM item WHERE id = 2")
        assert relation.rows == [(99.0,)]

    def test_update_expression_uses_old_values(self, db):
        execute_sql(db, "UPDATE item SET price = price + 1.0 WHERE id = 1")
        relation = execute_sql(db, "SELECT price FROM item WHERE id = 1")
        assert relation.rows == [(10.5,)]

    def test_update_multiple_columns(self, db):
        execute_sql(
            db, "UPDATE item SET name = 'renamed', price = 0.5 WHERE id = 3"
        )
        relation = execute_sql(db, "SELECT name, price FROM item WHERE id = 3")
        assert relation.rows == [("renamed", 0.5)]

    def test_update_to_null(self, db):
        execute_sql(db, "UPDATE item SET price = NULL WHERE id = 1")
        relation = execute_sql(db, "SELECT price FROM item WHERE id = 1")
        assert relation.rows == [(None,)]

    def test_update_fk_to_valid_target(self, db):
        execute_sql(db, "UPDATE item SET category_id = 2 WHERE id = 1")
        relation = execute_sql(
            db, "SELECT COUNT(*) FROM item WHERE category_id = 2"
        )
        assert relation.rows == [(2,)]

    def test_update_fk_to_dangling_target_refused(self, db):
        with pytest.raises(IntegrityError):
            execute_sql(db, "UPDATE item SET category_id = 99 WHERE id = 1")
        # The tuple is unchanged after the failed update.
        relation = execute_sql(db, "SELECT category_id FROM item WHERE id = 1")
        assert relation.rows == [(1,)]

    def test_update_referenced_pk_refused(self, db):
        with pytest.raises(IntegrityError):
            execute_sql(db, "UPDATE category SET id = 9 WHERE id = 1")

    def test_update_unreferenced_pk_allowed(self, db):
        execute_sql(db, "UPDATE item SET id = 40 WHERE id = 4")
        relation = execute_sql(db, "SELECT name FROM item WHERE id = 40")
        assert relation.rows == [("mystery",)]

    def test_update_unknown_column_rejected(self, db):
        with pytest.raises(Exception):
            execute_sql(db, "UPDATE item SET nonexistent = 1")

    def test_update_reverse_index_follows_fk_change(self, db):
        """After moving an item between categories the reverse-reference
        index (and thus BANKS indegrees) must follow."""
        old_target = ("category", 0)
        new_target = ("category", 1)
        before = db.indegree(old_target)
        execute_sql(db, "UPDATE item SET category_id = 2 WHERE id = 1")
        assert db.indegree(old_target) == before - 1
        assert db.indegree(new_target) == 2


class TestDelete:
    def test_delete_where(self, db):
        count = execute_sql(db, "DELETE FROM item WHERE price IS NULL")
        assert count == 1
        assert len(db.table("item")) == 3

    def test_delete_all(self, db):
        count = execute_sql(db, "DELETE FROM item")
        assert count == 4
        assert len(db.table("item")) == 0

    def test_delete_referenced_row_refused(self, db):
        with pytest.raises(IntegrityError):
            execute_sql(db, "DELETE FROM category WHERE id = 1")

    def test_delete_after_referencing_rows_gone(self, db):
        execute_sql(db, "DELETE FROM item WHERE category_id = 1")
        count = execute_sql(db, "DELETE FROM category WHERE id = 1")
        assert count == 1

    def test_delete_self_referencing_batch(self):
        """Rows that reference each other within one DELETE batch are
        retried until the batch succeeds."""
        database = Database("emp")
        execute_script(
            database,
            """
            CREATE TABLE employee (
                id INTEGER PRIMARY KEY,
                boss_id INTEGER REFERENCES employee(id)
            );
            INSERT INTO employee VALUES (1, NULL);
            INSERT INTO employee VALUES (2, 1);
            INSERT INTO employee VALUES (3, 2);
            """,
        )
        count = execute_sql(database, "DELETE FROM employee")
        assert count == 3


class TestJoin:
    def test_equi_join(self, db):
        relation = execute_sql(
            db,
            "SELECT item.name, category.name FROM item "
            "JOIN category ON item.category_id = category.id "
            "ORDER BY item.name",
        )
        assert relation.rows == [
            ("hammer", "tools"),
            ("roller", "paint"),
            ("saw", "tools"),
        ]

    def test_join_null_fk_drops_row(self, db):
        relation = execute_sql(
            db,
            "SELECT item.name FROM item "
            "JOIN category ON item.category_id = category.id",
        )
        names = [r[0] for r in relation.rows]
        assert "mystery" not in names

    def test_inner_join_keyword(self, db):
        relation = execute_sql(
            db,
            "SELECT COUNT(*) FROM item "
            "INNER JOIN category ON item.category_id = category.id",
        )
        assert relation.rows == [(3,)]

    def test_join_with_general_predicate(self, db):
        """A non-equi ON condition falls back to the nested-loop join."""
        relation = execute_sql(
            db,
            "SELECT item.name FROM item "
            "JOIN category ON item.category_id = category.id "
            "AND category.name LIKE 't%'",
        )
        assert sorted(r[0] for r in relation.rows) == ["hammer", "saw"]

    def test_join_then_where(self, db):
        relation = execute_sql(
            db,
            "SELECT item.name FROM item "
            "JOIN category ON item.category_id = category.id "
            "WHERE category.name = 'paint'",
        )
        assert relation.rows == [("roller",)]

    def test_join_provenance_tracks_both_tables(self, db):
        relation = execute_sql(
            db,
            "SELECT item.name FROM item "
            "JOIN category ON item.category_id = category.id",
        )
        for provenance in relation.provenance:
            tables = {rid[0] for rid in provenance}
            assert tables == {"item", "category"}


class TestAggregates:
    def test_count_star(self, db):
        relation = execute_sql(db, "SELECT COUNT(*) FROM item")
        assert relation.columns == ["count(*)"]
        assert relation.rows == [(4,)]

    def test_count_column_ignores_nulls(self, db):
        relation = execute_sql(db, "SELECT COUNT(price) FROM item")
        assert relation.rows == [(3,)]

    def test_sum_avg_min_max(self, db):
        relation = execute_sql(
            db, "SELECT SUM(price), AVG(price), MIN(price), MAX(price) FROM item"
        )
        total, average, low, high = relation.rows[0]
        assert total == pytest.approx(32.5)
        assert average == pytest.approx(32.5 / 3)
        assert low == 4.0
        assert high == 19.0

    def test_aggregate_alias(self, db):
        relation = execute_sql(db, "SELECT COUNT(*) AS n FROM item")
        assert relation.columns == ["n"]

    def test_group_by(self, db):
        relation = execute_sql(
            db,
            "SELECT category_id, COUNT(*) FROM item "
            "WHERE category_id IS NOT NULL GROUP BY category_id "
            "ORDER BY category_id",
        )
        assert relation.rows == [(1, 2), (2, 1)]

    def test_group_by_having(self, db):
        relation = execute_sql(
            db,
            "SELECT category_id, COUNT(*) FROM item "
            "WHERE category_id IS NOT NULL GROUP BY category_id "
            "HAVING COUNT(*) > 1",
        )
        assert relation.rows == [(1, 2)]

    def test_having_on_alias(self, db):
        relation = execute_sql(
            db,
            "SELECT category_id, COUNT(*) AS n FROM item "
            "WHERE category_id IS NOT NULL GROUP BY category_id "
            "HAVING n > 1",
        )
        assert relation.rows == [(1, 2)]

    def test_order_by_aggregate(self, db):
        relation = execute_sql(
            db,
            "SELECT category_id, COUNT(*) FROM item "
            "WHERE category_id IS NOT NULL GROUP BY category_id "
            "ORDER BY COUNT(*) DESC",
        )
        assert relation.rows == [(1, 2), (2, 1)]

    def test_ungrouped_column_with_aggregate_rejected(self, db):
        with pytest.raises(SQLSyntaxError):
            execute_sql(db, "SELECT name, COUNT(*) FROM item")

    def test_select_star_with_group_by_rejected(self, db):
        with pytest.raises(SQLSyntaxError):
            execute_sql(db, "SELECT * FROM item GROUP BY category_id")

    def test_sum_star_rejected(self, db):
        with pytest.raises(SQLSyntaxError):
            execute_sql(db, "SELECT SUM(*) FROM item")

    def test_aggregate_over_empty_table(self, db):
        execute_sql(db, "DELETE FROM item")
        relation = execute_sql(db, "SELECT COUNT(*), SUM(price) FROM item")
        assert relation.rows == [(0, None)]

    def test_having_without_group_rejected(self, db):
        with pytest.raises(SQLSyntaxError):
            execute_sql(db, "SELECT name FROM item HAVING name = 'saw'")


class TestOrderLimitDistinct:
    def test_multi_column_order(self, db):
        execute_sql(db, "INSERT INTO item VALUES (5, 'saw', 2.0, 2)")
        relation = execute_sql(
            db,
            "SELECT name, price FROM item WHERE price IS NOT NULL "
            "ORDER BY name ASC, price DESC",
        )
        assert relation.rows == [
            ("hammer", 9.5),
            ("roller", 4.0),
            ("saw", 19.0),
            ("saw", 2.0),
        ]

    def test_limit_offset(self, db):
        relation = execute_sql(
            db, "SELECT id FROM item ORDER BY id LIMIT 2 OFFSET 1"
        )
        assert relation.rows == [(2,), (3,)]

    def test_offset_past_end(self, db):
        relation = execute_sql(
            db, "SELECT id FROM item ORDER BY id LIMIT 5 OFFSET 10"
        )
        assert relation.rows == []

    def test_distinct(self, db):
        execute_sql(db, "INSERT INTO item VALUES (6, 'hammer', 9.5, 1)")
        relation = execute_sql(db, "SELECT DISTINCT name, price FROM item")
        names = [r[0] for r in relation.rows]
        assert names.count("hammer") == 1

    def test_negative_limit_rejected(self, db):
        with pytest.raises(SQLSyntaxError):
            execute_sql(db, "SELECT id FROM item LIMIT -1")

    def test_negative_offset_rejected(self, db):
        with pytest.raises(SQLSyntaxError):
            execute_sql(db, "SELECT id FROM item LIMIT 1 OFFSET -2")


class TestSyntaxFailures:
    @pytest.mark.parametrize(
        "statement",
        [
            "SELECT name FROM item WHERE",
            "SELECT name FROM item WHERE name LIKE",
            "SELECT name FROM item WHERE id IN ()",
            "SELECT name FROM item WHERE id BETWEEN 1",
            "UPDATE item",
            "UPDATE item SET",
            "UPDATE item SET name",
            "DELETE item",
            "SELECT name FROM item JOIN",
            "SELECT name FROM item JOIN category",
            "SELECT name FROM item GROUP category_id",
        ],
    )
    def test_malformed_statements(self, db, statement):
        with pytest.raises(SQLSyntaxError):
            execute_sql(db, statement)

    def test_where_unknown_column(self, db):
        with pytest.raises(Exception):
            execute_sql(db, "SELECT name FROM item WHERE ghost = 1")


class TestTableUpdatePrimitives:
    """Direct Table.update / Database.update behaviour."""

    def test_table_update_preserves_rid(self, db):
        table = db.table("category")
        table.update(0, [1, "hardware"])
        assert table.row(0)["name"] == "hardware"

    def test_table_update_pk_reindexes(self, db):
        table = db.table("item")
        table.update(3, [44, "mystery", None, None])
        assert table.lookup_pk((44,)).rid == 3
        assert table.lookup_pk((4,)) is None

    def test_table_update_duplicate_pk_rejected(self, db):
        table = db.table("item")
        with pytest.raises(IntegrityError):
            table.update(3, [1, "mystery", None, None])

    def test_table_update_null_pk_rejected(self, db):
        table = db.table("item")
        with pytest.raises(IntegrityError):
            table.update(3, [None, "mystery", None, None])

    def test_table_update_not_null_enforced(self, db):
        table = db.table("item")
        with pytest.raises(IntegrityError):
            table.update(3, [4, None, None, None])

    def test_database_update_rollback_restores_reverse_refs(self, db):
        """A failed FK re-validation leaves the reverse index intact."""
        target = ("category", 0)
        before = db.indegree(target)
        with pytest.raises(IntegrityError):
            db.update(("item", 0), {"category_id": 77})
        assert db.indegree(target) == before
