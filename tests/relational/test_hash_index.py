"""Tests for secondary hash indexes."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.relational import Database, HashIndex, execute_script
from repro.relational.schema import Column, TableSchema
from repro.relational.types import INTEGER, TEXT


@pytest.fixture
def db():
    database = Database("idx")
    execute_script(
        database,
        """
        CREATE TABLE emp (
            id INTEGER PRIMARY KEY, name TEXT, dept TEXT, grade INTEGER
        );
        INSERT INTO emp VALUES (1, 'Ann', 'CS', 2);
        INSERT INTO emp VALUES (2, 'Bob', 'CS', 1);
        INSERT INTO emp VALUES (3, 'Cid', 'EE', 2);
        """,
    )
    return database


class TestHashIndex:
    def test_single_column_lookup(self, db):
        index = HashIndex(db.table("emp"), ["dept"])
        assert {row["name"] for row in index.lookup(["CS"])} == {"Ann", "Bob"}
        assert index.lookup(["ME"]) == []

    def test_composite_key_lookup(self, db):
        index = HashIndex(db.table("emp"), ["dept", "grade"])
        rows = index.lookup(["CS", 2])
        assert [row["name"] for row in rows] == ["Ann"]

    def test_incremental_add(self, db):
        table = db.table("emp")
        index = HashIndex(table, ["dept"])
        rid = db.insert("emp", [4, "Dee", "EE", 3])
        index.add(table.row(rid[1]))
        assert {row["name"] for row in index.lookup(["EE"])} == {"Cid", "Dee"}

    def test_remove(self, db):
        table = db.table("emp")
        index = HashIndex(table, ["dept"])
        index.remove(table.row(0))
        assert {row["name"] for row in index.lookup(["CS"])} == {"Bob"}
        # Removing again is a no-op.
        index.remove(table.row(0))

    def test_deleted_rows_filtered_from_lookup(self, db):
        table = db.table("emp")
        index = HashIndex(table, ["dept"])
        table.delete(2)  # Cid, without telling the index
        assert index.lookup(["EE"]) == []

    def test_len_and_keys(self, db):
        index = HashIndex(db.table("emp"), ["dept"])
        assert len(index) == 3
        assert set(index.keys()) == {("CS",), ("EE",)}

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 5), st.integers(0, 3)),
            min_size=0,
            max_size=30,
        )
    )
    def test_lookup_agrees_with_scan(self, pairs):
        """Property: index lookup == filtered scan for every key."""
        database = Database("prop")
        database.create_table(
            TableSchema("t", [Column("a", INTEGER), Column("b", INTEGER)])
        )
        for a, b in pairs:
            database.insert("t", [a, b])
        index = HashIndex(database.table("t"), ["a"])
        for key in {a for a, _b in pairs}:
            expected = [
                row.rid
                for row in database.table("t").scan()
                if row["a"] == key
            ]
            assert [row.rid for row in index.lookup([key])] == expected
