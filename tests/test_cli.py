"""Tests for the command-line interface and the result cache."""

from __future__ import annotations

import io

import pytest

from repro.cli import load_database, main
from repro.core.cache import CachedBanks, ResultCache
from repro.errors import QueryError, ReproError
from repro.relational import Database, execute_script
from repro.relational.sqlite_adapter import dump_to_sqlite


def run_cli(*argv: str):
    out = io.StringIO()
    status = main(list(argv), out=out)
    return status, out.getvalue()


class TestLoadDatabase:
    def test_demo_datasets(self):
        for name in ("thesis", "tpcd", "university"):
            database = load_database(f"demo:{name}")
            assert database.total_rows() > 0

    def test_unknown_demo(self):
        with pytest.raises(ReproError):
            load_database("demo:ghost")

    def test_unknown_scheme(self):
        with pytest.raises(ReproError):
            load_database("oracle:prod")

    def test_sqlite_round_trip(self, tmp_path):
        database = Database("t")
        execute_script(
            database,
            """
            CREATE TABLE item (id INTEGER PRIMARY KEY, name TEXT);
            INSERT INTO item VALUES (1, 'hammer');
            """,
        )
        path = str(tmp_path / "t.db")
        dump_to_sqlite(database, path)
        loaded = load_database(f"sqlite:{path}")
        assert loaded.total_rows() == 1


class TestCommands:
    def test_stats(self):
        status, output = run_cli("stats", "demo:university")
        assert status == 0
        assert "graph nodes" in output
        assert "index terms" in output

    def test_search(self):
        status, output = run_cli(
            "search", "demo:university", "alice", "seminar", "-k", "3"
        )
        assert status == 0
        assert "relevance=" in output
        assert "answer(s) in" in output

    def test_search_no_answers(self):
        status, output = run_cli("search", "demo:university", "qqqzzz")
        assert status == 0
        assert "no answers" in output

    def test_serve_check(self):
        status, output = run_cli("serve", "demo:university", "--check")
        assert status == 0
        assert "200" in output

    def test_serve_check_with_trace_knobs(self):
        status, output = run_cli(
            "serve",
            "demo:university",
            "--check",
            "--trace-sample",
            "0.5",
            "--slow-query-ms",
            "100",
            "--trace-buffer",
            "32",
        )
        assert status == 0
        assert "GET /trace -> 200" in output
        assert "GET /debug/slow -> 200" in output

    def test_serve_rejects_bad_trace_sample(self):
        status = main(
            ["serve", "demo:university", "--check", "--trace-sample", "bogus"],
            out=io.StringIO(),
        )
        assert status == 1

    def test_trace_prints_span_tree_and_profile(self):
        status, output = run_cli("trace", "demo:university", "alice", "-k", "3")
        assert status == 0
        assert "trace " in output
        assert "engine.execute" in output
        assert "search.kernel" in output
        assert "profile: heap_pops=" in output
        assert "answer(s) via engine" in output

    def test_trace_sharded_topology(self):
        status, output = run_cli(
            "trace", "demo:university", "alice", "--shards", "2"
        )
        assert status == 0
        assert "router.search" in output
        assert "shard.search" in output

    def test_sweep_requires_bibliography(self):
        status = main(["sweep", "demo:university"], out=io.StringIO())
        assert status == 1

    def test_error_paths_return_one(self):
        status = main(["stats", "demo:ghost"], out=io.StringIO())
        assert status == 1


class TestWalCommands:
    """The durable-log surface: serve --wal/--follow and recover."""

    def _write_epochs(self, wal: str) -> None:
        """Publish a few mutation epochs for demo:university into a
        WAL, the way banks serve --live --wal would."""
        from repro.core.incremental import IncrementalBANKS
        from repro.serve.snapshot import SnapshotStore

        store = SnapshotStore(
            IncrementalBANKS(load_database("demo:university")),
            copy_mode="delta",
            wal=wal,
        )
        store.mutate(
            lambda f: f.insert("student", ["S901", "Walter Logmann", "BIGDEPT"])
        )
        store.mutate(
            lambda f: f.update(("student", 0), {"name": "Alice Hubward-Logg"})
        )

    def test_serve_live_with_wal_check(self, tmp_path):
        wal = str(tmp_path / "wal")
        status, output = run_cli(
            "serve", "demo:university", "--check", "--live", "--wal", wal
        )
        assert status == 0
        assert "GET /metrics -> 200" in output

    def test_serve_live_recovers_existing_wal(self, tmp_path):
        wal = str(tmp_path / "wal")
        self._write_epochs(wal)
        status, output = run_cli(
            "serve", "demo:university", "--check", "--live", "--wal", wal
        )
        assert status == 0
        assert "recovered 2 epoch(s)" in output

    def test_serve_follow_check(self, tmp_path):
        wal = str(tmp_path / "wal")
        self._write_epochs(wal)
        status, output = run_cli(
            "serve", "demo:university", "--check", "--follow", "--wal", wal
        )
        assert status == 0
        assert "replica caught up: 2 epoch(s) applied, lag 0" in output

    def test_recover_replays_and_spot_checks(self, tmp_path):
        wal = str(tmp_path / "wal")
        self._write_epochs(wal)
        status, output = run_cli(
            "recover",
            "demo:university",
            "--wal",
            wal,
            "--query",
            "walter logmann",
        )
        assert status == 0
        assert "recovered to  : epoch 2" in output
        assert "Walter Logmann" in output

    def test_wal_flag_combinations_are_validated(self, tmp_path):
        wal = str(tmp_path / "wal")
        # --follow without --wal
        assert run_cli("serve", "demo:university", "--check", "--follow")[0] == 1
        # --follow combined with another serving mode (it would be
        # silently ignored and serve stale base data forever)
        for conflict in ("--shards", "--live", "--inline"):
            argv = [
                "serve", "demo:university", "--check",
                "--follow", "--wal", wal, conflict,
            ]
            if conflict == "--shards":
                argv.append("2")
            assert run_cli(*argv)[0] == 1
        # --wal without --live/--follow
        assert (
            run_cli("serve", "demo:university", "--check", "--wal", wal)[0]
            == 1
        )
        # --wal with the deep copy mode
        assert (
            run_cli(
                "serve",
                "demo:university",
                "--check",
                "--live",
                "--wal",
                wal,
                "--copy-mode",
                "deep",
            )[0]
            == 1
        )
        # recover from a missing WAL directory
        assert (
            run_cli("recover", "demo:university", "--wal", wal)[0] == 1
        )


class TestResultCache:
    def test_lru_eviction(self):
        cache = ResultCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh a
        cache.put("c", 3)           # evicts b
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.stats.evictions == 1

    def test_stats_counters(self):
        cache = ResultCache()
        cache.get("missing")
        cache.put("x", 1)
        cache.get("x")
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_capacity_validation(self):
        with pytest.raises(QueryError):
            ResultCache(capacity=0)


@pytest.fixture
def cached_banks():
    database = Database("c")
    execute_script(
        database,
        """
        CREATE TABLE author (aid TEXT PRIMARY KEY, name TEXT NOT NULL);
        CREATE TABLE paper (pid TEXT PRIMARY KEY, title TEXT NOT NULL);
        CREATE TABLE writes (
            aid TEXT NOT NULL REFERENCES author(aid),
            pid TEXT NOT NULL REFERENCES paper(pid)
        );
        INSERT INTO author VALUES ('a1', 'ada lovelace');
        INSERT INTO paper VALUES ('p1', 'analytical engines');
        INSERT INTO writes VALUES ('a1', 'p1');
        """,
    )
    return CachedBanks(database, cache_capacity=8)


class TestCachedBanks:
    def test_second_search_hits_cache(self, cached_banks):
        first = cached_banks.search("ada engines")
        second = cached_banks.search("ada engines")
        assert cached_banks.cache.stats.hits == 1
        assert [a.tree for a in first] == [a.tree for a in second]

    def test_query_normalisation_shares_entries(self, cached_banks):
        cached_banks.search("ADA   Engines")
        cached_banks.search("ada engines")
        assert cached_banks.cache.stats.hits == 1

    def test_different_scoring_misses(self, cached_banks):
        from repro.core.scoring import ScoringConfig

        cached_banks.search("ada")
        cached_banks.search("ada", scoring=ScoringConfig(lambda_weight=0.8))
        assert cached_banks.cache.stats.hits == 0

    def test_config_overrides_bypass_cache(self, cached_banks):
        cached_banks.search("ada", output_heap_size=50)
        cached_banks.search("ada", output_heap_size=50)
        assert cached_banks.cache.stats.requests == 0

    def test_invalidate(self, cached_banks):
        cached_banks.search("ada")
        cached_banks.invalidate()
        cached_banks.search("ada")
        assert cached_banks.cache.stats.hits == 0
