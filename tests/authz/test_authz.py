"""Tests for the authorization layer: policy semantics, view
materialisation with cascade, and the no-leak search guarantee."""

from __future__ import annotations

import pytest

from repro.authz import (
    AccessPolicy,
    PolicySet,
    Principal,
    SecureBanks,
    authorized_view,
)
from repro.errors import AuthorizationError
from repro.relational import Database, execute_script


@pytest.fixture
def hospital():
    """Doctors, patients (with a sensitive diagnosis), and visits."""
    database = Database("hospital")
    execute_script(
        database,
        """
        CREATE TABLE doctor (did TEXT PRIMARY KEY, name TEXT NOT NULL);
        CREATE TABLE patient (
            pid TEXT PRIMARY KEY,
            name TEXT NOT NULL,
            diagnosis TEXT,
            ward TEXT
        );
        CREATE TABLE visit (
            did TEXT NOT NULL REFERENCES doctor(did),
            pid TEXT NOT NULL REFERENCES patient(pid),
            note TEXT
        );
        INSERT INTO doctor VALUES ('d1', 'doctor house');
        INSERT INTO doctor VALUES ('d2', 'doctor grey');
        INSERT INTO patient VALUES ('p1', 'john smith', 'lupus', 'east');
        INSERT INTO patient VALUES ('p2', 'mary jones', 'flu', 'west');
        INSERT INTO visit VALUES ('d1', 'p1', 'followup scan');
        INSERT INTO visit VALUES ('d2', 'p2', 'routine check');
        """,
    )
    return database


@pytest.fixture
def policies():
    policy_set = PolicySet()
    policy_set.grant("admin", AccessPolicy(default="allow"))
    policy_set.grant(
        "receptionist",
        AccessPolicy(default="allow").hide_columns("patient", "diagnosis"),
    )
    policy_set.grant(
        "east-nurse",
        AccessPolicy(default="allow").restrict_rows(
            "patient", lambda row: row["ward"] == "east"
        ),
    )
    policy_set.grant(
        "stats-only",
        AccessPolicy(default="deny").allow_table("doctor"),
    )
    return policy_set


class TestPolicySemantics:
    def test_default_allow(self):
        policy = AccessPolicy()
        assert policy.table_visible("anything")

    def test_default_deny(self):
        policy = AccessPolicy(default="deny")
        assert not policy.table_visible("anything")
        policy.allow_table("doctor")
        assert policy.table_visible("doctor")

    def test_deny_overrides_default_allow(self):
        policy = AccessPolicy().deny_table("patient")
        assert not policy.table_visible("patient")

    def test_invalid_default_rejected(self):
        with pytest.raises(AuthorizationError):
            AccessPolicy(default="maybe")

    def test_hide_columns_requires_columns(self):
        with pytest.raises(AuthorizationError):
            AccessPolicy().hide_columns("patient")

    def test_row_predicates_and_together(self, hospital):
        policy = (
            AccessPolicy()
            .restrict_rows("patient", lambda row: row["ward"] == "east")
            .restrict_rows("patient", lambda row: row["diagnosis"] == "flu")
        )
        rows = list(hospital.table("patient").scan())
        # p1 is east but lupus; p2 is flu but west: neither passes both.
        assert not any(policy.row_visible("patient", row) for row in rows)

    def test_duplicate_role_grant_rejected(self, policies):
        with pytest.raises(AuthorizationError):
            policies.grant("admin", AccessPolicy())

    def test_unknown_role_sees_nothing(self, policies, hospital):
        ghost = Principal.with_roles("ghost", "unknown-role")
        assert not policies.table_visible(ghost, "doctor")

    def test_permissive_union_of_roles(self, policies):
        both = Principal.with_roles("both", "stats-only", "east-nurse")
        # stats-only denies patient, east-nurse (default allow) sees it.
        assert policies.table_visible(both, "patient")

    def test_hidden_columns_intersect_across_roles(self, policies):
        clerk = Principal.with_roles("clerk", "receptionist")
        assert policies.hidden_columns(clerk, "patient") == {"diagnosis"}
        elevated = Principal.with_roles("elevated", "receptionist", "admin")
        # admin does not hide the column: the union of grants reveals it.
        assert policies.hidden_columns(elevated, "patient") == frozenset()


class TestAuthorizedView:
    def test_admin_sees_everything(self, hospital, policies):
        admin = Principal.with_roles("alice", "admin")
        view = authorized_view(hospital, policies, admin)
        assert view.total_rows() == hospital.total_rows()

    def test_denied_table_dropped(self, hospital, policies):
        stats = Principal.with_roles("bob", "stats-only")
        view = authorized_view(hospital, policies, stats)
        assert view.table_names == ["doctor"]

    def test_hidden_column_nulled(self, hospital, policies):
        clerk = Principal.with_roles("carol", "receptionist")
        view = authorized_view(hospital, policies, clerk)
        for row in view.table("patient").scan():
            assert row["diagnosis"] is None
        # Non-hidden columns intact.
        names = {row["name"] for row in view.table("patient").scan()}
        assert names == {"john smith", "mary jones"}

    def test_row_filter_applies(self, hospital, policies):
        nurse = Principal.with_roles("dan", "east-nurse")
        view = authorized_view(hospital, policies, nurse)
        patients = list(view.table("patient").scan())
        assert len(patients) == 1
        assert patients[0]["ward"] == "east"

    def test_cascade_removes_orphaned_references(self, hospital, policies):
        """Filtering out patient p2 must also remove d2's visit to p2."""
        nurse = Principal.with_roles("dan", "east-nurse")
        view = authorized_view(hospital, policies, nurse)
        visits = list(view.table("visit").scan())
        assert len(visits) == 1
        assert visits[0]["pid"] == "p1"

    def test_view_is_referentially_consistent(self, hospital, policies):
        nurse = Principal.with_roles("dan", "east-nurse")
        view = authorized_view(hospital, policies, nurse)
        view.check_integrity()  # must not raise

    def test_hiding_key_column_rejected(self, hospital):
        policies = PolicySet().grant(
            "bad", AccessPolicy().hide_columns("visit", "pid")
        )
        principal = Principal.with_roles("eve", "bad")
        with pytest.raises(AuthorizationError):
            authorized_view(hospital, policies, principal)

    def test_fk_into_invisible_table_dropped_from_schema(
        self, hospital, policies
    ):
        policies.grant(
            "no-patients", AccessPolicy().deny_table("patient")
        )
        principal = Principal.with_roles("frank", "no-patients")
        view = authorized_view(hospital, policies, principal)
        # visit survives but loses its FK to patient (and its rows keep
        # pid values as plain data).
        fks = view.schema.table("visit").foreign_keys
        assert all(fk.target_table != "patient" for fk in fks)

    def test_view_name_embeds_principal(self, hospital, policies):
        admin = Principal.with_roles("alice", "admin")
        view = authorized_view(hospital, policies, admin)
        assert "alice" in view.name


class TestSecureSearch:
    @pytest.fixture
    def secure(self, hospital, policies):
        return SecureBanks(hospital, policies)

    def test_admin_finds_diagnosis(self, secure):
        admin = Principal.with_roles("alice", "admin")
        answers = secure.search(admin, "lupus")
        assert answers

    def test_receptionist_cannot_find_diagnosis(self, secure):
        clerk = Principal.with_roles("carol", "receptionist")
        assert secure.search(clerk, "lupus") == []

    def test_nurse_cannot_reach_other_ward(self, secure):
        nurse = Principal.with_roles("dan", "east-nurse")
        assert secure.search(nurse, "mary") == []

    def test_no_leak_through_intermediate_nodes(self, secure):
        """A connection tree for the nurse must never pass through a
        filtered patient tuple, even as an intermediate node."""
        nurse = Principal.with_roles("dan", "east-nurse")
        view = secure.view_for(nurse)
        visible_names = {
            row["name"] for row in view.table("patient").scan()
        }
        for answer in secure.search(nurse, "doctor followup", max_results=10):
            for node in answer.tree.nodes:
                table_name, rid = node
                if table_name == "patient":
                    assert view.row(node)["name"] in visible_names

    def test_same_query_different_principals_differ(self, secure):
        admin = Principal.with_roles("alice", "admin")
        nurse = Principal.with_roles("dan", "east-nurse")
        admin_answers = secure.search(admin, "doctor")
        nurse_answers = secure.search(nurse, "doctor")
        assert len(admin_answers) >= len(nurse_answers)

    def test_engines_cached_per_principal(self, secure):
        admin = Principal.with_roles("alice", "admin")
        assert secure.engine_for(admin) is secure.engine_for(admin)

    def test_invalidate_rebuilds_view(self, secure, hospital):
        admin = Principal.with_roles("alice", "admin")
        assert secure.search(admin, "measles") == []
        execute_script(
            hospital,
            "INSERT INTO patient VALUES ('p3', 'new patient', 'measles', 'east')",
        )
        # Stale snapshot until invalidated.
        assert secure.search(admin, "measles") == []
        secure.invalidate(admin)
        assert secure.search(admin, "measles")

    def test_audit_log_records_searches(self, secure):
        admin = Principal.with_roles("alice", "admin")
        nurse = Principal.with_roles("dan", "east-nurse")
        secure.search(admin, "lupus")
        secure.search(nurse, "mary")
        assert len(secure.audit) == 2
        assert [r.principal for r in secure.audit.records()] == [
            "alice",
            "dan",
        ]
        assert secure.audit.records("dan")[0].answer_count == 0
