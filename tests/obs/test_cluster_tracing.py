"""End-to-end tracing through the cluster stack.

The ISSUE 6 acceptance criteria: a query against each of the four
topologies returns a :class:`QueryResult` whose trace reconstructs a
single rooted span tree (across thread *and* forked-worker backends),
and a deliberately slow query surfaces in the trace store / slow log
with its kernel profile populated.
"""

from __future__ import annotations

import json

import pytest

from repro.browse.app import BrowseApp
from repro.cluster import Cluster, ClusterSpec, QueryRequest
from repro.obs import span_tree

QUERY = "soumen sudarshan"

TOPOLOGIES = [
    ("single", {}),
    ("sharded", {"shards": 2}),
    ("replicated", {"replicas": 2}),
    ("sharded_replicated", {"shards": 2, "replicas": 2}),
]


def _names(node, out=None):
    out = [] if out is None else out
    out.append(node["span"]["name"])
    for child in node["children"]:
        _names(child, out)
    return out


@pytest.fixture(scope="module")
def database(bibliography_session):
    return bibliography_session[0]


class TestSpanTreePerTopology:
    @pytest.mark.parametrize("topology,extra", TOPOLOGIES)
    def test_single_rooted_tree(self, database, topology, extra):
        spec = ClusterSpec(
            topology=topology,
            shard_backend="thread",
            replica_backend="thread",
            **extra,
        )
        with Cluster(spec, database=database) as cluster:
            result = cluster.query(QueryRequest(QUERY, k=5))
        record = result.trace
        assert record is not None
        assert record.topology == topology
        assert record.query == QUERY
        roots = span_tree(record.spans)
        assert len(roots) == 1, [s["name"] for s in record.spans]
        assert roots[0]["span"]["name"] == "query"
        names = _names(roots[0])
        if topology == "single":
            assert "engine.execute" in names
        if "sharded" in topology:
            assert "router.search" in names
            assert "router.merge" in names
            assert names.count("shard.search") == 2
        if "replicated" in topology:
            assert "replicaset.dispatch" in names
        # Every span is closed and carries the one trace id.
        for span in record.spans:
            assert span["end"] is not None
            assert span["trace_id"] == record.trace_id
        # The kernel profile rode along and counted real work.
        assert result.profile is not None
        assert result.profile.heap_pops > 0
        assert result.profile.answers_emitted > 0
        assert record.profile["heap_pops"] == result.profile.heap_pops

    def test_forked_workers_reparent_into_one_tree(self, database):
        spec = ClusterSpec(
            topology="sharded", shards=2, shard_backend="process"
        )
        with Cluster(spec, database=database) as cluster:
            result = cluster.query(QueryRequest(QUERY, k=5))
        roots = span_tree(result.trace.spans)
        assert len(roots) == 1
        names = _names(roots[0])
        assert names.count("shard.search") == 2
        assert result.profile.heap_pops > 0

    def test_replica_process_backend_reparents(self, database):
        spec = ClusterSpec(
            topology="replicated", replicas=2, replica_backend="process"
        )
        with Cluster(spec, database=database) as cluster:
            cluster.start()
            result = cluster.query(QueryRequest(QUERY, k=5))
        roots = span_tree(result.trace.spans)
        assert len(roots) == 1
        assert "replica.search" in _names(roots[0])
        assert result.profile.heap_pops > 0


class TestSamplingKnobs:
    def test_off_disables_tracing(self, database):
        spec = ClusterSpec(trace_sample="off", slow_query_ms=None)
        with Cluster(spec, database=database) as cluster:
            result = cluster.query(QueryRequest(QUERY, k=3))
        assert result.trace is None
        assert result.profile is None
        assert len(result.answers) > 0

    def test_slow_mode_keeps_only_slow_queries(self, database):
        # A generous threshold: the query is fast, so nothing is kept…
        spec = ClusterSpec(trace_sample="slow", slow_query_ms=60_000.0)
        with Cluster(spec, database=database) as cluster:
            result = cluster.query(QueryRequest(QUERY, k=3))
            assert result.trace is not None  # the caller still gets it
            assert cluster.obs.store.stats()["stored"] == 0
        # …while a 0-ms threshold marks everything slow and keeps it.
        spec = ClusterSpec(trace_sample="slow", slow_query_ms=0.001)
        with Cluster(spec, database=database) as cluster:
            result = cluster.query(QueryRequest(QUERY, k=3))
            assert result.trace.slow
            slow = cluster.obs.store.slow()
            assert [r.trace_id for r in slow] == [result.trace.trace_id]
            assert slow[0].profile["heap_pops"] > 0

    def test_spec_validates_knobs(self):
        with pytest.raises(Exception):
            ClusterSpec(trace_sample="sometimes").validate()
        with pytest.raises(Exception):
            ClusterSpec(slow_query_ms=-1.0).validate()
        with pytest.raises(Exception):
            ClusterSpec(trace_buffer=0).validate()


class TestBrowseSurfaces:
    def test_trace_pages_and_slow_json(self, database):
        spec = ClusterSpec(
            topology="sharded", shards=2, slow_query_ms=0.001
        )
        with Cluster(spec, database=database) as cluster:
            result = cluster.query(QueryRequest(QUERY, k=3))
            app = BrowseApp(cluster=cluster)
            status, body, ctype = app.handle_full("/trace")
            assert status.startswith("200")
            assert ctype.startswith("text/html")
            assert result.trace.trace_id in body
            status, body, _ = app.handle_full(
                f"/trace/{result.trace.trace_id}"
            )
            assert status.startswith("200")
            assert "router.search" in body
            assert "profile:" in body
            status, body, _ = app.handle_full("/trace/0000000000000000")
            assert "No trace" in body
            status, body, ctype = app.handle_full("/debug/slow")
            assert ctype.startswith("application/json")
            payload = json.loads(body)
            assert payload["stats"]["slow_stored"] >= 1
            assert payload["slow"][0]["profile"]["heap_pops"] > 0

    def test_engine_owned_obs_without_cluster(self, biblio_banks_session):
        # A bare engine app: /trace resolves through engine.obs.
        from repro.obs import Observability
        from repro.serve import QueryEngine

        obs = Observability(sample="always")
        with QueryEngine(biblio_banks_session, obs=obs) as engine:
            engine.search(QUERY, max_results=3)
            app = BrowseApp(banks=biblio_banks_session, engine=engine)
            status, body, _ = app.handle_full("/trace")
            assert status.startswith("200")
            assert engine.obs.store.recent()
