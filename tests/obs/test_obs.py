"""Unit tests for ``repro.obs``: spans, traces, sampling, profiles,
events — the subsystem in isolation (cross-layer propagation is
covered by ``test_cluster_tracing``)."""

from __future__ import annotations

import io
import json
import logging

import pytest

from repro.errors import ReproError
from repro.obs import (
    EventLog,
    Observability,
    SearchProfile,
    Trace,
    TraceRecord,
    TraceStore,
    parse_sample,
    render_trace_tree,
    span_tree,
)


class TestParseSample:
    def test_modes(self):
        assert parse_sample("always") == "always"
        assert parse_sample("off") == "off"
        assert parse_sample("slow") == "slow"
        assert parse_sample("SLOW ") == "slow"

    def test_rates(self):
        assert parse_sample(0.25) == 0.25
        assert parse_sample("0.1") == 0.1
        assert parse_sample(1.0) == "always"
        assert parse_sample("1") == "always"
        assert parse_sample(0) == "off"
        assert parse_sample(-3) == "off"

    def test_garbage_rejected(self):
        with pytest.raises(ReproError):
            parse_sample("sometimes")


class TestTrace:
    def test_span_lifecycle_and_tree(self):
        trace = Trace()
        root = trace.begin("query", k=5)
        child = trace.begin("engine.request", parent_id=root.span_id)
        trace.end(child)
        trace.end(root)
        spans = trace.export()
        assert len(spans) == 2
        roots = span_tree(spans)
        assert len(roots) == 1
        assert roots[0]["span"]["name"] == "query"
        assert roots[0]["children"][0]["span"]["name"] == "engine.request"
        assert all(s["trace_id"] == trace.trace_id for s in spans)

    def test_span_context_manager_records_errors(self):
        trace = Trace()
        with pytest.raises(ValueError):
            with trace.span("step"):
                raise ValueError("boom")
        (span,) = trace.export()
        assert span["attrs"]["error"] == "ValueError"
        assert span["end"] is not None

    def test_ctx_round_trip_reparents(self):
        # Parent side: a root span, then the serialized context.
        parent = Trace()
        root = parent.begin("query")
        ctx = parent.ctx(root.span_id)
        assert ctx == {"trace_id": parent.trace_id, "parent_id": root.span_id}
        # Child side (other process): same trace id, parent hint set.
        child = Trace.from_ctx(ctx)
        assert child.trace_id == parent.trace_id
        span = child.begin("shard.search", parent_id=child.parent_hint)
        child.end(span)
        # Back on the parent: absorb and close the root.
        parent.absorb(child.export())
        parent.end(root)
        roots = span_tree(parent.export())
        assert len(roots) == 1
        assert roots[0]["children"][0]["span"]["name"] == "shard.search"

    def test_orphan_spans_become_roots(self):
        trace = Trace()
        span = trace.begin("leaf", parent_id="feedfacecafebeef")
        trace.end(span)
        roots = span_tree(trace.export())
        assert len(roots) == 1  # parent was sampled away: still renderable

    def test_render_tree_shape(self):
        trace = Trace()
        root = trace.begin("query")
        first = trace.begin("a", parent_id=root.span_id)
        trace.end(first)
        second = trace.begin("b", parent_id=root.span_id)
        trace.end(second)
        trace.end(root)
        text = render_trace_tree(trace.export())
        lines = text.splitlines()
        assert lines[0].startswith("query")
        assert lines[1].startswith("├─ a")
        assert lines[2].startswith("└─ b")


def _record(trace_id="t", duration_ms=1.0, slow=False):
    return TraceRecord(
        trace_id=trace_id,
        query="q",
        topology="single",
        duration_ms=duration_ms,
        slow=slow,
        ts=0.0,
    )


class TestTraceStore:
    def test_always_keeps_everything(self):
        store = TraceStore(sample="always", capacity=8)
        for i in range(5):
            assert store.offer(_record(trace_id=str(i)))
        assert [r.trace_id for r in store.recent()] == list("43210")
        assert store.get("2") is not None
        assert store.get("missing") is None

    def test_rate_keeps_deterministic_fraction(self):
        store = TraceStore(sample=0.25, capacity=1000)
        kept = sum(store.offer(_record(trace_id=str(i))) for i in range(100))
        assert kept == 25

    def test_slow_mode_keeps_only_slow(self):
        store = TraceStore(sample="slow", slow_query_ms=100.0, capacity=8)
        assert not store.offer(_record(duration_ms=5.0))
        assert store.offer(_record(trace_id="s", duration_ms=250.0, slow=True))
        assert [r.trace_id for r in store.slow()] == ["s"]

    def test_slow_records_survive_fast_burst(self):
        store = TraceStore(sample="always", slow_query_ms=100.0, capacity=4)
        store.offer(_record(trace_id="slow", duration_ms=500.0, slow=True))
        for i in range(10):  # evicts the main ring, not the slow ring
            store.offer(_record(trace_id=f"fast{i}"))
        assert [r.trace_id for r in store.slow()] == ["slow"]
        stats = store.stats()
        assert stats["offered"] == 11
        assert stats["stored"] == 4

    def test_capacity_bounds_ring(self):
        store = TraceStore(sample="always", capacity=3)
        for i in range(9):
            store.offer(_record(trace_id=str(i)))
        assert [r.trace_id for r in store.recent()] == ["8", "7", "6"]


class TestObservability:
    def test_off_means_disabled(self):
        obs = Observability(sample="off")
        assert not obs.enabled
        assert obs.begin() is None

    def test_slow_threshold_alone_enables(self):
        obs = Observability(sample="off", slow_query_ms=100.0)
        assert obs.enabled

    def test_finish_builds_record_and_samples(self):
        obs = Observability(sample="always")
        trace = obs.begin()
        span = trace.begin("query")
        trace.end(span)
        profile = SearchProfile()
        profile.heap_pops = 7
        record = obs.finish(
            trace,
            query="foo bar",
            topology="single",
            duration_ms=3.0,
            profile=profile,
            served_by="engine",
        )
        assert record.trace_id == trace.trace_id
        assert record.query == "foo bar"
        assert record.profile["heap_pops"] == 7
        assert record.attrs["served_by"] == "engine"
        assert not record.slow
        assert obs.store.get(trace.trace_id) is record
        assert "query='foo bar'" in record.render()

    def test_finish_renders_parsed_queries_readably(self):
        from repro.core.query import parse_query

        obs = Observability(sample="always")
        trace = obs.begin()
        record = obs.finish(trace, query=parse_query("foo bar"))
        assert record.query == "foo bar"

    def test_slow_query_emits_warning_event(self):
        obs = Observability(sample="always", slow_query_ms=1.0)
        sink = io.StringIO()
        handler = obs.events.attach(stream=sink, level=logging.INFO)
        try:
            trace = obs.begin()
            obs.finish(trace, query="q", topology="single", duration_ms=50.0)
        finally:
            obs.events.logger.removeHandler(handler)
        event = json.loads(sink.getvalue().strip())
        assert event["event"] == "slow_query"
        assert event["trace_id"] == trace.trace_id
        assert event["duration_ms"] == 50.0


class TestSearchProfile:
    def test_merge_and_round_trip(self):
        first = SearchProfile()
        first.heap_pops = 3
        first.expansion_seconds = 0.5
        second = SearchProfile.from_dict({"heap_pops": 2, "edges_relaxed": 9})
        first.merge(second)
        assert first.heap_pops == 5
        assert first.edges_relaxed == 9
        assert SearchProfile.from_dict(first.to_dict()).to_dict() == (
            first.to_dict()
        )

    def test_render_mentions_the_counters(self):
        profile = SearchProfile()
        profile.heap_pops = 12
        text = profile.render()
        assert "heap_pops=12" in text
        assert "expansion_ms=0.00" in text


class TestEventLog:
    def test_emits_json_lines(self):
        log = EventLog(logger=logging.getLogger("banks.events.test-emit"))
        sink = io.StringIO()
        handler = log.attach(stream=sink)
        try:
            log.query(trace_id="abc", duration_ms=1.5)
        finally:
            log.logger.removeHandler(handler)
        event = json.loads(sink.getvalue().strip())
        assert event["event"] == "query"
        assert event["trace_id"] == "abc"
        assert "ts" in event

    def test_quiet_by_default(self):
        log = EventLog(logger=logging.getLogger("banks.events.test-quiet"))
        log.query(trace_id="abc")  # no handler attached: must not raise
