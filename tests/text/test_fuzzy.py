"""Tests for approximate matching (edit distance, approx(N))."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.text.fuzzy import (
    damerau_levenshtein,
    default_distance_budget,
    expand_fuzzy,
    numbers_near,
)

words = st.text(
    alphabet=st.characters(min_codepoint=97, max_codepoint=122),
    min_size=0,
    max_size=12,
)


class TestEditDistance:
    @pytest.mark.parametrize(
        ("left", "right", "expected"),
        [
            ("", "", 0),
            ("a", "", 1),
            ("abc", "abc", 0),
            ("abc", "abd", 1),
            ("abc", "acb", 1),  # transposition
            ("chakrabarti", "chakraborti", 1),
            ("kitten", "sitting", 3),
        ],
    )
    def test_known_distances(self, left, right, expected):
        assert damerau_levenshtein(left, right) == expected

    def test_cap_early_exit(self):
        assert damerau_levenshtein("aaaa", "zzzz", cap=1) > 1

    @settings(max_examples=80, deadline=None)
    @given(words, words)
    def test_symmetry(self, left, right):
        assert damerau_levenshtein(left, right) == damerau_levenshtein(
            right, left
        )

    @settings(max_examples=80, deadline=None)
    @given(words)
    def test_identity(self, word):
        assert damerau_levenshtein(word, word) == 0

    @settings(max_examples=60, deadline=None)
    @given(words, words)
    def test_bounded_by_longer_length(self, left, right):
        assert damerau_levenshtein(left, right) <= max(len(left), len(right))


class TestBudget:
    def test_short_terms_get_zero(self):
        assert default_distance_budget("ann") == 0

    def test_medium_terms_get_one(self):
        assert default_distance_budget("sunita") == 1

    def test_long_terms_get_two(self):
        assert default_distance_budget("chakrabarti") == 2


class TestExpandFuzzy:
    VOCAB = ["chakrabarti", "chakraborti", "sarawagi", "sudarshan", "mohan"]

    def test_exact_match_first(self):
        matches = expand_fuzzy("chakrabarti", self.VOCAB)
        assert matches[0] == ("chakrabarti", 0)

    def test_typo_found(self):
        matches = expand_fuzzy("chakraborty", self.VOCAB)
        assert ("chakraborti", 1) in matches

    def test_short_terms_do_not_explode(self):
        matches = expand_fuzzy("moha", self.VOCAB)
        assert matches == []  # budget 0 and no exact match

    def test_explicit_budget(self):
        matches = expand_fuzzy("mohaX", self.VOCAB, max_distance=1)
        assert ("mohan", 1) in matches


class TestNumbersNear:
    VOCAB = ["1985", "1987", "1988", "1990", "2001", "concurrency"]

    def test_window(self):
        assert numbers_near(1988, self.VOCAB, window=2) == [
            "1987", "1988", "1990",
        ]

    def test_exact_only_with_zero_window(self):
        assert numbers_near(1988, self.VOCAB, window=0) == ["1988"]

    def test_non_numeric_tokens_ignored(self):
        assert "concurrency" not in numbers_near(1988, self.VOCAB, window=100)
