"""Tests for the inverted index and the disk-resident index."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.relational import Database
from repro.relational.schema import Column, TableSchema
from repro.relational.types import TEXT
from repro.text.disk_index import DiskIndex
from repro.text.inverted_index import InvertedIndex
from repro.text.tokenizer import tokenize


class TestInvertedIndex:
    def test_data_postings(self, figure1_db):
        index = InvertedIndex(figure1_db)
        postings = index.lookup("sunita")
        assert len(postings) == 1
        assert postings[0].table == "author"
        assert postings[0].column == "name"

    def test_lookup_is_case_insensitive(self, figure1_db):
        index = InvertedIndex(figure1_db)
        assert index.lookup("SUNITA") == index.lookup("sunita")

    def test_key_columns_not_indexed_by_default(self, figure1_db):
        index = InvertedIndex(figure1_db)
        # 'SunitaS' appears in writes.author_id (an FK column): the
        # writes tuple must NOT be a keyword node (paper Fig. 1B).
        tables = {p.table for p in index.lookup("sunita")}
        assert tables == {"author"}

    def test_key_columns_opt_in(self, figure1_db):
        index = InvertedIndex(figure1_db, index_key_columns=True)
        tables = {p.table for p in index.lookup("sunita")}
        assert "writes" in tables

    def test_metadata_table_match(self, figure1_db):
        index = InvertedIndex(figure1_db)
        assert index.matching_tables("author") == {"author"}
        nodes = index.lookup_nodes("author")
        # Every author tuple is relevant to the keyword 'author'.
        assert {("author", rid) for rid in range(3)} <= nodes

    def test_metadata_column_match(self, figure1_db):
        index = InvertedIndex(figure1_db)
        assert ("paper", "title") in index.matching_columns("title")
        nodes = index.lookup_nodes("title")
        assert ("paper", 0) in nodes

    def test_metadata_can_be_disabled(self, figure1_db):
        index = InvertedIndex(figure1_db)
        assert index.lookup_nodes("author", include_metadata=False) == set()

    def test_lookup_column_restricts(self, figure1_db):
        index = InvertedIndex(figure1_db)
        assert index.lookup_column("sunita", "author", "name")
        assert not index.lookup_column("sunita", "paper", "title")

    def test_document_frequency(self, figure1_db):
        index = InvertedIndex(figure1_db)
        assert index.document_frequency("mining") == 1
        assert index.document_frequency("ghostword") == 0

    def test_incremental_add_row(self, figure1_db):
        index = InvertedIndex(figure1_db)
        rid = figure1_db.insert("author", ["NewA", "Brand New Author"])
        index.add_row("author", rid[1])
        assert index.lookup("brand")

    def test_contains_and_len(self, figure1_db):
        index = InvertedIndex(figure1_db)
        assert "mining" in index
        assert "zzz" not in index
        assert len(index) == len(index.vocabulary())

    def test_null_values_skipped(self):
        database = Database("nulls")
        database.create_table(
            TableSchema("t", [Column("a", TEXT), Column("b", TEXT)])
        )
        database.insert("t", [None, "present"])
        index = InvertedIndex(database)
        assert index.lookup("present")


class TestIndexScanAgreement:
    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.text(
                alphabet=st.characters(
                    whitelist_categories=("Lu", "Ll", "Nd"),
                    whitelist_characters=" -_",
                ),
                min_size=0,
                max_size=40,
            ),
            min_size=1,
            max_size=20,
        )
    )
    def test_lookup_agrees_with_rescan(self, values):
        """Property: index lookup == naive scan over tokenised values."""
        database = Database("prop")
        database.create_table(TableSchema("t", [Column("v", TEXT)]))
        for value in values:
            database.insert("t", [value])
        index = InvertedIndex(database)
        for rid, value in enumerate(values):
            for token in tokenize(value):
                nodes = {p.node for p in index.lookup(token)}
                assert ("t", rid) in nodes
        for token in index.vocabulary():
            expected = {
                ("t", rid)
                for rid, value in enumerate(values)
                if token in tokenize(value)
            }
            assert {p.node for p in index.lookup(token)} == expected


class TestDiskIndex:
    def test_round_trip(self, figure1_db, tmp_path):
        memory_index = InvertedIndex(figure1_db)
        path = str(tmp_path / "postings.idx")
        disk_index = DiskIndex.write(memory_index, path)
        assert disk_index.vocabulary() == memory_index.vocabulary()
        for term in memory_index.vocabulary():
            assert disk_index.lookup(term) == memory_index.lookup(term)

    def test_reopen_from_disk(self, figure1_db, tmp_path):
        memory_index = InvertedIndex(figure1_db)
        path = str(tmp_path / "postings.idx")
        DiskIndex.write(memory_index, path)
        reopened = DiskIndex(path)
        assert reopened.lookup("sunita") == memory_index.lookup("sunita")
        assert "sunita" in reopened
        assert reopened.document_frequency("sunita") == 1

    def test_unknown_term_empty(self, figure1_db, tmp_path):
        path = str(tmp_path / "postings.idx")
        disk_index = DiskIndex.write(InvertedIndex(figure1_db), path)
        assert disk_index.lookup("nosuchterm") == []

    def test_corrupt_file_rejected(self, tmp_path):
        path = str(tmp_path / "bad.idx")
        with open(path, "wb") as handle:
            handle.write(b"not an index at all, definitely not")
        with pytest.raises(Exception):
            DiskIndex(path)

    def test_truncated_file_rejected(self, tmp_path):
        path = str(tmp_path / "tiny.idx")
        with open(path, "wb") as handle:
            handle.write(b"xx")
        with pytest.raises(Exception):
            DiskIndex(path)
