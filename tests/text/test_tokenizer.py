"""Tests for text normalisation and tokenisation."""

from repro.text.tokenizer import normalize, tokenize, tokenize_identifier


class TestNormalize:
    def test_lowercases_and_strips(self):
        assert normalize("  Sunita ") == "sunita"

    def test_idempotent(self):
        assert normalize(normalize("MoHaN")) == "mohan"


class TestTokenize:
    def test_simple_words(self):
        assert tokenize("Mining Surprising Patterns") == [
            "mining", "surprising", "patterns",
        ]

    def test_punctuation_splits(self):
        assert tokenize("query-optimization, 2nd ed.") == [
            "query", "optimization", "2nd", "ed",
        ]

    def test_camel_case_splits(self):
        assert "soumen" in tokenize("SoumenC")
        assert "chakrabarti" in tokenize("ChakrabartiSD98")

    def test_all_caps_kept_together(self):
        assert tokenize("DBLP") == ["dblp"]

    def test_numbers_survive(self):
        assert "1988" in tokenize("published in 1988")

    def test_empty_string(self):
        assert tokenize("") == []

    def test_unicode_punctuation_dropped(self):
        assert tokenize("a—b") == ["a", "b"]


class TestTokenizeIdentifier:
    def test_underscores_split(self):
        assert tokenize_identifier("author_name") == ["author", "name"]

    def test_camel_case_identifiers(self):
        assert tokenize_identifier("PaperName") == ["paper", "name"]

    def test_table_name_matches_keyword(self):
        # The paper's example: keyword 'author' matches relation AUTHOR.
        assert "author" in tokenize_identifier("AUTHOR")
