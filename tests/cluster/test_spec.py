"""ClusterSpec: the centralised conflict matrix and the serve bridge."""

from __future__ import annotations

import argparse

import pytest

from repro.cluster import ClusterSpec, QueryRequest
from repro.errors import ClusterError

#: Every conflicting combination ``validate()`` must refuse — the old
#: hand-rolled ``banks serve`` checks plus the new topology matrix.
CONFLICTS = [
    # (kwargs, detail fragment)
    ({"topology": "mesh"}, "unknown topology"),
    ({"balance": "fastest"}, "unknown balance policy"),
    ({"copy_mode": "shallow"}, "unknown copy mode"),
    ({"wal_fsync": "sometimes"}, "unknown wal fsync"),
    ({"dispatch": "broadcast"}, "unknown dispatch policy"),
    ({"shard_backend": "fiber"}, "unknown shard backend"),
    ({"replica_backend": "fiber"}, "unknown replica backend"),
    ({"topology": "sharded"}, "needs shards >= 1"),
    ({"topology": "sharded_replicated", "replicas": 2}, "needs shards >= 1"),
    ({"shards": 2}, "conflicts with topology 'single'"),
    ({"topology": "replicated"}, "needs replicas >= 1"),
    ({"topology": "sharded_replicated", "shards": 2}, "needs replicas >= 1"),
    ({"replicas": 2}, "conflicts with topology 'single'"),
    ({"topology": "sharded", "shards": 2, "replicas": 2}, "conflicts with"),
    ({"workers": 0}, "workers must be >= 1"),
    ({"queue_bound": -1}, "queue_bound must be >= 0"),
    ({"deadline": 0.0}, "deadline must be positive"),
    ({"max_lag": -1}, "max_lag must be >= 0"),
    # The old --replica conflict matrix, spec-shaped.
    ({"follow": True}, "needs wal_path"),
    ({"follow": True, "wal_path": "/w", "live": True}, "conflicts with live"),
    (
        {"topology": "sharded", "shards": 2, "follow": True, "wal_path": "/w"},
        "its own serving mode",
    ),
    (
        {"follow": True, "wal_path": "/w", "engine": False},
        "needs the serving engine",
    ),
    (
        {
            "topology": "replicated",
            "replicas": 2,
            "follow": True,
            "wal_path": "/w",
        },
        "its own serving mode",
    ),
    # WAL routing rules.
    ({"wal_path": "/w"}, "publish no mutation epochs"),
    (
        {"topology": "sharded", "shards": 2, "wal_path": "/w"},
        "not wired into the plain sharded topology",
    ),
    ({"live": True, "wal_path": "/w", "copy_mode": "deep"}, "delta write path"),
    (
        {
            "topology": "replicated",
            "replicas": 2,
            "copy_mode": "deep",
        },
        "delta write path",
    ),
    # Inline dispatch rules.
    ({"engine": False, "live": True}, "conflicts with live"),
    (
        {"topology": "sharded", "shards": 2, "engine": False},
        "only exists on the single topology",
    ),
    (
        {"topology": "replicated", "replicas": 2, "engine": False},
        "only exists on the single topology",
    ),
]


class TestConflictMatrix:
    @pytest.mark.parametrize(
        "kwargs, fragment",
        CONFLICTS,
        ids=[str(sorted(c[0].items())) for c in CONFLICTS],
    )
    def test_conflict_fails_through_one_error_path(self, kwargs, fragment):
        with pytest.raises(ClusterError) as caught:
            ClusterSpec(**kwargs)
        # One error type, one message format, whatever the conflict.
        assert str(caught.value).startswith("invalid cluster spec: ")
        assert fragment in str(caught.value)

    def test_valid_topologies_validate(self, tmp_path):
        wal = str(tmp_path / "wal")
        ClusterSpec()  # single
        ClusterSpec(engine=False)
        ClusterSpec(live=True, wal_path=wal)
        ClusterSpec(follow=True, wal_path=wal)
        ClusterSpec(topology="sharded", shards=4, dispatch="route")
        ClusterSpec(topology="replicated", replicas=3, wal_path=wal)
        ClusterSpec(topology="replicated", replicas=3)  # ephemeral WAL
        ClusterSpec(topology="sharded_replicated", shards=2, replicas=2)

    def test_with_overrides_revalidates(self):
        spec = ClusterSpec(topology="sharded", shards=2)
        assert spec.with_overrides(shards=4).shards == 4
        with pytest.raises(ClusterError):
            spec.with_overrides(shards=0)

    def test_describe_covers_every_field_except_db(self):
        facts = ClusterSpec(topology="sharded", shards=2).describe()
        assert facts["topology"] == "sharded"
        assert facts["shards"] == 2
        assert "db" not in facts


class TestQueryRequest:
    def test_unknown_consistency_refused(self):
        with pytest.raises(ClusterError):
            QueryRequest("x", consistency="linearizable")

    def test_bad_k_refused(self):
        with pytest.raises(ClusterError):
            QueryRequest("x", k=0)


def _serve_args(**overrides) -> argparse.Namespace:
    """A namespace shaped like the ``banks serve`` parser output."""
    defaults = dict(
        db="demo:university",
        workers=4,
        queue_bound=64,
        deadline=None,
        inline=False,
        live=False,
        copy_mode="auto",
        shards=0,
        shard_backend="thread",
        dispatch="gather",
        wal=None,
        wal_fsync="always",
        follow=False,
        replicas=0,
        balance="round_robin",
        max_lag=8,
        replica_backend="auto",
    )
    defaults.update(overrides)
    return argparse.Namespace(**defaults)


class TestFromServeArgs:
    def test_flag_topology_derivation(self):
        assert ClusterSpec.from_serve_args(_serve_args()).topology == "single"
        assert (
            ClusterSpec.from_serve_args(_serve_args(shards=3)).topology
            == "sharded"
        )
        assert (
            ClusterSpec.from_serve_args(_serve_args(replicas=2)).topology
            == "replicated"
        )
        assert (
            ClusterSpec.from_serve_args(
                _serve_args(shards=2, replicas=2)
            ).topology
            == "sharded_replicated"
        )

    def test_removed_aliases_are_ignored_not_mapped(self, tmp_path):
        """The shim flags no longer exist; a stale namespace carrying
        them (an old script building Namespace by hand) gets the plain
        non-follower, engine-backed spec — not silent alias behaviour."""
        spec = ClusterSpec.from_serve_args(
            _serve_args(replica=True, no_engine=True)
        )
        assert not spec.follow
        assert spec.engine

    def test_current_flags_map(self, tmp_path):
        wal = str(tmp_path / "wal")
        spec = ClusterSpec.from_serve_args(_serve_args(follow=True, wal=wal))
        assert spec.follow and spec.wal_path == wal
        assert not ClusterSpec.from_serve_args(_serve_args(inline=True)).engine

    def test_conflicts_fail_through_the_spec(self, tmp_path):
        wal = str(tmp_path / "wal")
        for namespace in (
            _serve_args(follow=True),  # --follow without --wal
            _serve_args(follow=True, wal=wal, live=True),
            _serve_args(follow=True, wal=wal, shards=2),
            _serve_args(follow=True, wal=wal, inline=True),
            _serve_args(follow=True, wal=wal, replicas=2),
            _serve_args(wal=wal),  # --wal without a publisher
            _serve_args(wal=wal, live=True, copy_mode="deep"),
            _serve_args(replicas=2, inline=True),
        ):
            with pytest.raises(ClusterError) as caught:
                ClusterSpec.from_serve_args(namespace)
            assert str(caught.value).startswith("invalid cluster spec: ")


class TestSpecJson:
    """to_json / from_json: the --spec FILE surface round-trips."""

    def test_round_trip_preserves_every_field(self):
        spec = ClusterSpec(
            db="demo:bibliography",
            topology="sharded_replicated",
            shards=2,
            replicas=2,
            workers=3,
            queue_bound=32,
            deadline=1.5,
            balance="least_inflight",
            max_lag=3,
            replica_backend="thread",
            trace_sample="slow",
        )
        assert ClusterSpec.from_json(spec.to_json()) == spec

    def test_remote_replica_tuples_round_trip(self):
        spec = ClusterSpec(
            db="demo:university",
            topology="replicated",
            remote_replicas=(
                "http://127.0.0.1:8001",
                "http://127.0.0.1:8002",
            ),
            remote_token="t",
        )
        clone = ClusterSpec.from_json(spec.to_json())
        assert clone == spec
        assert isinstance(clone.remote_replicas, tuple)

    def test_from_json_validates_on_load(self):
        import json

        payload = json.loads(ClusterSpec(db="demo:university").to_json())
        payload["topology"] = "replicated"  # replicas stay 0: invalid
        with pytest.raises(ClusterError) as caught:
            ClusterSpec.from_json(json.dumps(payload))
        assert "replicas >= 1" in str(caught.value)

    def test_unknown_keys_are_refused(self):
        with pytest.raises(ClusterError) as caught:
            ClusterSpec.from_json('{"db": "demo:university", "shardz": 2}')
        assert "shardz" in str(caught.value)

    def test_non_object_payload_is_refused(self):
        with pytest.raises(ClusterError):
            ClusterSpec.from_json("[1, 2]")
        with pytest.raises(ClusterError):
            ClusterSpec.from_json("{not json")

    def test_loaded_database_object_is_not_serialisable(self):
        from repro.relational import Database

        spec = ClusterSpec(db=Database("inmem"))
        with pytest.raises(ClusterError) as caught:
            spec.to_json()
        assert "db" in str(caught.value)

    def test_from_json_file(self, tmp_path):
        spec = ClusterSpec(db="demo:university", workers=2)
        path = tmp_path / "cluster.json"
        path.write_text(spec.to_json())
        assert ClusterSpec.from_json_file(str(path)) == spec
