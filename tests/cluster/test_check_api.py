"""The public-API surface gate (tools/check_api.py)."""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

_TOOL = Path(__file__).resolve().parents[2] / "tools" / "check_api.py"


@pytest.fixture(scope="module")
def check_api():
    specification = importlib.util.spec_from_file_location("check_api", _TOOL)
    module = importlib.util.module_from_spec(specification)
    specification.loader.exec_module(module)
    return module


class TestSurfaceGate:
    def test_committed_snapshot_is_clean(self, check_api, capsys):
        assert check_api.main([]) == 0
        assert "intact" in capsys.readouterr().out

    def test_disappeared_public_name_is_flagged(self, check_api):
        problems = check_api.check_module(
            "repro.cluster",
            check_api.PUBLIC_API["repro.cluster"] + ("VanishedThing",),
        )
        assert any("disappeared" in p for p in problems)

    def test_leaked_name_is_flagged(self, check_api):
        module = sys.modules["repro.serve"]
        module.__all__.append("_leaky")
        try:
            problems = check_api.check_module(
                "repro.serve", check_api.PUBLIC_API["repro.serve"]
            )
        finally:
            module.__all__.remove("_leaky")
        assert any("leaked into __all__" in p for p in problems)
        assert any("private name" in p for p in problems)

    def test_undeclared_public_definition_is_flagged(self, check_api):
        module = sys.modules["repro.store"]
        module.UndeclaredSurface = type("UndeclaredSurface", (), {})
        # Simulate a repro-defined class leaking into the namespace.
        module.UndeclaredSurface.__module__ = "repro.store.delta"
        try:
            problems = check_api.check_module(
                "repro.store", check_api.PUBLIC_API["repro.store"]
            )
        finally:
            del module.UndeclaredSurface
        assert any("not in __all__" in p for p in problems)
