"""ReplicaSet: balancing, staleness exclusion, failover, re-admission."""

from __future__ import annotations

import pytest

from repro.cluster import Cluster, ClusterSpec, QueryRequest
from repro.errors import ClusterError


@pytest.fixture(scope="module")
def university():
    from repro.datasets import generate_university

    return generate_university()[0]


def _thread_cluster(database, replicas=2, **spec_overrides):
    spec = ClusterSpec(
        topology="replicated",
        replicas=replicas,
        replica_backend="thread",
        max_lag=2,
        **spec_overrides,
    )
    return Cluster(spec, database=database.fork())


def _signature(answers):
    return [(a.tree.root, round(a.relevance, 9)) for a in answers]


class TestBalancing:
    def test_round_robin_rotates_replicas(self, university):
        with _thread_cluster(university, replicas=3) as cluster:
            served = [
                cluster.query("alice seminar", k=2).replica for _ in range(6)
            ]
            assert set(served) == {0, 1, 2}
            # Strict rotation: each replica exactly twice.
            assert all(served.count(i) == 2 for i in range(3))

    def test_least_inflight_prefers_idle_replicas(self, university):
        with _thread_cluster(
            university, replicas=3, balance="least_inflight"
        ) as cluster:
            replica_set = cluster.backend
            # Pin synthetic load on replicas 0 and 1: the balancer must
            # send the next read to the idle one.
            replica_set._handles[0].inflight = 5
            replica_set._handles[1].inflight = 3
            assert cluster.query("alice seminar", k=2).replica == 2
            replica_set._handles[0].inflight = 0
            replica_set._handles[1].inflight = 0

    def test_every_replica_matches_the_primary(self, university):
        with _thread_cluster(university, replicas=2) as cluster:
            replica_set = cluster.backend
            cluster.insert("student", ["S801", "Parity Probe", "BIGDEPT"])
            replica_set.sync()
            for query in ("alice seminar", "parity probe"):
                primary = _signature(
                    cluster.query(
                        QueryRequest(query, k=5, consistency="primary")
                    ).answers
                )
                for index in range(2):
                    replica = _signature(
                        replica_set.search_on(index, query, max_results=5)
                    )
                    assert replica == primary


class TestStalenessExclusion:
    def test_laggard_is_excluded_then_readmitted(self, university):
        with _thread_cluster(university, replicas=2) as cluster:
            replica_set = cluster.backend
            replica_set.suspend_replica(0)
            for step in range(4):  # max_lag=2, so lag 4 > bound
                cluster.insert(
                    "student", [f"S81{step}", f"Lag Drill{step}", "BIGDEPT"]
                )
            replica_set.resume_replica(1)
            assert replica_set.lag_epochs(0) == 4
            served = {cluster.query("alice", k=2).replica for _ in range(4)}
            assert 0 not in served
            status = replica_set.replica_status()
            assert status[0]["state"] == "excluded"
            # Catch back up: re-admitted and serving again.
            replica_set.resume_replica(0)
            served = {cluster.query("alice", k=2).replica for _ in range(4)}
            assert 0 in served
            snapshot = replica_set.metrics.snapshot()
            assert snapshot["replica_excluded_total"] >= 1
            assert snapshot["replica_readmitted_total"] >= 1

    def test_all_laggards_fall_back_to_the_primary(self, university):
        with _thread_cluster(university, replicas=2) as cluster:
            replica_set = cluster.backend
            replica_set.suspend_replica(0)
            replica_set.suspend_replica(1)
            for step in range(4):
                cluster.insert(
                    "student", [f"S82{step}", f"Fallback {step}", "BIGDEPT"]
                )
            result = cluster.query("fallback", k=3)
            assert result.served_by == "primary"
            assert (
                replica_set.metrics.snapshot()["primary_reads_total"] >= 1
            )


class TestFailover:
    def test_kill_heal_readmit_with_parity_and_metrics(self, university):
        """The failover drill: kill one replica mid-load, the front end
        keeps serving with parity, the replica is re-admitted after it
        catches up, and /metrics surfaces the whole event."""
        from repro.browse.app import BrowseApp

        with _thread_cluster(university, replicas=2) as cluster:
            replica_set = cluster.backend
            app = BrowseApp(cluster=cluster)
            baseline = _signature(
                cluster.query(
                    QueryRequest("alice seminar", k=3, consistency="primary")
                ).answers
            )
            replica_set.kill_replica(0)
            # Mid-load: every read keeps being served, parity intact.
            for _step in range(4):
                result = cluster.query("alice seminar", k=3)
                assert _signature(result.answers) == baseline
                assert result.replica in (1, None)
            # History keeps accumulating while the replica is down.
            cluster.insert("student", ["S830", "Heal Probe", "BIGDEPT"])
            assert replica_set.heal() == 1
            status = replica_set.replica_status()
            assert status[0]["state"] == "active"
            assert status[0]["lag_epochs"] == 0
            served = {cluster.query("heal probe", k=2).replica for _ in range(4)}
            assert 0 in served
            # The event is on /metrics (and the /replicas page).
            _status, metrics_text = app.handle("/metrics", "")
            assert "banks_replicaset_replica_deaths_total 1" in metrics_text
            assert (
                "banks_replicaset_replica_readmitted_total 1" in metrics_text
            )
            _status, replicas_html = app.handle("/replicas", "")
            assert "re-admissions: 1" in replicas_html

    def test_midflight_failure_retries_elsewhere(self, university):
        with _thread_cluster(university, replicas=2) as cluster:
            replica_set = cluster.backend
            handle = replica_set._handles[0]

            def explode(*_args, **_kwargs):
                raise ClusterError("simulated mid-flight replica loss")

            handle.worker.search_scored = explode
            served = [cluster.query("alice seminar", k=2) for _ in range(3)]
            assert all(r.answers is not None for r in served)
            assert all(r.replica in (1, None) for r in served)
            snapshot = replica_set.metrics.snapshot()
            assert snapshot["replica_failovers_total"] == 1
            assert snapshot["replica_deaths_total"] == 1

    def test_process_backend_kill_and_heal(self, university):
        """The forked-worker backend survives a hard process kill."""
        from repro.shard.process import fork_available

        if not fork_available():  # pragma: no cover - fork exists on CI
            pytest.skip("fork unavailable")
        spec = ClusterSpec(
            topology="replicated", replicas=2, replica_backend="process"
        )
        with Cluster(spec, database=university.fork()) as cluster:
            replica_set = cluster.backend
            assert replica_set.backend == "process"
            baseline = _signature(
                cluster.query(
                    QueryRequest("alice seminar", k=3, consistency="primary")
                ).answers
            )
            replica_set.kill_replica(1)
            for _step in range(3):
                result = cluster.query("alice seminar", k=3)
                assert _signature(result.answers) == baseline
            assert replica_set.heal() == 1
            assert replica_set.replica_status()[1]["state"] == "active"


class TestQueryErrorsAreNotReplicaFailures:
    def test_bad_query_leaves_process_replicas_alive(self, university):
        """A malformed query must raise to the caller — and must NOT
        be misread as replica death (one bad /search request used to
        SIGTERM every forked replica)."""
        from repro.shard.process import fork_available

        if not fork_available():  # pragma: no cover - fork exists on CI
            pytest.skip("fork unavailable")
        from repro.errors import QueryError

        spec = ClusterSpec(
            topology="replicated", replicas=2, replica_backend="process"
        )
        with Cluster(spec, database=university.fork()) as cluster:
            replica_set = cluster.backend
            with pytest.raises(QueryError):
                cluster.query("", k=3)
            status = replica_set.replica_status()
            assert [s["state"] for s in status] == ["active", "active"]
            assert (
                replica_set.metrics.snapshot()["replica_deaths_total"] == 0
            )
            # And the set still serves.
            assert cluster.query("alice seminar", k=2).answers

    def test_bad_query_leaves_thread_replicas_alive(self, university):
        from repro.errors import QueryError

        with _thread_cluster(university, replicas=2) as cluster:
            with pytest.raises(QueryError):
                cluster.query("", k=3)
            assert (
                cluster.backend.metrics.snapshot()["replica_deaths_total"]
                == 0
            )


class TestObservationIsSideEffectFree:
    def test_metrics_scrapes_do_not_move_exclusion_counters(
        self, university
    ):
        """Reading /metrics or /replicas must never count stale skips
        or flip exclusion state — only the dispatch path does."""
        with _thread_cluster(university, replicas=2) as cluster:
            replica_set = cluster.backend
            replica_set.suspend_replica(0)
            for step in range(4):  # lag 4 > max_lag 2
                cluster.insert(
                    "student", [f"S85{step}", f"Scrape {step}", "BIGDEPT"]
                )
            replica_set.resume_replica(1)
            before = replica_set.metrics.snapshot()
            replica_set.replica_status()
            replica_set.metrics.snapshot()
            after = replica_set.metrics.snapshot()
            for series in (
                "replica_stale_skips_total",
                "replica_excluded_total",
                "replica_readmitted_total",
            ):
                assert after[series] == before[series]
            # The lagging replica still reads as active until a
            # dispatch actually observes (and counts) the exclusion.
            assert after["replicas_active"] == 1.0
            cluster.query("alice", k=2)
            assert (
                replica_set.metrics.snapshot()["replica_excluded_total"]
                == before["replica_excluded_total"] + 1
            )

    def test_primary_consistency_counts_as_a_primary_read(self, university):
        with _thread_cluster(university, replicas=2) as cluster:
            cluster.query(
                QueryRequest("alice", k=2, consistency="primary")
            )
            assert (
                cluster.backend.metrics.snapshot()["primary_reads_total"]
                == 1
            )


class TestTailing:
    def test_started_set_tails_the_wal_in_background(self, university):
        with _thread_cluster(university, replicas=2) as cluster:
            cluster.start()
            cluster.insert("student", ["S840", "Tail Probe", "BIGDEPT"])
            replica_set = cluster.backend
            assert replica_set.sync(timeout=10.0) == 0
            result = cluster.query("tail probe", k=2)
            assert result.answers
