"""bounded_staleness and monotonic_reads dispatch in the ReplicaSet.

Both levels are *per-read* filters layered over the spec's standing
``max_lag`` exclusion: bounded_staleness tightens the lag ceiling for
one request without moving exclusion state; monotonic_reads pins a
session floor — no read ever observes an older epoch than an earlier
read did.
"""

from __future__ import annotations

import pytest

from repro.cluster import Cluster, ClusterSpec, QueryRequest


@pytest.fixture(scope="module")
def university():
    from repro.datasets import generate_university

    return generate_university()[0]


def _cluster(database, replicas=2, **spec_overrides):
    spec = ClusterSpec(
        topology="replicated",
        replicas=replicas,
        replica_backend="thread",
        max_lag=4,
        **spec_overrides,
    )
    return Cluster(spec, database=database.fork())


def _lag_replica(cluster, index, epochs):
    """Suspend one replica, publish ``epochs`` writes, catch the
    others up — leaving exactly that replica ``epochs`` behind."""
    replica_set = cluster.backend
    replica_set.suspend_replica(index)
    for step in range(epochs):
        cluster.insert(
            "student", [f"SC{index}{step}", f"probe {step}", "BIGDEPT"]
        )
    for other in range(len(replica_set._handles)):
        if other != index:
            replica_set.resume_replica(other)
    assert replica_set.lag_epochs(index) == epochs
    return replica_set


class TestBoundedStaleness:
    def test_tighter_bound_skips_the_laggard(self, university):
        with _cluster(university) as cluster:
            replica_set = _lag_replica(cluster, 0, epochs=2)
            # Inside the spec's max_lag (4): eventual reads still use
            # replica 0...
            served = {
                cluster.query(QueryRequest("alice seminar", k=2)).replica
                for _ in range(4)
            }
            assert 0 in served
            # ...but a per-request bound of 1 must route around it.
            for _ in range(4):
                result = cluster.query(
                    QueryRequest(
                        "alice seminar",
                        k=2,
                        consistency="bounded_staleness",
                        staleness_bound=1,
                    )
                )
                assert result.replica == 1
            replica_set.resume_replica(0)

    def test_default_bound_is_the_spec_max_lag(self, university):
        with _cluster(university) as cluster:
            _lag_replica(cluster, 0, epochs=2)
            # No explicit bound: bounded_staleness falls back to
            # max_lag (4), and a 2-epoch laggard stays eligible.
            served = {
                cluster.query(
                    QueryRequest(
                        "alice seminar", k=2, consistency="bounded_staleness"
                    )
                ).replica
                for _ in range(4)
            }
            assert 0 in served

    def test_bound_zero_with_all_laggards_serves_primary(self, university):
        with _cluster(university) as cluster:
            replica_set = cluster.backend
            replica_set.suspend_replica(0)
            replica_set.suspend_replica(1)
            cluster.insert("student", ["SC90", "lag probe", "BIGDEPT"])
            result = cluster.query(
                QueryRequest(
                    "alice seminar",
                    k=2,
                    consistency="bounded_staleness",
                    staleness_bound=0,
                )
            )
            assert result.replica is None
            assert result.served_by == "primary"
            assert result.epoch == replica_set.last_write_epoch

    def test_request_validation(self):
        from repro.errors import ClusterError

        with pytest.raises(ClusterError):
            QueryRequest("x", staleness_bound=-1)

    def test_exclusion_state_is_untouched(self, university):
        """A tight per-request bound skips laggards for that read only
        — it never marks them excluded the way max_lag does."""
        with _cluster(university) as cluster:
            replica_set = _lag_replica(cluster, 0, epochs=2)
            before = replica_set._excluded_events.value
            for _ in range(3):
                cluster.query(
                    QueryRequest(
                        "alice seminar",
                        k=2,
                        consistency="bounded_staleness",
                        staleness_bound=0,
                    )
                )
            assert replica_set._excluded_events.value == before
            assert not replica_set._handles[0].excluded


class TestMonotonicReads:
    def test_floor_advances_with_reads(self, university):
        with _cluster(university) as cluster:
            replica_set = cluster.backend
            cluster.insert("student", ["SM01", "floor probe", "BIGDEPT"])
            replica_set.sync()
            first = cluster.query(
                QueryRequest("alice seminar", k=2, consistency="monotonic_reads")
            )
            assert first.epoch >= 1
            for _ in range(6):
                result = cluster.query(
                    QueryRequest(
                        "alice seminar", k=2, consistency="monotonic_reads"
                    )
                )
                assert result.epoch >= first.epoch

    def test_laggard_never_serves_below_the_floor(self, university):
        with _cluster(university) as cluster:
            replica_set = _lag_replica(cluster, 0, epochs=2)
            # Raise the session floor to the write frontier with a
            # primary read (the floor starts at 0, where any replica
            # would trivially satisfy monotonicity).
            floor = cluster.query(
                QueryRequest("alice seminar", k=2, consistency="primary")
            ).epoch
            assert floor == replica_set.last_write_epoch
            # Replica 0 (2 epochs behind, still inside max_lag) must
            # catch up or be bypassed — never serve below the floor.
            for _ in range(2):
                result = cluster.query(
                    QueryRequest(
                        "alice seminar", k=2, consistency="monotonic_reads"
                    )
                )
                assert result.epoch >= floor

    def test_primary_reads_raise_the_floor_too(self, university):
        with _cluster(university) as cluster:
            replica_set = cluster.backend
            cluster.insert("student", ["SM02", "primary floor", "BIGDEPT"])
            primary = cluster.query(
                QueryRequest("alice seminar", k=2, consistency="primary")
            )
            assert primary.epoch == replica_set.last_write_epoch
            monotonic = cluster.query(
                QueryRequest(
                    "alice seminar", k=2, consistency="monotonic_reads"
                )
            )
            assert monotonic.epoch >= primary.epoch

    def test_eventual_reads_do_not_enforce_the_floor(self, university):
        """Contrast case: after a fresh monotonic read, plain eventual
        reads may still use the in-bound laggard."""
        with _cluster(university) as cluster:
            _lag_replica(cluster, 0, epochs=2)
            cluster.query(
                QueryRequest("alice seminar", k=2, consistency="monotonic_reads")
            )
            served = {
                cluster.query(QueryRequest("alice seminar", k=2)).replica
                for _ in range(4)
            }
            assert 0 in served
