"""Cluster: four topologies, one request/response contract."""

from __future__ import annotations

import pytest

from repro.cluster import Cluster, ClusterSpec, QueryRequest, QueryResult
from repro.core.banks import BANKS
from repro.errors import ClusterError


@pytest.fixture(scope="module")
def university():
    from repro.datasets import generate_university

    return generate_university()[0]


def _signature(answers):
    return [(a.tree.root, round(a.relevance, 9)) for a in answers]


class TestSingleTopology:
    def test_query_carries_provenance_and_epoch(self, university):
        with Cluster(ClusterSpec(), database=university.fork()) as cluster:
            result = cluster.query(QueryRequest("alice seminar", k=3))
            assert isinstance(result, QueryResult)
            assert result.topology == "single"
            assert result.served_by == "engine"
            assert result.replica is None and result.shards == ()
            assert result.epoch == 0
            assert result.latency > 0
            # Parity with a bare facade.
            plain = BANKS(university).search("alice seminar", max_results=3)
            assert _signature(result.answers) == _signature(plain)

    def test_submit_resolves_to_the_same_result(self, university):
        with Cluster(ClusterSpec(), database=university.fork()) as cluster:
            future = cluster.submit("alice seminar", k=3)
            result = future.result(timeout=30)
            assert result.served_by == "engine"
            assert result.answers

    def test_string_query_with_overrides(self, university):
        with Cluster(ClusterSpec(), database=university.fork()) as cluster:
            assert cluster.query("alice seminar", k=2).answers
            with pytest.raises(ClusterError):
                cluster.query(QueryRequest("alice"), k=2)
            with pytest.raises(ClusterError):
                cluster.submit(QueryRequest("alice"), k=2)

    def test_immutable_topology_refuses_writes(self, university):
        with Cluster(ClusterSpec(), database=university.fork()) as cluster:
            with pytest.raises(ClusterError):
                cluster.insert("student", ["S1", "X", "BIGDEPT"])

    def test_closed_cluster_refuses_queries(self, university):
        cluster = Cluster(ClusterSpec(), database=university.fork())
        cluster.close()
        with pytest.raises(ClusterError):
            cluster.query("alice")

    def test_inline_topology(self, university):
        spec = ClusterSpec(engine=False)
        with Cluster(spec, database=university.fork()) as cluster:
            assert cluster.backend is None
            result = cluster.query("alice seminar", k=3)
            assert result.served_by == "inline"
            assert result.epoch == 0

    def test_live_topology_mutates_through_the_engine(self, university):
        spec = ClusterSpec(live=True)
        with Cluster(spec, database=university.fork()) as cluster:
            rid = cluster.insert("student", ["S901", "Zara Quine", "BIGDEPT"])
            assert rid[0] == "student"
            result = cluster.query("zara quine", k=3)
            assert result.epoch == 1
            assert any(a.tree.root == rid for a in result.answers)
            cluster.update(rid, {"name": "Zara Quill"})
            cluster.delete(rid)
            assert cluster.epoch == 3

    def test_spec_db_specifier_resolves(self):
        with Cluster(ClusterSpec(db="demo:university")) as cluster:
            assert cluster.query("alice seminar", k=1).answers

    def test_missing_database_refused(self):
        with pytest.raises(ClusterError):
            Cluster(ClusterSpec())


class TestShardedTopology:
    def test_query_carries_shard_provenance(self, university):
        spec = ClusterSpec(
            topology="sharded", shards=3, shard_backend="thread"
        )
        with Cluster(spec, database=university.fork()) as cluster:
            result = cluster.query(QueryRequest("alice seminar", k=3))
            assert result.served_by == "router"
            assert result.shards  # at least the root's shard
            assert all(0 <= s < 3 for s in result.shards)
            plain = BANKS(university).search("alice seminar", max_results=3)
            assert _signature(result.answers) == _signature(plain)

    def test_mutations_route_and_advance_the_epoch(self, university):
        spec = ClusterSpec(
            topology="sharded", shards=2, shard_backend="thread"
        )
        with Cluster(spec, database=university.fork()) as cluster:
            rid = cluster.insert("student", ["S902", "Quorum Vector", "BIGDEPT"])
            result = cluster.query("quorum vector", k=3)
            assert result.epoch == 1
            assert any(a.tree.root == rid for a in result.answers)
            with pytest.raises(ClusterError):
                cluster.mutate(lambda f: None)  # routers route typed writes


class TestFollowerTopology:
    def test_follower_tails_an_external_primary(self, university, tmp_path):
        wal = str(tmp_path / "wal")
        primary_spec = ClusterSpec(live=True, wal_path=wal)
        with Cluster(primary_spec, database=university.fork()) as primary:
            rid = primary.insert(
                "student", ["S903", "Walter Logmann", "BIGDEPT"]
            )
            follower_spec = ClusterSpec(follow=True, wal_path=wal)
            with Cluster(
                follower_spec, database=university.fork()
            ) as follower:
                assert follower.read_only
                result = follower.query("walter logmann", k=3)
                assert result.served_by == "follower"
                assert result.epoch == 1
                assert any(a.tree.root == rid for a in result.answers)
                with pytest.raises(ClusterError):
                    follower.insert("student", ["S9", "X", "B"])
                # New primary epochs arrive on poll.
                primary.insert("student", ["S904", "Xo Lattice", "BIGDEPT"])
                follower.follower.poll()
                assert follower.epoch == 2

    def test_live_primary_recovers_existing_wal(self, university, tmp_path):
        wal = str(tmp_path / "wal")
        spec = ClusterSpec(live=True, wal_path=wal)
        with Cluster(spec, database=university.fork()) as primary:
            primary.insert("student", ["S905", "Recov Ery", "BIGDEPT"])
        with Cluster(spec, database=university.fork()) as restarted:
            assert restarted.recovered_epochs == 1
            assert restarted.query("recov ery", k=3).answers


class TestReplicatedTopology:
    def test_read_your_writes_observes_the_mutation(self, university):
        spec = ClusterSpec(
            topology="replicated", replicas=2, replica_backend="thread"
        )
        with Cluster(spec, database=university.fork()) as cluster:
            rid = cluster.insert("student", ["S906", "Fresh Write", "BIGDEPT"])
            result = cluster.query(
                QueryRequest(
                    "fresh write", k=3, consistency="read_your_writes"
                )
            )
            assert result.epoch >= 1
            assert any(a.tree.root == rid for a in result.answers)
            assert result.served_by.startswith(("replica-", "primary"))

    def test_primary_consistency_pins_the_primary(self, university):
        spec = ClusterSpec(
            topology="replicated", replicas=2, replica_backend="thread"
        )
        with Cluster(spec, database=university.fork()) as cluster:
            result = cluster.query(
                QueryRequest("alice seminar", k=3, consistency="primary")
            )
            assert result.served_by == "primary"
            assert result.replica is None

    def test_sharded_replicated_carries_both_provenances(self, university):
        spec = ClusterSpec(
            topology="sharded_replicated", shards=2, replicas=2
        )
        with Cluster(spec, database=university.fork()) as cluster:
            cluster.backend.sync()
            result = cluster.query(QueryRequest("alice seminar", k=3))
            assert result.served_by.startswith("replica-")
            assert result.replica in (0, 1)
            assert result.shards and all(0 <= s < 2 for s in result.shards)
            plain = BANKS(university).search("alice seminar", max_results=3)
            assert _signature(result.answers) == _signature(plain)


class TestBrowseAppIntegration:
    def test_app_builds_from_cluster_and_serves_replicas_page(
        self, university
    ):
        from repro.browse.app import BrowseApp

        spec = ClusterSpec(
            topology="replicated", replicas=2, replica_backend="thread"
        )
        with Cluster(spec, database=university.fork()) as cluster:
            app = BrowseApp(cluster=cluster)
            status, body = app.handle("/replicas", "")
            assert status.startswith("200")
            assert "staleness bound" in body
            status, _ = app.handle("/metrics", "")
            assert status.startswith("200")
            # /mutate routes to the primary through the replica set.
            status, body = app.handle(
                "/mutate", "op=insert&table=student&v=S907&v=Web+Write&v=BIGDEPT"
            )
            assert status.startswith("200") and "epoch: 1" in body

    def test_app_refuses_cluster_plus_explicit_parts(self, university):
        from repro.browse.app import BrowseApp
        from repro.errors import ReproError

        with Cluster(ClusterSpec(), database=university.fork()) as cluster:
            with pytest.raises(ReproError):
                BrowseApp(BANKS(university), cluster=cluster)
