"""Deprecation policy: old constructors warn; removed flags reject."""

from __future__ import annotations

import io
import warnings

import pytest

from repro.cluster import Cluster, ClusterSpec
from repro.cli import main


@pytest.fixture(scope="module")
def university():
    from repro.datasets import generate_university

    return generate_university()[0]


def run_cli(*argv: str):
    out = io.StringIO()
    status = main(list(argv), out=out)
    return status, out.getvalue()


class TestDirectConstructionWarns:
    def test_query_engine_warns_and_names_the_replacement(self, university):
        from repro.core.cache import CachedBanks
        from repro.serve import QueryEngine

        with pytest.warns(
            DeprecationWarning, match="constructing QueryEngine directly"
        ) as caught:
            engine = QueryEngine(CachedBanks(university.fork()))
        engine.stop()
        message = next(
            str(w.message)
            for w in caught
            if "constructing QueryEngine directly" in str(w.message)
        )
        assert "ClusterSpec" in message

    def test_shard_router_warns_and_names_the_replacement(self, university):
        from repro.shard import ShardRouter

        with pytest.warns(
            DeprecationWarning, match="constructing ShardRouter directly"
        ) as caught:
            router = ShardRouter(
                university.fork(), shards=2, backend="thread"
            )
        router.stop()
        message = next(
            str(w.message)
            for w in caught
            if "constructing ShardRouter directly" in str(w.message)
        )
        assert "topology='sharded'" in message

    def test_cluster_construction_is_warning_free(self, university):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            with Cluster(
                ClusterSpec(), database=university.fork()
            ) as cluster:
                cluster.query("alice", k=1)
            with Cluster(
                ClusterSpec(
                    topology="sharded", shards=2, shard_backend="thread"
                ),
                database=university.fork(),
            ) as cluster:
                cluster.query("alice", k=1)
            with Cluster(
                ClusterSpec(
                    topology="replicated",
                    replicas=2,
                    replica_backend="thread",
                ),
                database=university.fork(),
            ) as cluster:
                cluster.query("alice", k=1)

    def test_direct_construction_still_works(self, university):
        """The shim is a warning, not a break: old code keeps running
        with parity-equal results."""
        from repro.core.banks import BANKS
        from repro.serve import QueryEngine

        plain = BANKS(university).search("alice seminar", max_results=3)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with QueryEngine(BANKS(university.fork())) as engine:
                engined = engine.search("alice seminar", max_results=3)
        assert [
            (a.tree.root, round(a.relevance, 9)) for a in plain
        ] == [(a.tree.root, round(a.relevance, 9)) for a in engined]


class TestRemovedServeFlags:
    """The one-release shims (--replica, --no-engine) are gone: the
    parser rejects them outright instead of warning."""

    def test_replica_flag_is_rejected(self, tmp_path):
        wal = str(tmp_path / "wal")
        with pytest.raises(SystemExit) as caught:
            run_cli(
                "serve", "demo:university", "--check", "--replica",
                "--wal", wal,
            )
        assert caught.value.code == 2

    def test_no_engine_flag_is_rejected(self):
        with pytest.raises(SystemExit) as caught:
            run_cli("serve", "demo:university", "--check", "--no-engine")
        assert caught.value.code == 2

    def test_replacement_flags_serve(self, tmp_path):
        from repro.core.incremental import IncrementalBANKS
        from repro.serve.snapshot import SnapshotStore
        from repro.cli import load_database

        wal = str(tmp_path / "wal")
        store = SnapshotStore(
            IncrementalBANKS(load_database("demo:university")),
            copy_mode="delta",
            wal=wal,
        )
        store.mutate(
            lambda f: f.insert("student", ["S901", "Old Flagg", "BIGDEPT"])
        )
        status, output = run_cli(
            "serve", "demo:university", "--check", "--follow", "--wal", wal
        )
        assert status == 0
        assert "replica caught up" in output
        status, _ = run_cli("serve", "demo:university", "--check", "--inline")
        assert status == 0

    def test_new_flags_are_warning_free(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            status, _ = run_cli("serve", "demo:university", "--check")
            assert status == 0
            status, _ = run_cli(
                "serve", "demo:university", "--check", "--inline"
            )
            assert status == 0
