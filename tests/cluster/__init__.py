"""Tests for the repro.cluster public API layer."""
