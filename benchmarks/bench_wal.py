"""Durable-log benchmarks (the ISSUE 4 acceptance criteria).

Three claims, each asserted on ``demo:bibliography``:

1. **Overhead** — at batch size 1, the durable write path (delta
   snapshot + WAL append + per-epoch fsync) costs at most **3x** the
   in-memory ``copy_mode="delta"`` path on the same >= 50-epoch mixed
   insert/delete/update workload.  The WAL adds one pickle, one
   ~write, one fsync per epoch — constant work against the delta
   derivation both sides share (measured ~1.5x on the reference box;
   see ``benchmarks/baselines/BENCH_wal.json``).
2. **Recovery parity** — replaying the WAL from the base snapshot
   (:meth:`~repro.core.incremental.IncrementalBANKS.recover`) must
   reproduce the never-crashed facade's top-5 answers for **all**
   bibliography ``DEMO_QUERIES``, roots and scores strictly equal.
3. **Replica parity** — a :class:`~repro.store.wal.ReplicaFollower`
   tailing the same WAL from a **second (forked) process** must reach
   ``replica_lag_epochs == 0`` and return identical answers.

Run with::

    pytest benchmarks/bench_wal.py -q -s
"""

from __future__ import annotations

from benchjson import record_bench_result
from repro.datasets import DEMO_QUERY_SETS
from repro.store.bench import run_wal_benchmark

#: The acceptance bar: >= 50 mixed mutation epochs.
MUTATIONS = 52

#: Durable writes may cost at most this multiple of in-memory ones.
MAX_OVERHEAD = 3.0


def test_bibliography_wal_overhead_recovery_and_replica(benchmark, bibliography):
    database, _anecdotes = bibliography
    queries = DEMO_QUERY_SETS["bibliography"]

    report = benchmark.pedantic(
        lambda: run_wal_benchmark(
            database,
            dataset="bibliography",
            mutations=MUTATIONS,
            batch_size=1,
            queries=queries,
        ),
        rounds=1,
        iterations=1,
    )
    print("\n" + report.render())

    record_bench_result(
        "wal",
        "bibliography",
        {
            "mutations": report.mutations,
            "fsync": report.fsync,
            "wal_overhead_x": round(report.overhead, 3),
            "wal_bytes": report.wal_bytes,
            "epochs": report.epochs,
            "recover_seconds": round(report.recover_seconds, 4),
            "wal_overhead_ok": float(report.overhead <= MAX_OVERHEAD),
            "recovery_parity": float(report.recovery_ok),
            "replica_parity": float(report.replica_ok),
            "replica_lag_zero": float(report.replica_lag == 0),
            "replica_cross_process": bool(report.replica_cross_process),
        },
    )

    # Acceptance: durable writes <= 3x in-memory delta writes at batch
    # size 1; recovery and the second-process replica reproduce the
    # live facade's top-5 answers exactly, with zero replica lag.
    assert report.epochs >= 50
    assert report.overhead <= MAX_OVERHEAD
    assert report.recovery_ok
    assert report.replica_ok
    assert report.replica_lag == 0
