"""Replica-set acceptance benchmarks (the ISSUE 5 criteria).

Four claims, asserted on ``demo:bibliography``:

1. **Parity** — every WAL-following replica answers the whole
   ``DEMO_QUERIES`` battery with exactly the primary's top-5 (roots
   and scores): replication must never change an answer.
2. **Read-your-writes** — a read issued with
   ``consistency="read_your_writes"`` immediately after a mutation
   observes that mutation's epoch (replica waits, or the primary
   serves).
3. **Lag exclusion** — a replica suspended past the staleness bound
   (``max_lag``) is routed around by the balancer and re-admitted once
   it catches back up.
4. **Read scaling** — ``--replicas 3`` (process backend) answers the
   concurrent read workload at >= 1.5x the QPS of a single replica.
   A CPU-parallelism property, measurable only with a core per
   replica: the assertion is gated exactly like the route-QPS bar in
   ``bench_shard.py``; the measured ratio is recorded in
   ``BENCH_replicaset.json`` either way.

Run with::

    pytest benchmarks/bench_replicaset.py -q -s
"""

from __future__ import annotations

import os

from benchjson import record_bench_result
from repro.cluster.bench import run_replicaset_benchmark
from repro.datasets import DEMO_QUERY_SETS
from repro.shard.process import fork_available

REPLICAS = 3
CONCURRENCY = 8
REQUESTS = 48
K = 5

#: The >=1.5x read-QPS acceptance bar needs one core per replica.
CAN_SCALE = fork_available() and (os.cpu_count() or 1) >= REPLICAS


def test_bibliography_replicaset_scaling_and_parity(benchmark, bibliography):
    database, _anecdotes = bibliography
    queries = DEMO_QUERY_SETS["bibliography"]

    report = benchmark.pedantic(
        lambda: run_replicaset_benchmark(
            database,
            queries,
            dataset="bibliography",
            requests=REQUESTS,
            concurrency=CONCURRENCY,
            replicas=REPLICAS,
            k=K,
        ),
        rounds=1,
        iterations=1,
    )
    print("\n" + report.render())

    record_bench_result(
        "replicaset",
        "bibliography",
        {
            "replicas": report.replicas,
            "backend": report.backend,
            "balance": report.balance,
            "requests": report.requests,
            "concurrency": report.concurrency,
            "k": report.k,
            "qps_single": round(report.qps_single, 3),
            "qps_replicaset": round(report.qps_multi, 3),
            "speedup_replicaset": round(report.speedup, 3),
            "replicaset_parity": report.parity_matched / report.parity_total,
            "read_your_writes": float(report.ryw_ok),
            "lag_exclusion": float(report.lag_exclusion_ok),
            "lag_readmission": float(report.readmitted_ok),
            "epochs": report.epochs,
        },
    )

    # Acceptance: every replica reproduces the primary's top-5 exactly.
    assert report.parity_matched == report.parity_total
    # Acceptance: read_your_writes observes the just-applied mutation.
    assert report.ryw_ok
    # Acceptance: the balancer honors the staleness bound, and the
    # laggard is re-admitted after catching up.
    assert report.lag_exclusion_ok
    assert report.readmitted_ok
    # Acceptance: >= 1.5x read QPS over a single replica — a
    # CPU-parallelism property, measurable only with a core per
    # replica worker.
    if CAN_SCALE:
        assert report.speedup >= 1.5
    else:
        print(
            f"(speedup assertion skipped: {os.cpu_count()} core(s) for "
            f"{REPLICAS} replica workers; measured "
            f"{report.speedup:.2f}x)"
        )
