"""Sharded scatter-gather benchmarks (the ISSUE 2 acceptance criteria,
plus the ISSUE 3 mutation-parity criterion).

Four claims, each asserted:

1. **Parity** — on ``demo:bibliography``, the 4-shard router returns
   the same top-5 answers as single-engine search over the full
   benchmark battery: same roots, scores within 1e-9.  This is the
   strong, machine-independent guarantee: the stitched graph
   reproduces every cross-shard answer exactly.
2. **Parity on TPC-D** — score parity over the TPC-D battery (strict
   root parity is not well defined there: interchangeable ``lineitem``
   rows produce exact-score tie groups whose cut-off member is
   arbitrary for any incremental engine).
3. **Throughput** — ``--shards 4`` answers a Zipf workload at
   concurrency 8 with >= 1.5x the QPS of ``--shards 1`` under *route*
   dispatch (one forked worker per shard, whole queries routed by
   hash), the policy whose QPS scales with cores.  Gather dispatch is
   measured alongside and is expected to sit at or below 1x on any
   machine — the exact scatter-gather's per-shard cost is lower
   bounded by proving a partition holds no better root (see
   ``repro.shard.bench``).  The assertion is gated on having a core
   per worker; both ratios are recorded in ``BENCH_shard.json``
   either way.
4. **Parity after mutations** — mutations published through a
   delta-mode :class:`~repro.serve.snapshot.SnapshotStore` and routed
   into the 4-shard router via :meth:`ShardRouter.apply` leave the
   gathered top-5 strictly equal to single-engine search over the
   *mutated* facade, on the whole battery plus mutation-targeted
   queries.  This is the first criterion exercising ``repro.shard``
   over a non-static database.

Run with::

    pytest benchmarks/bench_shard.py --benchmark-only -s
"""

from __future__ import annotations

import os

from benchjson import record_bench_result
from repro.datasets.bibliography import DEMO_QUERIES as BIBLIOGRAPHY_QUERIES
from repro.datasets.tpcd import DEMO_QUERIES as TPCD_QUERIES
from repro.shard.bench import run_shard_benchmark
from repro.shard.process import fork_available

SHARDS = 4
CONCURRENCY = 8
REQUESTS = 48
K = 5

#: The >=1.5x QPS acceptance bar needs one core per shard worker.
CAN_SCALE = fork_available() and (os.cpu_count() or 1) >= SHARDS


def _record(report) -> None:
    record_bench_result(
        "shard",
        report.dataset,
        {
            "requests": report.requests,
            "concurrency": report.concurrency,
            "shards": report.shards,
            "backend": report.backend,
            "k": report.k,
            "qps_single": round(report.single_qps, 3),
            "qps_gather": round(report.gather_qps, 3),
            "qps_route": round(report.route_qps, 3),
            "median_ms_single": round(report.single_median_ms, 1),
            "median_ms_gather": round(report.gather_median_ms, 1),
            "median_ms_route": round(report.route_median_ms, 1),
            "speedup_gather": round(report.speedup_gather, 3),
            "speedup_route": round(report.speedup_route, 3),
            "parity_strict": report.parity_matched / report.parity_total,
            "parity_scores": (
                report.score_parity_matched / report.parity_total
            ),
            "parity_never_worse": (
                report.never_worse_matched / report.parity_total
            ),
            "parity_route": (
                report.route_parity_matched / report.parity_total
            ),
            "cut_fraction": round(report.cut_fraction, 3),
        },
    )


def test_bibliography_parity_and_throughput(benchmark, bibliography):
    database, _anecdotes = bibliography

    report = benchmark.pedantic(
        lambda: run_shard_benchmark(
            database,
            BIBLIOGRAPHY_QUERIES,
            dataset="bibliography",
            requests=REQUESTS,
            concurrency=CONCURRENCY,
            shards=SHARDS,
            backend="auto",
            k=K,
        ),
        rounds=1,
        iterations=1,
    )
    print("\n" + report.render())
    _record(report)

    # Acceptance: the 4-shard gather returns the same top-5 answers
    # (same roots, scores within 1e-9) as single-engine search.
    assert report.parity_matched == report.parity_total
    # Route dispatch reproduces the single engine's relevance sequence
    # (same full search by one worker; only exact-score tie membership
    # may differ, and the bibliography battery has no boundary ties).
    assert report.route_parity_matched == report.parity_total
    # Acceptance: >= 1.5x QPS over --shards 1 at concurrency 8 (route
    # dispatch) — a CPU-parallelism property, measurable only with a
    # core per worker.
    if CAN_SCALE:
        assert report.speedup_route >= 1.5
    else:
        print(
            f"(speedup assertion skipped: {os.cpu_count()} core(s) for "
            f"{SHARDS} shard workers; measured route "
            f"{report.speedup_route:.2f}x / gather "
            f"{report.speedup_gather:.2f}x)"
        )


def test_bibliography_parity_after_routed_mutations(bibliography):
    """Mutate through the delta log, replay into the router, re-check
    strict 4-shard parity against the mutated single-engine facade."""
    from repro.core.incremental import IncrementalBANKS
    from repro.serve.snapshot import SnapshotStore
    from repro.shard.router import ShardRouter

    database, _anecdotes = bibliography
    # Forks keep the session-scoped dataset pristine for other tests.
    store = SnapshotStore(
        IncrementalBANKS(database.fork()), copy_mode="delta"
    )
    seen = store.log.pin()
    planted = store.mutate_batch(
        [
            lambda f: f.insert("paper", ["mut-p1", "epoch replay convergence"]),
            lambda f: f.insert("paper", ["mut-p2", "structural sharing heaps"]),
            lambda f: f.insert("author", ["mut-a1", "vera molnar"]),
            lambda f: f.insert("writes", ["mut-a1", "mut-p1"]),
            lambda f: f.insert("writes", ["mut-a1", "mut-p2"]),
        ]
    )
    store.mutate(
        lambda f: f.update(planted[0], {"title": "epoch replay dynamics"})
    )
    store.mutate(lambda f: f.delete(planted[4]))

    with ShardRouter(database.fork(), shards=SHARDS, backend="thread") as router:
        applied = router.apply_epochs(store.log.entries_since(seen))
        store.log.release(seen)
        assert applied == 7
        facade = store.current().facade
        battery = tuple(BIBLIOGRAPHY_QUERIES) + (
            "replay dynamics",
            "vera structural",
            "molnar epoch",
        )
        matched = 0
        for query in battery:
            routed = [
                (a.tree.root, round(a.relevance, 9))
                for a in router.search(query, max_results=K)
            ]
            single = [
                (a.tree.root, round(a.relevance, 9))
                for a in facade.search(query, max_results=K)
            ]
            if routed == single:
                matched += 1
        print(
            f"\npost-mutation parity: {matched}/{len(battery)} "
            f"(epoch {router.epoch})"
        )
        record_bench_result(
            "shard",
            "bibliography_mutations",
            {
                "deltas_applied": applied,
                "parity_after_mutations": matched / len(battery),
            },
        )
        assert matched == len(battery)


def test_tpcd_parity_and_throughput(benchmark, tpcd):
    database, _anecdotes = tpcd

    report = benchmark.pedantic(
        lambda: run_shard_benchmark(
            database,
            TPCD_QUERIES,
            dataset="tpcd",
            requests=32,
            concurrency=CONCURRENCY,
            shards=SHARDS,
            backend="auto",
            k=K,
        ),
        rounds=1,
        iterations=1,
    )
    print("\n" + report.render())
    _record(report)

    # Never-worse everywhere: a strict mismatch may be an exact-score
    # tie or a better answer the single pass missed (its output heap
    # orders only approximately) — never a lost or mis-scored answer.
    assert report.never_worse_matched == report.parity_total
