"""Benchmark result files for the CI regression gate.

Each benchmark module writes a ``BENCH_<name>.json`` next to the
working directory (override with ``BENCH_OUTPUT_DIR``); the CI
``bench-regression`` job uploads them as artifacts and compares them
against the committed baselines in ``benchmarks/baselines/`` with
``benchmarks/check_regression.py``.

Files merge across tests: a module's tests each contribute one dataset
entry, so partial runs still produce a valid (smaller) file.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict


def bench_json_path(name: str) -> str:
    out_dir = os.environ.get("BENCH_OUTPUT_DIR", ".")
    return os.path.join(out_dir, f"BENCH_{name}.json")


def record_bench_result(name: str, key: str, payload: Dict[str, Any]) -> str:
    """Merge ``payload`` under ``key`` into ``BENCH_<name>.json``."""
    path = bench_json_path(name)
    document: Dict[str, Any] = {"benchmark": name}
    if os.path.exists(path):
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    document.setdefault("cpu_count", os.cpu_count() or 1)
    document.setdefault("results", {})[key] = payload
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
