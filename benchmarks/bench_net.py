"""Network-tier acceptance benchmarks (the ISSUE 7 criteria).

Three claims, asserted on ``demo:bibliography`` behind a real
loopback ``HttpServer``:

1. **Parity** — ``/v1/query`` answers the whole ``DEMO_QUERIES``
   battery with exactly the in-process ``Cluster.query`` top-5 (roots
   and scores): the wire codec must never change an answer.
2. **Streaming wins** — the SSE stream delivers its first answer
   strictly before the full top-k completes (time-to-first-answer
   < whole-stream latency, with at least one answer frame preceding
   the result frame).
3. **Throughput rides along** — sequential loopback HTTP QPS is
   recorded as an artifact for humans and dashboards; absolute QPS is
   not gated (wall-clock numbers do not transfer between machines).

Run with::

    pytest benchmarks/bench_net.py -q -s
"""

from __future__ import annotations

from benchjson import record_bench_result
from repro.datasets import DEMO_QUERY_SETS
from repro.net import run_net_benchmark

REQUESTS = 32
K = 5


def test_bibliography_http_parity_and_streaming(benchmark, bibliography):
    database, _anecdotes = bibliography
    queries = DEMO_QUERY_SETS["bibliography"]

    report = benchmark.pedantic(
        lambda: run_net_benchmark(
            database,
            queries,
            dataset="bibliography",
            k=K,
            requests=REQUESTS,
        ),
        rounds=1,
        iterations=1,
    )
    print("\n" + report.render())

    record_bench_result(
        "net",
        "bibliography",
        {
            "k": report.k,
            "requests": report.requests,
            "net_parity": report.parity_matched / report.parity_total,
            "net_ttfa_ok": float(report.ttfa_ok),
            "ttfa_ms": round(report.ttfa_seconds * 1000.0, 3),
            "stream_ms": round(report.stream_seconds * 1000.0, 3),
            "stream_answers": report.stream_answers,
            "http_qps": round(report.qps, 3),
        },
    )

    # Acceptance: the wire format reproduces the in-process top-5
    # exactly on every demo query.
    assert report.parity_matched == report.parity_total
    # Acceptance: SSE streams the first answer strictly before the
    # full top-k completes.
    assert report.stream_answers >= 1
    assert report.first_before_result
    assert report.ttfa_seconds < report.stream_seconds
