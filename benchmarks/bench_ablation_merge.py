"""Ablation — Eq. 1 merge rule: minimum vs parallel resistance.

When both directions of a tuple pair carry edges, the paper takes the
minimum of the two candidate weights but notes "other choices are
possible.  For instance, if one were to view the two weights as
resistances in an electrical network, one may use the equivalent
parallel resistance."  This ablation reruns the Figure 5 workload under
both merge rules at the best scoring setting and reports the error —
showing the choice is not load-bearing on this workload (the parallel
rule only lowers weights where candidates collide).
"""

from __future__ import annotations

import pytest

from repro import BANKS
from repro.core.scoring import ScoringConfig
from repro.eval.baselines import parallel_resistance_policy
from repro.eval.error_score import scale_errors
from repro.eval.sweep import run_workload
from repro.eval.workload import bibliography_workload


@pytest.mark.parametrize("merge_rule", ["min", "parallel"])
def test_merge_rule_error(benchmark, bibliography, merge_rule):
    database, anecdotes = bibliography
    policy = (
        parallel_resistance_policy() if merge_rule == "parallel" else None
    )
    banks = BANKS(database, weight_policy=policy)
    workload = bibliography_workload(anecdotes)
    total_ideals = sum(len(q.ideal_keys) for q in workload)

    def run():
        raw, _ = run_workload(
            banks, workload, ScoringConfig(lambda_weight=0.2, edge_log=True)
        )
        return raw

    raw = benchmark.pedantic(run, rounds=1, iterations=1)
    scaled = scale_errors(raw, total_ideals)
    print(f"\n[merge={merge_rule}] scaled error = {scaled:.1f}")
    assert scaled <= 10.0
