"""Write-path benchmarks (the ISSUE 3 acceptance criteria).

Two claims, each asserted:

1. **Throughput** — on ``demo:bibliography`` at batch size 1, the
   delta-log write path (copy-on-write fork + epoch publication)
   sustains >= 5x the write throughput of the deep-copy path on the
   same mutation workload.  Structural sharing makes the capture
   O(delta); the deep copy is O(data) — on this dataset the measured
   gap is an order of magnitude beyond the bar (see
   ``benchmarks/baselines/BENCH_mutate.json``), so 5x holds on any
   hardware.
2. **Equivalence** — the delta path buys speed, not drift: both
   stores' final facades must match each other *and* a full rebuild
   of the mutated database (node set, edge set, weights, prestige,
   normalisers, probe-query answers).  The hypothesis property test in
   ``tests/core/test_incremental.py`` covers random sequences; this
   benchmark re-checks it on the measured workload.

Batch size 8 is measured alongside: batching amortises the deep copy,
so the ratio shrinks — reporting it keeps the comparison honest about
where the delta path matters most (interactive single-row writes, the
paper's live-publishing regime).

Run with::

    pytest benchmarks/bench_mutate.py --benchmark-only -s
"""

from __future__ import annotations

from benchjson import record_bench_result
from repro.store.bench import run_mutation_benchmark

MUTATIONS = 32


def _record(key: str, batch1, batch8) -> None:
    record_bench_result(
        "mutate",
        key,
        {
            "mutations": batch1.mutations,
            "writes_per_second_delta": round(
                batch1.delta_writes_per_second, 1
            ),
            "writes_per_second_deep": round(batch1.deep_writes_per_second, 1),
            "publish_ms_p50_delta": round(batch1.delta_publish_ms_p50, 3),
            "publish_ms_p50_deep": round(batch1.deep_publish_ms_p50, 3),
            "speedup_write_batch1": round(batch1.speedup, 3),
            "speedup_write_batch8": round(batch8.speedup, 3),
            "epochs": batch1.epochs,
            "deltas_logged": batch1.deltas_logged,
            "equivalence_ok": bool(
                batch1.equivalence_ok and batch8.equivalence_ok
            ),
        },
    )


def test_bibliography_write_throughput_and_equivalence(benchmark, bibliography):
    database, _anecdotes = bibliography

    batch1 = benchmark.pedantic(
        lambda: run_mutation_benchmark(
            database, dataset="bibliography", mutations=MUTATIONS, batch_size=1
        ),
        rounds=1,
        iterations=1,
    )
    print("\n" + batch1.render())
    batch8 = run_mutation_benchmark(
        database, dataset="bibliography", mutations=MUTATIONS, batch_size=8
    )
    print("\n(batch size 8) " + f"speedup {batch8.speedup:.2f}x")
    _record("bibliography", batch1, batch8)

    # Acceptance: >= 5x write throughput at batch size 1, and the
    # delta path's end state equals the deep path's and a rebuild.
    assert batch1.equivalence_ok
    assert batch8.equivalence_ok
    assert batch1.speedup >= 5.0
