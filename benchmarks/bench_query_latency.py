"""Section 5.2 — query latency.

The paper: "Once the database graph is loaded, queries take about a
second to a few seconds for most queries on the bibliographic
database."  This bench times each of the 7 evaluation queries on the
prebuilt BANKS instance (the same separation the paper makes: load
once, query many times).
"""

from __future__ import annotations

import pytest

QUERIES = [
    ("q1-coauthors", "soumen sunita"),
    ("q2-common-coauthor", "seltzer sunita"),
    ("q3-author-title", "gray transaction"),
    ("q4-title-only", "transaction"),
    ("q5-author-only", "mohan"),
    ("q6-author-title-word", "sunita temporal"),
    ("q7-metadata", "author sudarshan"),
]


@pytest.mark.parametrize(("query_id", "text"), QUERIES)
def test_query_latency(benchmark, biblio_banks, query_id, text):
    answers = benchmark(
        biblio_banks.search, text, max_results=10, output_heap_size=400
    )
    assert answers, f"{query_id} returned no answers"


def test_metadata_query_is_the_slow_case(biblio_banks):
    """Sec. 7: "Query evaluation with keywords matching metadata can be
    relatively slow, since a large number of tuples may be defined to be
    relevant to the keyword."  Confirm the metadata query fans out to
    far more keyword nodes than the selective ones."""
    meta_sets = biblio_banks.resolve("author sudarshan")
    plain_sets = biblio_banks.resolve("soumen sunita")
    assert max(len(s) for s in meta_sets) > 20 * max(
        len(s) for s in plain_sets
    )
