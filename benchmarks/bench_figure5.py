"""Figure 5 — scaled rank-error vs parameter choices (lambda x EdgeLog).

Paper's findings this bench must reproduce (shape, not absolute values):

* lambda=0.2 with log scaling of edge weights is best (error ~0);
* lambda=0.5 with log scaling does almost as well (error ~3);
* lambda=1 (ignore edge weights) is the worst setting;
* lambda=0 / lambda=0.8 land in between;
* log scaling reduces the error at the good settings;
* the combination mode (additive vs multiplicative) barely matters.

Run with::

    pytest benchmarks/bench_figure5.py --benchmark-only -s
"""

from __future__ import annotations

import pytest

from repro.core.scoring import ScoringConfig
from repro.eval.sweep import figure5_sweep, format_figure5, run_workload


def _grid(points):
    return {
        (point.lambda_weight, point.edge_log): point.scaled_error
        for point in points
    }


def test_figure5_sweep(benchmark, figure5_banks, figure5_workload):
    points = benchmark.pedantic(
        figure5_sweep,
        args=(figure5_banks, figure5_workload),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_figure5(points))

    grid = _grid(points)
    best_setting = min(grid, key=grid.get)

    # lambda=0.2 + EdgeLog is the best cell, with (near-)zero error.
    assert best_setting == (0.2, True)
    assert grid[(0.2, True)] <= 1.0

    # lambda=0.5 + log close behind (paper: ~3).
    assert grid[(0.5, True)] <= 8.0

    # lambda=1 (ignore edge weights) is the worst setting.
    worst = max(grid.values())
    assert grid[(1.0, True)] == worst or grid[(1.0, False)] == worst

    # Log scaling helps at the good lambda settings.
    assert grid[(0.2, True)] <= grid[(0.2, False)]
    assert grid[(0.5, True)] <= grid[(0.5, False)]

    # Intermediate settings are strictly between best and worst.
    for lam in (0.0, 0.8):
        for edge_log in (False, True):
            assert grid[(0.2, True)] <= grid[(lam, edge_log)] < worst


def test_combination_mode_has_little_impact(
    benchmark, figure5_banks, figure5_workload
):
    """Sec. 5.3: "The 'mode' of score combination has almost no impact
    on the ranking (and as a result on error scores)".

    Measured as the paper measures it — through the error score: the
    per-query rank error must be identical across modes on almost every
    query.  (On our data one query — the deliberately edge-log-
    sensitive "seltzer sunita" — can flip under the multiplicative
    mode; see EXPERIMENTS.md, Known deviations.)
    """

    def per_query_errors():
        results = {}
        for combination in ("additive", "multiplicative"):
            _raw, per_query = run_workload(
                figure5_banks,
                figure5_workload,
                ScoringConfig(
                    lambda_weight=0.2, edge_log=False, combination=combination
                ),
            )
            results[combination] = per_query
        return results

    results = benchmark.pedantic(per_query_errors, rounds=1, iterations=1)
    print(f"\nper-query errors by mode: {results}")
    differing = [
        query_id
        for query_id in results["additive"]
        if results["additive"][query_id] != results["multiplicative"][query_id]
    ]
    print(f"queries whose error changes with the mode: {differing}")
    assert len(differing) <= 1


def test_node_log_has_little_impact(benchmark, figure5_banks, figure5_workload):
    """Sec. 5.3: "For node weights, log scaling gave the same ranking as
    no log scaling on our examples"."""

    def both_settings():
        errors = {}
        for node_log in (False, True):
            raw, _ = run_workload(
                figure5_banks,
                figure5_workload,
                ScoringConfig(
                    lambda_weight=0.2, edge_log=True, node_log=node_log
                ),
            )
            errors[node_log] = raw
        return errors

    errors = benchmark.pedantic(both_settings, rounds=1, iterations=1)
    print(f"\nnode-log raw errors: {errors}")
    assert abs(errors[False] - errors[True]) <= 3
