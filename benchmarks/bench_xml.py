"""XML keyword search (Sec. 7 extension): quality and latency.

No table in the paper covers XML (it was future work); this bench
holds the extension to the same standards as the relational side:

* the planted co-authored paper must be the top answer for the Fig. 2
  query on the XML corpus, exactly as on the relational corpus;
* containment hubs must be tamed by fan-out-scaled back edges (the
  Sec. 2.1 argument transplanted to XML): with scaling disabled, the
  document root — a hub touching everything — floods the results;
* query latency stays interactive at thousands of elements.

Run with::

    pytest benchmarks/bench_xml.py --benchmark-only -s
"""

from __future__ import annotations

import time

import pytest

from repro.xmlkw import XMLBanks
from repro.xmlkw.generator import ANECDOTE_TITLE, generate_bibliography_xml
from repro.xmlkw.model import XMLGraphConfig

EXCLUDED = ("bibliography", "authorref", "cite")


@pytest.fixture(scope="module")
def xml_banks():
    document = generate_bibliography_xml(papers=400, authors=200, seed=7)
    return XMLBanks(document, excluded_root_tags=EXCLUDED)


def test_xml_anecdote_quality(benchmark, xml_banks):
    answers = benchmark.pedantic(
        xml_banks.search,
        args=("soumen sunita",),
        kwargs={"max_results": 10},
        rounds=1,
        iterations=1,
    )
    print(f"\ntop answer:\n{answers[0].render()}")
    root = answers[0].root_element()
    title = root.find("title")
    assert title is not None and title.text == ANECDOTE_TITLE


def test_xml_query_latency(benchmark, xml_banks):
    queries = ("soumen sunita", "temporal", "title:mining", "author")

    def measure():
        rows = []
        for query in queries:
            start = time.perf_counter()
            xml_banks.search(query, max_results=10)
            rows.append((query, time.perf_counter() - start))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print()
    for query, latency in rows:
        print(f"{1000 * latency:>8.1f} ms  {query!r}")
    for _query, latency in rows:
        assert latency < 5.0
    print(
        f"corpus: {xml_banks.stats.num_nodes} elements, "
        f"{xml_banks.stats.num_edges} edges"
    )


def test_xml_fanout_scaling_ablation(benchmark):
    """Without fan-out scaling the flat root makes sibling papers
    spuriously near; the paper-level connection must win only when
    scaling is on."""
    document = generate_bibliography_xml(papers=150, authors=80, seed=11)

    def build_and_rank():
        scaled = XMLBanks(document, excluded_root_tags=EXCLUDED)
        unscaled = XMLBanks(
            document,
            graph_config=XMLGraphConfig(backward_fanout_scaling=False),
            excluded_root_tags=EXCLUDED,
        )
        results = {}
        for label, banks in (("scaled", scaled), ("unscaled", unscaled)):
            answers = banks.search("soumen sunita", max_results=5)
            results[label] = [
                (answer.root_element().tag, answer.tree.weight)
                for answer in answers
            ]
        return results

    results = benchmark.pedantic(build_and_rank, rounds=1, iterations=1)
    print(f"\nscaled top answers:   {results['scaled']}")
    print(f"unscaled top answers: {results['unscaled']}")

    # With scaling, the co-authored paper connection is strictly
    # cheaper than any root-mediated tree; the top answer is a paper.
    assert results["scaled"][0][0] == "paper"
    # Without scaling, root-mediated trees cost the same as real
    # connections: the top answers' weights collapse together (the
    # hub-flooding failure the paper describes).
    scaled_weights = [weight for _tag, weight in results["scaled"]]
    unscaled_weights = [weight for _tag, weight in results["unscaled"]]
    assert max(unscaled_weights) - min(unscaled_weights) <= max(
        scaled_weights
    ) - min(scaled_weights)
