"""Incremental maintenance vs full rebuild (deployment concern).

Sec. 5.2 measures the initial graph load (~2 minutes for 100K nodes in
the paper's Java prototype); a live deployment cannot pay that per
insert.  This bench quantifies the win: applying N inserts as graph
deltas must beat N full rebuilds by orders of magnitude and stay
equivalent to a rebuild (the tests assert equivalence; here we assert
the speedup and the end-state answer equality).

Run with::

    pytest benchmarks/bench_incremental.py --benchmark-only -s
"""

from __future__ import annotations

import time

import pytest

from repro import BANKS
from repro.core.incremental import IncrementalBANKS
from repro.datasets import generate_bibliography

INSERTS = 60


def _new_rows(database, count: int):
    """(paper, writes) insert payloads referencing existing authors."""
    author_rows = list(database.table("author").scan())
    rows = []
    for index in range(count):
        pid = f"NEWP{index}"
        author = author_rows[index % len(author_rows)]
        rows.append(
            (
                ("paper", [pid, f"freshly inserted study {index}"]),
                ("writes", [author["author_id"], pid]),
            )
        )
    return rows


def test_incremental_insert_vs_rebuild(benchmark):
    def measure():
        database, _ = generate_bibliography(papers=250, authors=140, seed=3)
        payload = _new_rows(database, INSERTS)

        incremental = IncrementalBANKS(database)
        start = time.perf_counter()
        for paper_insert, writes_insert in payload:
            incremental.insert(*paper_insert)
            incremental.insert(*writes_insert)
        incremental_time = time.perf_counter() - start

        # One full rebuild, timed, as the per-insert alternative cost.
        start = time.perf_counter()
        rebuilt = BANKS(incremental.database)
        rebuild_time = time.perf_counter() - start

        return incremental, rebuilt, incremental_time, rebuild_time

    incremental, rebuilt, incremental_time, rebuild_time = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    per_delta = incremental_time / (2 * INSERTS)
    print(
        f"\n{2 * INSERTS} deltas in {1000 * incremental_time:.1f} ms "
        f"({1000 * per_delta:.2f} ms/delta); "
        f"one full rebuild: {1000 * rebuild_time:.1f} ms"
    )
    # A delta must be far cheaper than a rebuild (the whole point).
    # (Generous margin: CI timing noise must not flake the suite.)
    assert per_delta < rebuild_time / 3

    # End state equivalent: same stats and same answers.
    incremental._refresh_stats()
    assert incremental.stats == rebuilt.stats
    for query in ("freshly inserted", "soumen sunita"):
        left = [a.tree.undirected_key() for a in incremental.search(query)]
        right = [a.tree.undirected_key() for a in rebuilt.search(query)]
        assert left == right


def test_incremental_delete_vs_rebuild(benchmark):
    def measure():
        database, _ = generate_bibliography(papers=250, authors=140, seed=3)
        incremental = IncrementalBANKS(database)
        doomed = list(database.table("cites").rids())[:INSERTS]
        start = time.perf_counter()
        for rid in doomed:
            incremental.delete(("cites", rid))
        incremental_time = time.perf_counter() - start

        start = time.perf_counter()
        rebuilt = BANKS(incremental.database)
        rebuild_time = time.perf_counter() - start
        return incremental, rebuilt, incremental_time, rebuild_time

    incremental, rebuilt, incremental_time, rebuild_time = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    per_delta = incremental_time / INSERTS
    print(
        f"\n{INSERTS} deletes in {1000 * incremental_time:.1f} ms "
        f"({1000 * per_delta:.2f} ms/delete); "
        f"rebuild: {1000 * rebuild_time:.1f} ms"
    )
    assert per_delta < rebuild_time / 3
    incremental._refresh_stats()
    assert incremental.stats == rebuilt.stats


def test_feedback_reranking(benchmark):
    """Sec. 7 authority transfer: endorsements must lift an endorsed
    paper past a structurally identical rival."""
    from repro.core.feedback import FeedbackBanks
    from repro.core.scoring import ScoringConfig

    def measure():
        database, anecdotes = generate_bibliography(
            papers=150, authors=90, seed=3
        )
        banks = FeedbackBanks(
            database,
            scoring=ScoringConfig(lambda_weight=0.5, edge_log=True),
        )
        before = [a.tree.root for a in banks.search("transaction")]
        # Endorse the last-ranked transaction paper heavily.
        target = before[-1]
        for _ in range(20):
            banks.record_click(target)
        banks.apply_feedback()
        after = [a.tree.root for a in banks.search("transaction")]
        return target, before, after

    target, before, after = benchmark.pedantic(measure, rounds=1, iterations=1)
    print(
        f"\nendorsed {target}: rank {before.index(target)} -> "
        f"{after.index(target)}"
    )
    assert after.index(target) < before.index(target)
