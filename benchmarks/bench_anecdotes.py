"""Section 5.1 anecdotes — every stated ranking must reproduce.

One benchmark per anecdote; each asserts the paper's stated winner and
measures the query's latency on the way.

Paper statements covered:

* "For the query 'Mohan' ... C. Mohan came out at the top of the
  ranking, with Mohan Ahuja and Mohan Kamat following."
* "The query 'transaction' returned Jim Gray's classic paper and the
  book by Gray and Reuter as the top two answers."
* "the query 'computer engineering' returned the Computer Science and
  Engineering department with a higher relevance than a number of
  thesis [sic] that had these two words in their title."
* "The query 'sudarshan aditya' returned a thesis written by Aditya
  whose advisor is Sudarshan."
* "the query 'soumen sunita' returned the answer shown in Figure 2."
* "The query 'seltzer sunita' returned Stonebraker as the root ...
  Without log scaling on edges, this answer got a lower rank."
* (Sec. 2.1 TPCD example) "if a query matches two parts the one with
  more orders would get a higher prestige."
"""

from __future__ import annotations


from repro import BANKS, ScoringConfig


def test_mohan_prestige(benchmark, biblio_banks, bibliography):
    _db, anecdotes = bibliography
    answers = benchmark(biblio_banks.search, "mohan", max_results=5)
    roots = [answer.tree.root for answer in answers]
    assert roots[0] == anecdotes.c_mohan
    assert roots[1] == anecdotes.mohan_ahuja
    assert roots[2] == anecdotes.mohan_kamat


def test_transaction_citation_prestige(benchmark, biblio_banks, bibliography):
    _db, anecdotes = bibliography
    answers = benchmark(biblio_banks.search, "transaction", max_results=5)
    roots = [answer.tree.root for answer in answers]
    assert roots[0] == anecdotes.transaction_classic
    assert roots[1] == anecdotes.transaction_book


def test_soumen_sunita_figure2(benchmark, biblio_banks, bibliography):
    """The Fig. 2 tree: paper root, writes intermediates, author leaves."""
    _db, anecdotes = bibliography
    answers = benchmark(biblio_banks.search, "soumen sunita", max_results=10)
    top_roots = [answer.tree.root for answer in answers[:2]]
    assert anecdotes.chakrabarti_sd98 in top_roots
    assert anecdotes.soumen_sunita_second_paper in top_roots
    # The Fig. 2 answer is a 5-node tree covering both author leaves.
    figure2 = next(
        a for a in answers if a.tree.root == anecdotes.chakrabarti_sd98
    )
    assert figure2.tree.size() == 5
    assert anecdotes.soumen in figure2.tree.nodes
    assert anecdotes.sunita in figure2.tree.nodes


def test_seltzer_sunita_stonebraker_root(benchmark, biblio_banks, bibliography):
    _db, anecdotes = bibliography
    answers = benchmark(
        biblio_banks.search,
        "seltzer sunita",
        max_results=10,
        output_heap_size=400,
    )
    assert answers[0].tree.root == anecdotes.stonebraker
    assert anecdotes.seltzer in answers[0].tree.nodes
    assert anecdotes.sunita in answers[0].tree.nodes


def test_seltzer_sunita_needs_edge_log(biblio_banks, bibliography):
    """Without log scaling the Stonebraker answer ranks lower (its
    author->writes back edge is very heavy)."""
    _db, anecdotes = bibliography

    def rank_of_stonebraker(edge_log: bool) -> int:
        answers = biblio_banks.search(
            "seltzer sunita",
            max_results=10,
            scoring=ScoringConfig(lambda_weight=0.2, edge_log=edge_log),
            output_heap_size=400,
        )
        for answer in answers:
            if answer.tree.root == anecdotes.stonebraker:
                return answer.rank
        return len(answers)

    with_log = rank_of_stonebraker(True)
    without_log = rank_of_stonebraker(False)
    assert with_log == 0
    assert without_log > with_log


def test_computer_engineering_department(benchmark, thesis_banks, thesis):
    _db, anecdotes = thesis
    answers = benchmark(
        thesis_banks.search, "computer engineering", max_results=10
    )
    assert answers[0].tree.root == anecdotes.cse_department
    # The title-matching theses are present but ranked below.
    other_roots = {answer.tree.root for answer in answers[1:]}
    assert other_roots & set(anecdotes.computer_engineering_theses)


def test_sudarshan_aditya_thesis(benchmark, thesis_banks, thesis):
    _db, anecdotes = thesis
    answers = benchmark(
        thesis_banks.search, "sudarshan aditya", max_results=5
    )
    # The answer is Aditya's thesis advised by Sudarshan; the root may
    # be the thesis or the student (duplicate-modulo-direction trees
    # keep whichever rooting scores higher, Sec. 3).
    top = answers[0].tree
    assert anecdotes.aditya_thesis in top.nodes
    assert anecdotes.sudarshan in top.nodes
    assert anecdotes.aditya in top.nodes
    assert top.root in (anecdotes.aditya_thesis, anecdotes.aditya)


def test_tpcd_part_prestige(benchmark, tpcd):
    """Sec. 2.1: the part with more orders gets higher prestige."""
    database, anecdotes = tpcd
    banks = BANKS(database)
    answers = benchmark(banks.search, "steel", max_results=5)
    roots = [answer.tree.root for answer in answers]
    assert roots[0] == anecdotes.popular_steel_part
    assert anecdotes.unpopular_steel_part in roots[1:]
