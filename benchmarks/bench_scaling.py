"""Scaling behaviour: query latency vs dataset size and keyword count.

Sec. 5.2 reports "queries take about a second to a few seconds for most
queries" on the 100K-node graph and Sec. 7 notes that queries matching
many nodes are the slow ones.  This bench charts both axes on generated
bibliographies:

* latency vs graph size at fixed query (the paper's implicit claim:
  growth is moderate because backward expansion touches a
  neighbourhood, not the whole graph);
* latency vs number of keywords at fixed size (each keyword adds
  concurrent Dijkstra iterators and larger cross products).

Run with::

    pytest benchmarks/bench_scaling.py --benchmark-only -s
"""

from __future__ import annotations

import time

import pytest

from repro import BANKS
from repro.datasets import generate_bibliography

#: (label, papers, authors) — node counts grow ~5x across steps.
SCALES = (
    ("tiny", 100, 60),
    ("small", 400, 220),
    ("medium", 1600, 800),
)


def _median_latency(banks: BANKS, query: str, repeats: int = 5) -> float:
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        banks.search(query, max_results=10)
        samples.append(time.perf_counter() - start)
    samples.sort()
    return samples[len(samples) // 2]


@pytest.fixture(scope="module")
def scaled_banks():
    instances = {}
    for label, papers, authors in SCALES:
        database, _ = generate_bibliography(
            papers=papers, authors=authors, seed=42
        )
        instances[label] = BANKS(database)
    return instances


def test_latency_vs_graph_size(benchmark, scaled_banks):
    def measure():
        rows = []
        for label, _papers, _authors in SCALES:
            banks = scaled_banks[label]
            latency = _median_latency(banks, "soumen sunita")
            rows.append((label, banks.stats.num_nodes, latency))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print()
    print(f"{'scale':<8} {'nodes':>8} {'median latency':>16}")
    for label, nodes, latency in rows:
        print(f"{label:<8} {nodes:>8} {1000 * latency:>13.1f} ms")

    # Interactive at every scale (the paper's core practicality claim).
    for _label, _nodes, latency in rows:
        assert latency < 5.0
    # End-to-end growth is sub-quadratic in node count (per-step ratios
    # are structure-sensitive; the envelope is the meaningful claim).
    (_, first_nodes, first_latency), (_, last_nodes, last_latency) = (
        rows[0],
        rows[-1],
    )
    if first_latency >= 0.001:
        assert last_latency / first_latency < (last_nodes / first_nodes) ** 2


def test_latency_vs_keyword_count(benchmark, scaled_banks):
    banks = scaled_banks["small"]
    queries = (
        "soumen",
        "soumen sunita",
        "soumen sunita byron",
        "soumen sunita byron temporal",
    )

    def measure():
        return [
            (query, _median_latency(banks, query)) for query in queries
        ]

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print()
    for query, latency in rows:
        terms = len(query.split())
        print(f"{terms} keyword(s): {1000 * latency:>8.1f} ms   ({query!r})")
    # All interactive; the paper's "a second to a few seconds" envelope.
    for _query, latency in rows:
        assert latency < 5.0


def test_broad_term_is_the_slow_case(benchmark, scaled_banks):
    """Sec. 7: "keywords matching metadata can be relatively slow, since
    a large number of tuples may be defined to be relevant" — a
    metadata term must cost more than a selective term."""
    banks = scaled_banks["small"]

    def measure():
        selective = _median_latency(banks, "soumen sunita")
        broad = _median_latency(banks, "author sudarshan")
        return selective, broad

    selective, broad = benchmark.pedantic(measure, rounds=1, iterations=1)
    print(
        f"\nselective: {1000 * selective:.1f} ms, "
        f"metadata-broad: {1000 * broad:.1f} ms"
    )
    assert broad > selective
