"""Section 5.2 — memory utilisation of the data graph.

The paper: "For a bibliographic database with 100K nodes and 300K
edges, memory utilization was around 120 MB.  Java implementations are
notorious for wasting space."  This bench deep-measures the Python graph
at several scales and reports MB plus derived per-node / per-edge byte
costs (the claim to preserve: the graph of a moderately large database
fits comfortably in memory).
"""

from __future__ import annotations

import pytest

from repro.core.model import build_data_graph
from repro.datasets import generate_bibliography
from repro.eval.memory import graph_memory_bytes

SCALES = [
    ("small", 400, 220),
    ("medium", 2000, 900),
]


@pytest.mark.parametrize(("label", "papers", "authors"), SCALES)
def test_graph_memory(benchmark, label, papers, authors):
    database, _anecdotes = generate_bibliography(
        papers=papers, authors=authors, include_anecdotes=False
    )
    graph, _stats = build_data_graph(database)

    report = benchmark.pedantic(
        graph_memory_bytes, args=(graph,), rounds=1, iterations=1
    )
    print(
        f"\n[{label}] nodes={report.num_nodes} edges={report.num_edges} "
        f"total={report.megabytes:.1f} MB "
        f"({report.bytes_per_node:.0f} B/node)"
    )
    # Sanity: the footprint stays in "modest amounts of memory" —
    # far below 10 KB per node even with Python object overhead.
    assert report.bytes_per_node < 10_000


def test_extrapolated_paper_scale():
    """Extrapolate per-node cost to the paper's 100K-node graph."""
    database, _anecdotes = generate_bibliography(
        papers=2000, authors=900, include_anecdotes=False
    )
    graph, _stats = build_data_graph(database)
    report = graph_memory_bytes(graph)
    per_node = report.total_bytes / report.num_nodes
    projected_mb = per_node * 100_000 / (1024 * 1024)
    print(
        f"\nprojected footprint at 100K nodes: {projected_mb:.0f} MB "
        f"(paper's Java prototype: ~120 MB)"
    )
    assert projected_mb < 1_000
