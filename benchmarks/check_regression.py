"""CI benchmark-regression gate.

Compares a freshly produced ``BENCH_*.json`` against the committed
baseline and fails (exit 1) when throughput regresses by more than the
threshold (default 20%).

What is gated, and why:

* ``speedup`` — the dimensionless throughput ratio each benchmark
  reports (engine vs serialized dispatch; N shards vs 1 shard).  It is
  measured entirely on the running machine, so it transfers between a
  laptop and a CI runner far better than absolute QPS does.  A
  regression here means the mechanism itself (dedup, caching, shard
  parallelism) got slower relative to its own baseline dispatch.
* ``parity_strict`` / ``parity_scores`` / ``results_match`` — required
  to be at least the baseline value: correctness never regresses.

Absolute QPS and latency figures ride along in the JSON as artifacts
for humans and dashboards, but are not gated — comparing wall-clock
numbers across different hardware would make the gate pure noise.

Usage::

    python benchmarks/check_regression.py \
        --current BENCH_shard.json \
        --baseline benchmarks/baselines/BENCH_shard.json \
        [--threshold 0.2]
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List

#: Throughput metrics gated with the relative threshold.
RATIO_METRICS = (
    "speedup",
    "speedup_gather",
    "speedup_route",
    "speedup_write_batch1",
    "speedup_write_batch8",
    "speedup_replicaset",
    # CSR search kernel vs the dict-of-dicts reference
    # (BENCH_kernel.json): median per-query latency ratio.
    "speedup_kernel",
    # Checkpointed recovery vs full WAL replay (BENCH_ops.json):
    # best-of-N wall-clock ratio on the 500-epoch log.
    "recovery_speedup",
)

#: Correctness metrics gated as "must not drop below baseline".
FLOOR_METRICS = (
    "parity_strict",
    "parity_scores",
    "parity_never_worse",
    "parity_route",
    "parity_after_mutations",
    "results_match",
    "equivalence_ok",
    # Durable-log floors (BENCH_wal.json): recovery and the
    # cross-process replica must reproduce the live answers exactly,
    # the replica must reach zero lag, and the durable write path must
    # stay within the 3x overhead bar bench_wal.py asserts.
    "recovery_parity",
    "replica_parity",
    "replica_lag_zero",
    "wal_overhead_ok",
    # Replica-set floors (BENCH_replicaset.json): every replica must
    # reproduce the primary's top-k exactly, read_your_writes must
    # observe the preceding mutation, and the balancer must honor the
    # staleness bound (exclusion + re-admission).
    "replicaset_parity",
    "read_your_writes",
    "lag_exclusion",
    "lag_readmission",
    # Network-tier floors (BENCH_net.json): /v1/query must reproduce
    # the in-process top-k exactly on every demo query, and the SSE
    # stream must deliver its first answer strictly before the full
    # top-k completes.
    "net_parity",
    "net_ttfa_ok",
    # Observability floor (BENCH_serve.json): the tracing hooks must
    # stay free when disabled — bench_serve.py asserts the off/on
    # throughput ratio >= 0.95.
    "obs_overhead_ok",
    # CSR-kernel floor (BENCH_kernel.json): the frozen facade must
    # reproduce the reference facade's top-5 (roots and scores,
    # float-equal) on every DEMO_QUERIES entry of both datasets.
    "kernel_parity",
    # Ops floors (BENCH_ops.json): both recovery paths must reproduce
    # the live facade's top-5 exactly, the checkpointed path must hold
    # the >= 3x acceptance bar bench_ops.py asserts, and a live drain
    # must neither change answers nor break the ownership cover.
    "checkpoint_recovery_parity",
    "recovery_speedup_ok",
    "rebalance_parity",
    "rebalance_cover",
    # Ingest floors (BENCH_ingest.json): a crash-and-resumed bulk load
    # must answer every demo query exactly like the uninterrupted run,
    # the graph must stay DBLP-scale (100k+ nodes), and the sustained
    # records/sec must clear the conservative bar bench_ingest.py
    # asserts.
    "ingest_parity",
    "ingest_scale_ok",
    "ingest_throughput_ok",
)


def _load(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def check(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    threshold: float,
) -> List[str]:
    """Every gate violation, as human-readable messages."""
    failures: List[str] = []
    baseline_results = baseline.get("results", {})
    current_results = current.get("results", {})
    for key, base_entry in baseline_results.items():
        entry = current_results.get(key)
        if entry is None:
            failures.append(f"{key}: missing from current results")
            continue
        for metric in RATIO_METRICS:
            if metric not in base_entry:
                continue
            base_value = float(base_entry[metric])
            value = float(entry.get(metric, 0.0))
            floor = base_value * (1.0 - threshold)
            if value < floor:
                failures.append(
                    f"{key}.{metric}: {value:.3f} < {floor:.3f} "
                    f"(baseline {base_value:.3f} - {threshold:.0%})"
                )
        for metric in FLOOR_METRICS:
            if metric not in base_entry:
                continue
            base_value = float(base_entry[metric])
            value = float(entry.get(metric, 0.0))
            if value < base_value:
                failures.append(
                    f"{key}.{metric}: {value:.3f} < baseline "
                    f"{base_value:.3f} (correctness must not regress)"
                )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--current", required=True)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--threshold", type=float, default=0.2)
    args = parser.parse_args(argv)

    current = _load(args.current)
    baseline = _load(args.baseline)
    failures = check(current, baseline, args.threshold)
    name = current.get("benchmark", args.current)
    if failures:
        print(f"benchmark regression in {name!r}:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(
        f"{name!r}: no regression beyond {args.threshold:.0%} "
        f"({len(baseline.get('results', {}))} result set(s) checked)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
