"""Ablation — output-heap size vs ordering quality (Sec. 3 heuristic).

"To avoid these overheads, as a heuristic, we maintain a small
fixed-size heap of generated connection trees. ... While this heuristic
does not guarantee that the trees are generated in decreasing order, we
have found it works well even with a reasonably small heap size."

This bench quantifies that trade-off: for the junk-rich query
("seltzer sunita") it compares the emission order at several heap sizes
against the exact relevance order (huge heap), reporting precision@10
(how many of the true top-10 made it into the emitted top-10).
"""

from __future__ import annotations

import pytest

from repro.core.search import SearchConfig, backward_expanding_search

HEAP_SIZES = [10, 20, 50, 100, 400]


def _top10_keys(banks, heap_size):
    sets_ = banks.resolve("seltzer sunita")
    config = SearchConfig(
        max_results=10,
        output_heap_size=heap_size,
        excluded_root_tables=banks.search_config.excluded_root_tables,
    )
    answers = list(
        backward_expanding_search(banks.graph, sets_, banks.scorer, config)
    )
    return [answer.tree.undirected_key() for answer in answers]


@pytest.mark.parametrize("heap_size", HEAP_SIZES)
def test_heap_size_vs_ordering_quality(benchmark, biblio_banks, heap_size):
    exact = set(_top10_keys(biblio_banks, 100_000))
    emitted = benchmark(_top10_keys, biblio_banks, heap_size)
    precision = len(set(emitted) & exact) / max(1, len(exact))
    print(f"\nheap={heap_size}: precision@10={precision:.2f}")
    # Monotone sanity: the generous heap reproduces the exact ordering.
    if heap_size >= 400:
        assert precision == 1.0


def test_larger_heaps_never_hurt(biblio_banks):
    exact = set(_top10_keys(biblio_banks, 100_000))
    precisions = []
    for heap_size in HEAP_SIZES:
        emitted = _top10_keys(biblio_banks, heap_size)
        precisions.append(len(set(emitted) & exact) / max(1, len(exact)))
    print(f"\nprecisions across {HEAP_SIZES}: {precisions}")
    assert precisions[-1] >= precisions[0]
