"""Ops benchmarks: checkpointed recovery speedup + live-drain parity.

Two claims, asserted on ``demo:bibliography``:

1. **Recovery speedup** — over a 500-epoch WAL with a checkpoint every
   100 epochs, recovering from the newest checkpoint plus the tail
   must be at least **3x** faster than replaying the whole history
   from the base snapshot, and both recoveries must reproduce the live
   facade's top-5 probe answers exactly
   (``checkpoint_recovery_parity``).  Full replay grows linearly with
   history while the checkpointed path replays at most one cadence
   interval, so the ratio widens with log length — 3x at 500 epochs is
   the conservative floor.
2. **Rebalance parity** — a sharded router draining one shard live
   must answer the probe queries identically before and after the
   drain (roots and scores), stay never-worse than the unsharded
   reference at every rank, and keep shard ownership a disjoint cover
   (``rebalance_parity``).

Run with::

    pytest benchmarks/bench_ops.py -q -s
"""

from __future__ import annotations

from benchjson import record_bench_result
from repro.ops.bench import run_ops_benchmark

#: The acceptance history: 500 epochs, checkpoint cadence 100.
EPOCHS = 500
CHECKPOINT_EVERY = 100

#: Checkpointed recovery must beat full replay by at least this much.
MIN_SPEEDUP = 3.0


def test_bibliography_checkpoint_recovery_and_rebalance(
    benchmark, bibliography
):
    database, _anecdotes = bibliography

    report = benchmark.pedantic(
        lambda: run_ops_benchmark(
            database,
            dataset="bibliography",
            epochs=EPOCHS,
            checkpoint_every=CHECKPOINT_EVERY,
        ),
        rounds=1,
        iterations=1,
    )
    print("\n" + report.render())

    record_bench_result(
        "ops",
        "bibliography",
        {
            "epochs": report.epochs,
            "checkpoint_every": report.checkpoint_every,
            "checkpoints_written": report.checkpoints_written,
            "checkpoint_bytes": report.checkpoint_bytes,
            "checkpoint_ms": round(report.checkpoint_seconds * 1000.0, 2),
            "full_replay_seconds": round(report.full_replay_seconds, 4),
            "checkpoint_recover_seconds": round(
                report.checkpoint_recover_seconds, 4
            ),
            "recovery_speedup": round(report.recovery_speedup, 3),
            "recovery_speedup_ok": float(
                report.recovery_speedup >= MIN_SPEEDUP
            ),
            "checkpoint_recovery_parity": float(
                report.checkpoint_recovery_ok
            ),
            "rebalance_moves": report.rebalance_moves,
            "rebalance_seconds": round(report.rebalance_seconds, 4),
            "rebalance_parity": float(report.rebalance_ok),
            "rebalance_cover": float(report.cover_ok),
        },
    )

    # Acceptance: exact recovery from the checkpoint, >= 3x faster
    # than full replay at 500 epochs; the live drain changes nothing
    # a query can observe.
    assert report.epochs == EPOCHS
    assert report.checkpoints_written >= EPOCHS // CHECKPOINT_EVERY - 1
    assert report.checkpoint_recovery_ok
    assert report.recovery_speedup >= MIN_SPEEDUP
    assert report.rebalance_moves > 0
    assert report.rebalance_ok
    assert report.cover_ok
