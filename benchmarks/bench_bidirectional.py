"""Sec. 7 extension — bidirectional search for metadata-heavy queries.

"Query evaluation with keywords matching metadata can be relatively
slow, since a large number of tuples may be defined to be relevant to
the keyword. ... We are working on techniques to speed up such queries
by not performing backward search from large numbers of nodes, and
instead searching forwards from probable information nodes
corresponding to more selective keywords."

This bench compares pure backward search against the bidirectional
strategy on the metadata query ``author sudarshan`` (where "author"
matches every tuple of the author relation) and checks that both find
the ideal answer while the bidirectional variant spawns far fewer
backward iterators.
"""

from __future__ import annotations


from repro.core.bidirectional import bidirectional_search
from repro.core.search import SearchConfig, backward_expanding_search

QUERY = "author sudarshan"


def _config(banks):
    return SearchConfig(
        max_results=10,
        output_heap_size=200,
        excluded_root_tables=banks.search_config.excluded_root_tables,
    )


def test_backward_search_metadata_query(benchmark, biblio_banks, bibliography):
    _db, anecdotes = bibliography
    sets_ = biblio_banks.resolve(QUERY)

    def run():
        return list(
            backward_expanding_search(
                biblio_banks.graph, sets_, biblio_banks.scorer,
                _config(biblio_banks),
            )
        )

    answers = benchmark(run)
    assert answers[0].tree.root == anecdotes.sudarshan


def test_bidirectional_search_metadata_query(
    benchmark, biblio_banks, bibliography
):
    _db, anecdotes = bibliography
    sets_ = biblio_banks.resolve(QUERY)

    def run():
        return bidirectional_search(
            biblio_banks.graph, sets_, biblio_banks.scorer,
            _config(biblio_banks),
        )

    answers = benchmark(run)
    assert answers, "bidirectional search found no answers"
    assert answers[0].tree.root == anecdotes.sudarshan


def test_bidirectional_spawns_fewer_iterators(biblio_banks):
    """The broad term ("author": every author tuple) spawns no backward
    iterator under the bidirectional strategy."""
    sets_ = biblio_banks.resolve(QUERY)
    broad = max(len(s) for s in sets_)
    selective = min(len(s) for s in sets_)
    print(f"\nterm set sizes: broad={broad} selective={selective}")
    assert broad > 100
    assert selective <= 10
