"""Ablation — indegree-scaled back edges vs uniform back edges.

Sec. 2.1 argues that treating links as undirected breaks proximity
because of hubs ("a department with a large number of faculty and
students would act as a hub") and fixes it by weighting back edges by
indegree.  This ablation runs the planted university query — two
students who share both a large department and a tiny course — under
both policies.  The measured effect is stark:

* with the paper's indegree scaling, the only surviving answer is the
  shared-course connection (even department-rooted candidates route
  their shortest paths through the course and dedup into it);
* with uniform back edges the department hub connects the pair in a
  2-edge tree that *displaces* the meaningful course answer entirely.
"""

from __future__ import annotations


from repro import BANKS
from repro.eval.baselines import uniform_backedge_policy


def _top_answer(banks):
    answers = banks.search("alice bob", max_results=10, output_heap_size=200)
    assert answers, "hub query returned nothing"
    return answers[0]


def test_indegree_backedges_prefer_shared_course(benchmark, university):
    database, anecdotes = university
    banks = BANKS(database)
    top = benchmark.pedantic(
        _top_answer, args=(banks,), rounds=1, iterations=1
    )
    print(
        f"\n[indegree-scaled] weight={top.tree.weight:.1f} "
        f"course_in_tree={anecdotes.shared_course in top.tree.nodes}"
    )
    assert anecdotes.shared_course in top.tree.nodes
    assert anecdotes.big_department not in top.tree.nodes


def test_uniform_backedges_let_the_hub_win(benchmark, university):
    database, anecdotes = university
    banks = BANKS(database, weight_policy=uniform_backedge_policy())
    top = benchmark.pedantic(
        _top_answer, args=(banks,), rounds=1, iterations=1
    )
    print(
        f"\n[uniform] weight={top.tree.weight:.1f} "
        f"dept_in_tree={anecdotes.big_department in top.tree.nodes}"
    )
    # The hub now *is* the best connection: the paper's failure mode.
    assert anecdotes.big_department in top.tree.nodes
    assert anecdotes.shared_course not in top.tree.nodes


def test_hub_distance_collapses_without_scaling(university):
    """Quantify the effect: under uniform weights the hub tree weighs
    less than the course tree; indegree scaling inflates the hub path by
    the department's fan-in (>100x)."""
    database, anecdotes = university
    scaled_top = _top_answer(BANKS(database))
    uniform_top = _top_answer(
        BANKS(database, weight_policy=uniform_backedge_policy())
    )
    hub_fan_in = database.indegree(anecdotes.big_department)
    print(
        f"\nscaled top weight={scaled_top.tree.weight:.1f} "
        f"uniform top weight={uniform_top.tree.weight:.1f} "
        f"hub fan-in={hub_fan_in}"
    )
    assert uniform_top.tree.weight < scaled_top.tree.weight
    assert hub_fan_in > 100
