"""Shared fixtures for the benchmark suite.

Datasets and BANKS instances are session-scoped: building them is part
of the *load* benchmark, not of every query benchmark.
"""

from __future__ import annotations

import pytest

from repro import BANKS
from repro.datasets import (
    generate_bibliography,
    generate_thesis_db,
    generate_tpcd,
    generate_university,
)
from repro.eval.workload import bibliography_workload


@pytest.fixture(scope="session")
def bibliography():
    database, anecdotes = generate_bibliography()
    return database, anecdotes


@pytest.fixture(scope="session")
def biblio_banks(bibliography):
    database, _anecdotes = bibliography
    return BANKS(database)


@pytest.fixture(scope="session")
def biblio_workload(bibliography):
    _database, anecdotes = bibliography
    return bibliography_workload(anecdotes)


@pytest.fixture(scope="session")
def figure5_dataset():
    """The Figure 5 corpus: the bibliography generator at DBLP-like
    citation density (``citations_per_paper=3``).

    The paper evaluated on a real DBLP extraction, whose dense citation
    mass supplies high-prestige *distractor* answers; the sweep needs
    that noise for the parameter axes to discriminate (with a sparse
    citation graph nearly every setting ranks the planted ideals first
    and the grid is flat).  See EXPERIMENTS.md, Figure 5 notes.
    """
    database, anecdotes = generate_bibliography(citations_per_paper=3.0)
    return database, anecdotes


@pytest.fixture(scope="session")
def figure5_banks(figure5_dataset):
    database, _anecdotes = figure5_dataset
    return BANKS(database)


@pytest.fixture(scope="session")
def figure5_workload(figure5_dataset):
    _database, anecdotes = figure5_dataset
    return bibliography_workload(anecdotes)


@pytest.fixture(scope="session")
def thesis():
    database, anecdotes = generate_thesis_db()
    return database, anecdotes


@pytest.fixture(scope="session")
def thesis_banks(thesis):
    database, _anecdotes = thesis
    return BANKS(database)


@pytest.fixture(scope="session")
def tpcd():
    database, anecdotes = generate_tpcd()
    return database, anecdotes


@pytest.fixture(scope="session")
def university():
    database, anecdotes = generate_university()
    return database, anecdotes
