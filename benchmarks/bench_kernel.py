"""CSR search-kernel acceptance benchmarks (the ISSUE 8 criteria).

Two claims, asserted on both demo datasets:

1. **Parity** — the frozen CSR facade answers every ``DEMO_QUERIES``
   entry with exactly the reference facade's top-5 (roots and scores,
   float-equal, same order): the representation must never change an
   answer.
2. **Speedup** — median per-query latency on the bibliography battery
   improves by at least 2x over the dict-of-dicts reference kernel.

Run with::

    pytest benchmarks/bench_kernel.py -q -s
"""

from __future__ import annotations

from benchjson import record_bench_result
from repro.core.kernelbench import run_kernel_benchmark
from repro.datasets import DEMO_QUERY_SETS

K = 5
REPEATS = 3


def _record(report, dataset: str) -> None:
    record_bench_result(
        "kernel",
        dataset,
        {
            "k": report.k,
            "queries": report.parity_total,
            "kernel_parity": report.parity,
            "speedup_kernel": round(report.speedup, 3),
            "median_ref_ms": round(report.median_ref_seconds * 1000.0, 3),
            "median_csr_ms": round(report.median_csr_seconds * 1000.0, 3),
            "answers_per_second_ref": round(report.ref_answers_per_second, 1),
            "answers_per_second_csr": round(report.csr_answers_per_second, 1),
        },
    )


def test_bibliography_kernel_speedup_and_parity(benchmark, bibliography):
    database, _anecdotes = bibliography
    report = benchmark.pedantic(
        lambda: run_kernel_benchmark(
            database,
            DEMO_QUERY_SETS["bibliography"],
            dataset="bibliography",
            k=K,
            repeats=REPEATS,
        ),
        rounds=1,
        iterations=1,
    )
    print("\n" + report.render())
    _record(report, "bibliography")
    assert report.parity == 1.0, report.mismatches
    assert report.speedup >= 2.0, (
        f"CSR kernel speedup {report.speedup:.2f}x < 2x"
    )


def test_tpcd_kernel_parity(benchmark, tpcd):
    database, _anecdotes = tpcd
    report = benchmark.pedantic(
        lambda: run_kernel_benchmark(
            database,
            DEMO_QUERY_SETS["tpcd"],
            dataset="tpcd",
            k=K,
            repeats=REPEATS,
        ),
        rounds=1,
        iterations=1,
    )
    print("\n" + report.render())
    _record(report, "tpcd")
    assert report.parity == 1.0, report.mismatches
    # tpcd queries are small; speedup is recorded but only gated on the
    # bibliography battery where the kernel dominates the latency.
    assert report.speedup > 1.0
