"""Section 5.2 — graph (and index) load time vs database scale.

The paper: "The graph currently takes about 2 minutes to load initially"
for ~100K nodes / 300K edges (Java, untuned).  This bench builds the
BANKS graph + keyword index at three scales and reports wall time, so
EXPERIMENTS.md can put measured numbers next to the paper's.
"""

from __future__ import annotations

import pytest

from repro.core.model import build_data_graph
from repro.datasets import generate_bibliography
from repro.text.inverted_index import InvertedIndex

#: (label, papers, authors) — nodes scale roughly as 4.3x papers.
SCALES = [
    ("small", 400, 220),
    ("medium", 2000, 900),
    ("large", 6000, 2500),
]


@pytest.mark.parametrize(("label", "papers", "authors"), SCALES)
def test_graph_load(benchmark, label, papers, authors):
    database, _anecdotes = generate_bibliography(
        papers=papers, authors=authors, include_anecdotes=False
    )

    def build():
        graph, stats = build_data_graph(database)
        index = InvertedIndex(database)
        return stats, len(index)

    stats, terms = benchmark.pedantic(build, rounds=2, iterations=1)
    print(
        f"\n[{label}] nodes={stats.num_nodes} edges={stats.num_edges} "
        f"index_terms={terms}"
    )
    assert stats.num_nodes == database.total_rows()
