"""Serving-engine benchmarks (the ISSUE 1 acceptance criteria).

Three claims, each asserted:

1. **Throughput** — at concurrency 8 on ``demo:bibliography`` the
   engine answers a Zipf-skewed workload >= 2x faster than serialized
   single-thread dispatch through the plain facade (the seed repo's
   only mode).  The win is collapse of duplicate work: single-flight
   shares in-flight computations, the result cache shares finished
   ones.  Pure-Python search is GIL-bound, so thread parallelism alone
   could not deliver this — the report prints the dedup/hit numbers
   that do.
2. **No drops below the bound** — with in-flight requests below the
   queue bound, admission control sheds nothing.
3. **Correctness under mixed load** — concurrent readers racing a
   writer each see exactly one published snapshot: every answer equals
   what the (sealed, immutable) facade of that snapshot version
   returns, and the final version equals a from-scratch rebuild.

Run with::

    pytest benchmarks/bench_serve.py --benchmark-only -s
"""

from __future__ import annotations

import random
import threading

from benchjson import record_bench_result
from repro.core.incremental import IncrementalBANKS
from repro.datasets import generate_bibliography
from repro.serve import EngineConfig, QueryEngine
from repro.serve.bench import run_serving_benchmark

CONCURRENCY = 8
QUEUE_BOUND = 64
REQUESTS = 96


def test_engine_throughput_vs_serialized(benchmark):
    database, _anecdotes = generate_bibliography()  # == demo:bibliography

    report = benchmark.pedantic(
        lambda: run_serving_benchmark(
            database,
            requests=REQUESTS,
            concurrency=CONCURRENCY,
            workers=8,
            queue_bound=QUEUE_BOUND,
        ),
        rounds=1,
        iterations=1,
    )
    print("\n" + report.render())
    record_bench_result(
        "serve",
        "bibliography",
        {
            "requests": report.requests,
            "concurrency": report.concurrency,
            "workers": report.workers,
            "qps_serial": round(report.serial_qps, 3),
            "qps_engine": round(report.engine_qps, 3),
            "median_ms_engine": round(report.engine_p50_ms, 1),
            "speedup": round(report.speedup, 3),
            "cache_hit_rate": round(report.cache_hit_rate, 4),
            "deduplicated": report.deduplicated,
            "results_match": report.results_match,
        },
    )

    # Acceptance: >= 2x over serialized single-thread dispatch.
    assert report.speedup >= 2.0
    # Acceptance: zero dropped requests below the queue bound (8
    # blocking clients never exceed a bound of 64).
    assert report.shed == 0
    # Acceptance: identical-to-facade top-k results.
    assert report.results_match
    # The mechanism: duplicate work actually collapsed (shared in-flight
    # computations and/or cache hits on the skewed workload).
    assert report.cache_hit_rate > 0.3 or report.deduplicated > 0


def test_tracing_disabled_overhead_under_five_percent(benchmark):
    """ISSUE 6 guard: the observability hooks must be free when off.

    The same serial workload runs through two engines over one shared
    facade — tracing fully disabled (``trace_sample="off"``, the
    default) and tracing always-on — best-of-N rounds each.  The gate
    asserts the *disabled* path keeps at least 95% of the traced
    path's throughput and vice versa is not asserted: ``off`` is the
    production default, so the cost being guarded is the ``if obs``
    checks and ``None`` guards threaded through the hot path.
    """
    from time import perf_counter

    from repro.core.banks import BANKS
    from repro.datasets import DEMO_QUERY_SETS

    database, _anecdotes = generate_bibliography()
    facade = BANKS(database)
    queries = tuple(DEMO_QUERY_SETS["bibliography"]) + (
        "soumen sunita",
        "transaction",
        "prasan epoch",
    )

    def measure(trace_sample: str) -> float:
        """Best-of-rounds QPS; a fresh engine per round so the result
        cache cannot turn later rounds into pure cache-hit timing."""
        best = 0.0
        for _round in range(3):
            config = EngineConfig(
                workers=2, queue_bound=0, trace_sample=trace_sample
            )
            with QueryEngine(facade, config) as engine:
                started = perf_counter()
                for query in queries:
                    engine.search(query, max_results=5)
                elapsed = perf_counter() - started
            best = max(best, len(queries) / elapsed)
        return best

    def run():
        return measure("off"), measure("always")

    qps_untraced, qps_traced = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    ratio = qps_untraced / qps_traced
    overhead_ok = ratio >= 0.95
    print(
        f"\ntracing overhead: untraced {qps_untraced:.1f} qps, "
        f"traced {qps_traced:.1f} qps, off/on ratio {ratio:.3f} "
        f"({'ok' if overhead_ok else 'REGRESSION'})"
    )
    record_bench_result(
        "serve",
        "tracing_overhead",
        {
            "queries": len(queries),
            "qps_untraced": round(qps_untraced, 3),
            "qps_traced": round(qps_traced, 3),
            "off_on_ratio": round(ratio, 4),
            "obs_overhead_ok": overhead_ok,
        },
    )
    # Acceptance: disabled tracing costs < 5% throughput.
    assert overhead_ok


QUERIES = ("soumen sunita", "transaction", "freshly inserted")


def _signature(answers):
    return tuple(
        (answer.tree.undirected_key(), round(answer.relevance, 9))
        for answer in answers
    )


def test_mixed_read_update_load_is_snapshot_consistent(benchmark):
    """Readers racing a writer observe only published versions, and
    every observed top-k equals the pinned snapshot facade's top-k."""

    def run():
        database, _ = generate_bibliography(papers=120, authors=70, seed=3)
        facade = IncrementalBANKS(database)
        config = EngineConfig(workers=6, queue_bound=QUEUE_BOUND)
        reference = {}
        observations = []
        observations_lock = threading.Lock()
        errors = []

        with QueryEngine(facade, config) as engine:

            def record_reference():
                snapshot = engine.snapshots.current()
                reference[snapshot.version] = {
                    query: _signature(snapshot.facade.search(query))
                    for query in QUERIES
                }

            record_reference()  # version 0

            def writer():
                try:
                    for batch in range(3):
                        def apply(f, batch=batch):
                            author_rid = next(
                                iter(f.database.table("author").rids())
                            )
                            author = f.database.table("author").row(author_rid)
                            pid = f"NEWP{batch}"
                            f.insert(
                                "paper",
                                [pid, f"freshly inserted study {batch}"],
                            )
                            f.insert(
                                "writes", [author["author_id"], pid]
                            )

                        engine.mutate(apply)
                        record_reference()
                except BaseException as error:  # noqa: BLE001 - reported
                    errors.append(error)

            def reader(seed: int):
                rng = random.Random(seed)
                try:
                    for _ in range(10):
                        query = rng.choice(QUERIES)
                        outcome = engine.submit(query).result(timeout=30)
                        with observations_lock:
                            observations.append(
                                (
                                    outcome.snapshot_version,
                                    query,
                                    _signature(outcome.answers),
                                )
                            )
                except BaseException as error:  # noqa: BLE001 - reported
                    errors.append(error)

            threads = [threading.Thread(target=writer)] + [
                threading.Thread(target=reader, args=(seed,))
                for seed in range(CONCURRENCY)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            final_version = engine.snapshots.version
            final_facade = engine.facade
            shed = int(engine.metrics.snapshot()["shed_total"])

        assert not errors, errors[0]
        return (
            reference,
            observations,
            final_version,
            final_facade,
            shed,
        )

    reference, observations, final_version, final_facade, shed = (
        benchmark.pedantic(run, rounds=1, iterations=1)
    )

    versions_seen = sorted({version for version, _, _ in observations})
    print(
        f"\n{len(observations)} concurrent reads across snapshot "
        f"versions {versions_seen} while 3 mutation batches published; "
        f"shed={shed}"
    )

    # Every read matches the facade of the version it was pinned to.
    assert final_version == 3
    assert shed == 0  # 8 blocking clients stay far below the bound
    for version, query, signature in observations:
        assert version in reference
        assert signature == reference[version][query], (
            f"version {version} query {query!r}: served answers diverge "
            "from the snapshot facade"
        )

    # The final snapshot equals a from-scratch rebuild of the same data.
    from repro.core.banks import BANKS

    rebuilt = BANKS(final_facade.database)
    for query in QUERIES:
        assert _signature(final_facade.search(query)) == _signature(
            rebuilt.search(query)
        )
    # The inserted papers actually became searchable.
    assert reference[3]["freshly inserted"] != reference[0]["freshly inserted"]
