"""Related-system shootout — BANKS vs the Sec. 6 comparators.

The paper's Sec. 6 argues qualitatively against DataSpot (no prestige,
no hub penalty), Goldman et al.'s proximity search (single tuples from
one relation, no weighting) and Mragyati (join paths capped at length
two, indegree-only ranking).  With all three implemented as runnable
systems (``repro.baselines``), this benchmark makes those arguments
quantitative on the 7-query evaluation workload:

* BANKS must achieve the lowest scaled error and find every ideal;
* Mragyati must fail exactly the queries whose ideal answers need join
  paths longer than two (the co-authorship trees);
* Goldman must miss every tree-shaped ideal (it returns bare tuples);
* DataSpot must trail BANKS on prestige-driven queries while still
  finding most connection trees (it has the tree model, not the
  weights).

Run with::

    pytest benchmarks/bench_baselines.py --benchmark-only -s
"""

from __future__ import annotations

import pytest

from repro.baselines import compare_systems
from repro.baselines.compare import format_comparison


@pytest.fixture(scope="module")
def reports(bibliography, biblio_banks, biblio_workload):
    database, _anecdotes = bibliography
    return compare_systems(database, biblio_workload, banks=biblio_banks)


def test_system_shootout(benchmark, bibliography, biblio_banks, biblio_workload):
    database, _anecdotes = bibliography
    reports = benchmark.pedantic(
        compare_systems,
        args=(database, biblio_workload),
        kwargs={"banks": biblio_banks},
        rounds=1,
        iterations=1,
    )
    print()
    print(format_comparison(reports))

    by_name = {report.system: report for report in reports}
    banks = by_name["BANKS"]

    # BANKS wins outright: lowest error, every ideal found.
    for name, report in by_name.items():
        assert banks.scaled_error <= report.scaled_error, name
    assert banks.ideals_found == banks.total_ideals

    # Every baseline is strictly worse (the missing ingredient bites).
    for name in ("DataSpot", "Goldman", "Mragyati"):
        assert by_name[name].scaled_error > banks.scaled_error, name


def test_mragyati_path_length_limitation(reports):
    """Sec. 6: "Their implementation does not handle paths of length
    greater than two" — the co-authorship ideals need length 4."""
    mragyati = next(r for r in reports if r.system == "Mragyati")
    assert mragyati.per_query_error["q1-coauthors"] > 0
    assert mragyati.per_query_error["q2-common-coauthor"] > 0
    # Queries answerable within two hops still work.
    assert mragyati.per_query_error["q4-title-only"] == 0
    assert mragyati.per_query_error["q5-author-only"] == 0


def test_goldman_single_tuple_limitation(reports):
    """Sec. 6: results restricted to single tuples — tree ideals are
    unreachable, single-node ideals are fine."""
    goldman = next(r for r in reports if r.system == "Goldman")
    assert goldman.per_query_error["q1-coauthors"] > 0
    assert goldman.per_query_error["q4-title-only"] == 0


def test_dataspot_prestige_limitation(reports):
    """DataSpot finds the trees (same answer model) but has no prestige:
    the prestige-driven single-keyword queries misrank."""
    dataspot = next(r for r in reports if r.system == "DataSpot")
    prestige_queries = ("q4-title-only", "q5-author-only")
    assert any(dataspot.per_query_error[q] > 0 for q in prestige_queries)
    # The pure-proximity co-authorship query still succeeds.
    assert dataspot.per_query_error["q2-common-coauthor"] == 0
