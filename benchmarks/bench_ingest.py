"""Ingest benchmark: DBLP-scale bulk load, crash, resume, parity.

One run on the 100k+-record synthetic bibliography
(``synth:19500``) proves three claims:

1. **Throughput** — the chunked pipeline sustains at least
   :data:`MIN_RECORDS_PER_SEC` records/sec into an in-memory store
   (``ingest_throughput_ok``).  The floor is deliberately
   conservative (~5x below a dev-laptop run) so it gates algorithmic
   collapse, not hardware.
2. **Scale** — the ingested graph holds 100k+ nodes
   (``ingest_scale_ok``): every tuple is a node, so the record count
   is the node count.
3. **Resume parity** — a WAL-backed ingest of the same stream is
   killed mid-chunk, the facade is rebuilt from the WAL, the job is
   resumed from the registry cursor, and the recovered store's top-5
   answers on every demo query must match the uninterrupted ingest
   **exactly** (``ingest_parity``).

Run with::

    pytest benchmarks/bench_ingest.py -q -s
"""

from __future__ import annotations

from benchjson import record_bench_result
from repro.ingest.bench import run_ingest_benchmark

#: The acceptance scale: ~105k records => a 100k+-node graph.
N_PAPERS = 19500
CHUNK_SIZE = 1000

#: Sustained records/sec floor for the uninterrupted ingest.
MIN_RECORDS_PER_SEC = 400

#: The graph must actually be DBLP-scale.
MIN_NODES = 100_000


def test_synth_bibliography_ingest_resume_parity(benchmark):
    report = benchmark.pedantic(
        lambda: run_ingest_benchmark(
            n_papers=N_PAPERS,
            chunk_size=CHUNK_SIZE,
        ),
        rounds=1,
        iterations=1,
    )
    print("\n" + report.render())

    record_bench_result(
        "ingest",
        "synth_bibliography",
        {
            "n_papers": report.n_papers,
            "records": report.records,
            "chunks": report.chunks,
            "nodes": report.nodes,
            "edges": report.edges,
            "ingest_seconds": round(report.ingest_seconds, 3),
            "records_per_sec": round(report.records_per_sec, 1),
            "kill_step": report.kill_step,
            "kill_chunk": report.kill_chunk,
            "records_at_kill": report.records_at_kill,
            "recover_seconds": round(report.recover_seconds, 3),
            "resume_records": report.resume_records,
            "resume_seconds": round(report.resume_seconds, 3),
            "ingest_throughput_ok": float(
                report.records_per_sec >= MIN_RECORDS_PER_SEC
            ),
            "ingest_scale_ok": float(report.nodes >= MIN_NODES),
            "ingest_parity": float(report.parity_ok),
        },
    )

    # Acceptance: DBLP scale, sustained throughput, and a crash that
    # no query can observe after resume.
    assert report.records == report.nodes
    assert report.nodes >= MIN_NODES
    assert report.records_per_sec >= MIN_RECORDS_PER_SEC
    assert 0 < report.records_at_kill < report.records
    assert report.resume_records == report.records - report.records_at_kill
    assert report.parity_ok
